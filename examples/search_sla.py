#!/usr/bin/env python3
"""A search server defending its latency SLA through a power cap (§3).

swish++ runs as the paper deploys it -- a server taking remote queries --
here as a discrete-event queue with Poisson arrivals at 85% utilization.
Mid-run, a power cap drops the platform to 2/3 capacity for five
minutes.  Without knobs the queue diverges and the 1-second SLA
collapses; with PowerDial the controller raises the max-results knob
speedup so the latency distribution never notices the cap -- the cost
is trimmed recall (fewer, but still the top, results) while it lasts.

Run:
    python examples/search_sla.py
"""

from repro.apps.swish import InvertedIndex, SwishApp, generate_corpus, generate_queries
from repro.cluster.queueing import poisson_arrivals, simulate_queue
from repro.core.controller import HeartRateController
from repro.core.powerdial import build_powerdial

SERVICE = 0.05  # seconds per query at default knobs, uncapped
RATE = 0.85 / SERVICE  # 85% utilization
DURATION = 600.0
CAP_START, CAP_END = 150.0, 450.0
SLA = 1.0


def capacity(t):
    return (1.6 / 2.4) if CAP_START <= t < CAP_END else 1.0


def main():
    print("Indexing the corpus and calibrating the max-results knob...")
    index = InvertedIndex(
        generate_corpus(documents=800, tokens_per_document=400,
                        vocabulary_size=12_000, seed=41)
    )
    app_factory = lambda: SwishApp(index=index, qos_cutoff=10)
    system = build_powerdial(
        app_factory, [generate_queries(index.corpus, count=100, seed=43)]
    )
    table = system.table
    print(f"Knob table: speedups 1.00-{table.max_speedup:.2f}x "
          f"(QoS = P@10 recall)\n")

    arrivals = poisson_arrivals(RATE, DURATION, seed=11)
    print(f"Offered load: {RATE:.0f} queries/s for {DURATION:.0f} s; "
          f"power cap over [{CAP_START:.0f}, {CAP_END:.0f}) s.\n")

    runs = {
        "uncapped reference": simulate_queue(
            arrivals, SERVICE, capacity=lambda t: 1.0
        ),
        "capped, no knobs": simulate_queue(arrivals, SERVICE, capacity=capacity),
        "capped, dynamic knobs": simulate_queue(
            arrivals,
            SERVICE,
            capacity=capacity,
            controller=HeartRateController(
                target_rate=1.0 / SERVICE,
                baseline_rate=1.0 / SERVICE,
                max_speedup=table.max_speedup,
            ),
            table=table,
            control_period=2.0,
        ),
    }

    print(f"{'deployment':>22s}  {'p50':>7s}  {'p95':>7s}  {'p99':>7s}  "
          f"{'>SLA':>6s}  {'QoS loss':>8s}")
    for label, result in runs.items():
        stats = result.latency_stats()
        print(f"{label:>22s}  {stats.p50:6.2f}s  {stats.p95:6.2f}s  "
              f"{stats.p99:6.2f}s  {100 * result.sla_violation_fraction(SLA):5.1f}%  "
              f"{100 * result.mean_qos_loss():7.2f}%")

    knobs = runs["capped, dynamic knobs"]
    during = [r for r in knobs.records if CAP_START <= r.finish < CAP_END]
    print(f"\nDuring the cap the controlled server ran at mean speedup "
          f"{sum(r.speedup for r in during) / len(during):.2f}x "
          f"(recall trimmed, top results preserved); "
          f"before and after, full quality.")


if __name__ == "__main__":
    main()
