#!/usr/bin/env python3
"""Actuation policies and idle power (paper §2.3.3 + Figure 4).

The actuator can satisfy a commanded speedup two ways: run the *minimal
sufficient* knob setting (lowest QoS loss, machine always busy) or
*race-to-idle* (run the fastest setting, then idle).  Which one saves
energy depends on the platform's idle power — the Figure 4 trade-off.
This example serves the same workload at half the platform's capacity
under both policies, on the paper's high-idle server (90 W idle) and on a
hypothetical energy-proportional machine (15 W idle), and accounts the
energy each combination uses.

Run:
    python examples/race_to_idle.py
"""

import numpy as np

from repro import Parameter, build_powerdial, measure_baseline_rate
from repro.apps.base import Application, ItemResult
from repro.core.actuator import ActuationPolicy
from repro.core.qos import DistortionMetric
from repro.hardware.cpu import Processor
from repro.hardware.machine import Machine
from repro.hardware.power import PowerModel


class SignalSmoother(Application):
    """Denoises readings; `taps` trades filter quality for time."""

    name = "signal-smoother"

    @classmethod
    def parameters(cls):
        return (Parameter("taps", (8, 32, 128, 512), 512),)

    def initialize(self, config, space):
        space.write("taps", config["taps"] + 0)

    def prepare(self, job):
        rng = np.random.default_rng(7)
        return [rng.normal(float(i % 5), 1.0, size=2048) for i in range(job)]

    def process_item(self, item, space, tracker):
        taps = int(space.read("taps"))
        kernel = np.ones(taps) / taps
        smoothed = np.convolve(item, kernel, mode="valid")
        work = float(taps) * item.size * 4.0
        tracker.add("main", work)
        return ItemResult(output=float(np.mean(smoothed)), work=work)

    def qos_metric(self):
        return DistortionMetric(lambda outs: np.asarray(outs, dtype=float))


def make_machine(idle_watts, frequency_ghz=2.4):
    machine = Machine(
        processor=Processor(work_units_per_ghz_second=1e8),
        power_model=PowerModel(idle_watts=idle_watts, floor_watts=idle_watts * 0.9),
    )
    machine.set_frequency(frequency_ghz)
    return machine


def serve(system, policy, idle_watts, target, jobs, baseline_outputs, metric):
    """Serve under a 1.6 GHz power cap; account energy over the full
    service window (both policies are topped up with idle to the same
    horizon so joules are comparable)."""
    machine = make_machine(idle_watts, frequency_ghz=1.6)
    runtime = system.runtime(machine, target_rate=target, policy=policy)
    result = runtime.run(jobs)
    horizon = 1.05 * sum(len(job_out) for job_out in result.outputs_by_job) / target
    if machine.now < horizon:
        machine.idle_until(horizon)
    qos = metric(baseline_outputs[0], result.outputs_by_job[0])
    return machine.meter.energy_joules, qos


def main():
    system = build_powerdial(SignalSmoother, training_jobs=[10])
    print("Knob table:")
    for setting in system.table:
        print(
            f"  taps={setting.configuration['taps']:>4}: "
            f"speedup {setting.speedup:5.1f}x, "
            f"QoS loss {100 * setting.qos_loss:.3f}%"
        )

    # The target is the uncapped baseline rate; a 1.6 GHz power cap then
    # forces a 1.5x speedup, which each policy supplies its own way.
    probe = make_machine(90.0)
    target = measure_baseline_rate(SignalSmoother, 50, probe)
    jobs = [400]

    from repro.apps.base import run_job

    app = SignalSmoother()
    metric = app.qos_metric()
    baseline_outputs = [
        run_job(SignalSmoother(), app.default_configuration().as_dict(), jobs[0])[0]
    ]

    print(
        f"\nServing {jobs[0]} items at {target:.1f} items/s under a "
        f"1.6 GHz power cap (needs 1.5x):"
    )
    header = (
        f"{'platform':<28}{'policy':<18}{'energy kJ':>10}{'QoS loss':>10}"
    )
    print(header)
    print("-" * len(header))
    for idle_watts, label in ((90.0, "paper server (90 W idle)"),
                              (15.0, "proportional (15 W idle)")):
        for policy in (ActuationPolicy.MINIMAL_SPEEDUP, ActuationPolicy.RACE_TO_IDLE):
            energy, qos = serve(
                system, policy, idle_watts, target, jobs, baseline_outputs, metric
            )
            print(
                f"{label:<28}{policy.value:<18}{energy / 1000:>10.2f}"
                f"{100 * qos:>9.2f}%"
            )

    print(
        "\nRace-to-idle always buys its energy savings with QoS (every item"
        "\nis produced at the fastest knob setting); how much energy it"
        "\nactually saves depends on idle power — large on the"
        "\nenergy-proportional platform, modest on the paper's 90 W server."
        "\nThat is the Figure 4 platform distinction, live."
    )


if __name__ == "__main__":
    main()
