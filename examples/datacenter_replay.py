#!/usr/bin/env python3
"""Record a run's journal, then reproduce the run from the journal alone.

Every journaled datacenter run is a *pure function of its journal*
(ARCHITECTURE.md invariant 7).  The journal is an append-only NDJSON
file: a header carrying the full scenario config (RNG seeds included),
one record per control barrier (the policy's raw actions, the applied
caps/budget/migrations/failures, and a complete cluster checkpoint),
and a closing record pinning the result's canonical payload.

This walkthrough records a chaos run — a machine is killed mid-run and
its tenants are rebuilt on survivors from barrier checkpoints — then:

1. replays the journal with zero inputs beyond the file itself and
   shows the replayed bills are byte-identical to the live run's;
2. simulates a crash by truncating the journal mid-write (a torn final
   line included) and resumes it, showing the resumed run still ends
   with the same bills and an exactly-balanced energy ledger.

Run:
    python examples/datacenter_replay.py
"""

import tempfile
from pathlib import Path

from repro.experiments.common import Scale
from repro.experiments.datacenter import run_datacenter
from repro.datacenter.journal import canonical_json, encode_bill, replay, resume

BUDGET_WATTS = 640.0  # three machines: cap floor ~549 W, ceiling 660 W


def main():
    workdir = Path(tempfile.mkdtemp(prefix="powerdial-replay-"))
    journal = workdir / "run.ndjson"

    print("1. Recording a journaled chaos run (1 machine killed mid-run)...")
    experiment = run_datacenter(
        scale=Scale.TINY,
        machines=3,
        budget_watts=BUDGET_WATTS,
        journal=str(journal),
        chaos=1,
        chaos_seed=7,
    )
    live = experiment.arbitrated
    for failure in live.failures:
        print(
            f"   machine {failure.machine_index} failed at "
            f"{failure.time:.1f}s; {len(failure.replacements)} tenants "
            "rebuilt on survivors from barrier checkpoints"
        )
    lines = journal.read_text().splitlines()
    print(f"   journal: {len(lines)} records at {journal}")

    print("\n2. Replaying the journal (no inputs beyond the file)...")
    replayed = replay(str(journal))
    live_bills = [canonical_json(encode_bill(bill)) for bill in live.bills]
    replay_bills = [
        canonical_json(encode_bill(bill)) for bill in replayed.bills
    ]
    assert replay_bills == live_bills, "replayed bills diverged"
    print(f"   {len(replay_bills)} tenant bills byte-identical to the live run")

    print("\n3. Crashing mid-run (journal truncated, torn final write)...")
    barrier_count = sum(1 for line in lines if '"kind":"barrier"' in line)
    crash_after = len(lines) - 2  # drop the result and the last barrier
    crashed = workdir / "crashed.ndjson"
    crashed.write_text("\n".join(lines[:crash_after] + ['{"kind":"barr']) + "\n")
    resumed = resume(str(crashed))
    resumed_bills = [
        canonical_json(encode_bill(bill)) for bill in resumed.bills
    ]
    assert resumed_bills == live_bills, "resumed bills diverged"
    conservation = resumed.energy_conservation_rel_error()
    print(
        f"   resumed from barrier {barrier_count - 2} of {barrier_count}; "
        f"bills identical, billing conservation rel. error "
        f"{conservation:.1e}"
    )

    print("\nEvery run is a pure function of its journal.")


if __name__ == "__main__":
    main()
