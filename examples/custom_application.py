#!/usr/bin/env python3
"""Bring your own application: what the §2.1 checks accept and reject.

PowerDial only transforms parameters whose traced control variables pass
four conditions (complete/pure, relevant, constant, consistent).  This
example walks a sensor-fusion application through the workflow, shows the
control-variable report a developer audits, and then demonstrates each
way an application can *fail* the checks — the guardrails that keep the
transformation sound.

Run:
    python examples/custom_application.py
"""

import numpy as np

from repro import Parameter, build_powerdial
from repro.apps.base import Application, ItemResult
from repro.core.qos import DistortionMetric
from repro.tracing.checks import KnobRejectionError


class SensorFusion(Application):
    """Fuses noisy sensor readings; `window` controls smoothing depth."""

    name = "sensor-fusion"

    @classmethod
    def parameters(cls):
        return (Parameter("window", (4, 16, 64, 256), 256),)

    def initialize(self, config, space):
        # Two control variables derived from one parameter: the tracer
        # finds both and records their values per knob setting.
        space.write("window", config["window"] + 0)
        space.write("half_window", config["window"] // 2)

    def prepare(self, job):
        rng = np.random.default_rng(99)
        return [rng.normal(float(i % 7), 1.0, size=512) for i in range(job)]

    def process_item(self, item, space, tracker):
        window = int(space.read("window"))
        _ = space.read("half_window")
        smoothed = np.convolve(
            item[:window], np.ones(window) / window, mode="valid"
        )
        tracker.add("main/fuse", float(window) * 64)
        return ItemResult(output=float(np.mean(smoothed)), work=float(window) * 64)

    def qos_metric(self):
        return DistortionMetric(lambda outs: np.asarray(outs, dtype=float))


class ImpureApp(SensorFusion):
    """BROKEN: mixes the knob with unrelated configuration (Pure check)."""

    @classmethod
    def parameters(cls):
        return (Parameter("window", (4, 256), 256),)

    def initialize(self, config, space):
        space.write("window", config["window"] * config["gain"])
        space.write("half_window", config["window"] // 2)


class NonConstantApp(SensorFusion):
    """BROKEN: adapts the control variable itself (Constant check)."""

    def process_item(self, item, space, tracker):
        result = super().process_item(item, space, tracker)
        space.write("window", int(space.peek("window")) + 1)
        return result


def main():
    print("=== 1. A well-behaved application ===")
    system = build_powerdial(SensorFusion, training_jobs=[10])
    print(system.report)
    print("\nKnob table:")
    for setting in system.table:
        print(f"  window={setting.configuration['window']:>4}: "
              f"speedup {setting.speedup:6.1f}x, "
              f"QoS loss {100 * setting.qos_loss:.3f}%")

    print("\n=== 2. Purity violation ===")
    # ImpureApp mixes `window` with a non-knob `gain` option; the tracer
    # sees the foreign influence and rejects the transformation.
    from repro.tracing.tracer import trace_configuration

    try:
        trace_configuration(
            ImpureApp(), {"window": 4, "gain": 3}, {"window"}, sample_job=5
        )
    except KnobRejectionError as error:
        print(f"rejected as expected: {error}")

    print("\n=== 3. Constant violation ===")
    try:
        build_powerdial(NonConstantApp, training_jobs=[10])
    except KnobRejectionError as error:
        print(f"rejected as expected: {error}")


if __name__ == "__main__":
    main()
