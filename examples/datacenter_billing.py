#!/usr/bin/env python3
"""Per-tenant billing: who spent the watts, and who paid in quality?

The arbiter example shows the datacenter subsystem trading power and
QoS across tenants; this walkthrough shows the *meter* behind that
trade.  Every ``step()`` the engine dispatches charges the stepping
tenant's ledger with the host machine's exact energy delta (integrated
across DVFS changes, so a tenant is billed at the wattage that actually
prevailed while it held the machine), and the paper's Eq. 9–11 knob
distortion is integrated over wall time into QoS-loss-seconds.  Idle
energy belongs to nobody and is reported per machine, which makes the
books balance exactly:

    sum(per-tenant billed joules) + sum(unattributed idle joules)
        == total metered pool energy

The script runs the default four-tenant mix once under the SLA-aware
arbiter, prints each tenant's bill and the conservation audit, then
reruns the identical scenario on the sharded multiprocess backend to
show the bills are byte-identical — metering does not depend on how
the simulation was executed.

Run:
    python examples/datacenter_billing.py
"""

import json

from repro.datacenter import CONSERVATION_TOLERANCE, fork_available
from repro.experiments.datacenter import build_engine, default_tenant_mix

HORIZON = 40.0  # seconds of virtual time (the tiny-scale horizon)

# Well below the default 420 W: with the pool squeezed near its cap
# floor, the knobbed tenants visibly pay in QoS-loss-seconds while the
# knob-poor "billing" tenant (exact service) pays in latency instead.
BUDGET_WATTS = 370.0


def run_once(backend, workers=None):
    engine = build_engine(
        default_tenant_mix(),
        machines_count=2,
        horizon=HORIZON,
        budget_watts=BUDGET_WATTS,
        policy="sla-aware",
        backend=backend,
        workers=workers,
    )
    return engine.run()


def main():
    result = run_once("serial")

    print(
        f"Bills for {len(result.bills)} tenants, {HORIZON:.0f} s horizon, "
        f"{BUDGET_WATTS:.0f} W budget (sla-aware arbiter):\n"
    )
    header = (
        f"{'tenant':<10} {'mach':>4} {'energy J':>10} {'busy s':>8} "
        f"{'QoS-loss s':>11} {'rej':>4} {'SLA':>4}"
    )
    print(header)
    print("-" * len(header))
    for bill in result.bills:
        print(
            f"{bill.tenant:<10} {bill.machine_index:>4} "
            f"{bill.energy_joules:>10.1f} {bill.busy_seconds:>8.2f} "
            f"{bill.qos_loss_seconds:>11.5f} {bill.rejected:>4} "
            f"{'met' if bill.sla_met else 'MISS':>4}"
        )

    audit = result.energy_conservation()
    print(
        f"\nConservation audit: billed {audit['billed_energy_joules']:.1f} J "
        f"+ unattributed idle {audit['unattributed_idle_joules']:.1f} J "
        f"= metered {audit['total_energy_joules']:.1f} J "
        f"(rel error {audit['rel_error']:.1e})"
    )
    assert audit["rel_error"] <= CONSERVATION_TOLERANCE

    print("\nOne bill as the --bill CLI emits it (JSON):")
    print(json.dumps(result.bills[0].to_dict(), indent=2, sort_keys=True))

    if fork_available():
        sharded = run_once("sharded", workers=2)
        identical = sharded.bills == result.bills
        print(
            f"\nSharded rerun (2 workers): bills byte-identical to serial? "
            f"{identical}"
        )
        assert identical, "backend changed the bills"
    else:
        print("\n(fork unavailable: skipping the sharded identity demo)")


if __name__ == "__main__":
    main()
