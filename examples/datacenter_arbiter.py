#!/usr/bin/env python3
"""Many PowerDial tenants, one power budget: the datacenter subsystem.

The paper controls one instance at a time; `repro.datacenter` interleaves
many live PowerDial-controlled instances on shared machines under a
facility power budget.  This walkthrough builds the default four-tenant,
two-machine mix — two light accuracy-tolerant tenants on machine 0 and a
heavily loaded *knob-poor* billing tenant (exact service, no dynamic
knobs) next to a knobbed reports tenant on machine 1 — then serves the
identical request traces twice:

* with the budget split equally across machines (static-equal), and
* with the hierarchical SLA-aware arbiter shifting watts each period
  toward machines whose tenants miss their latency SLAs.

Knobbed tenants ride out low machine caps by spending accuracy; the
knob-poor tenant can only be helped with power, and the arbiter finds
that out from the SLA signal alone.

Run:
    python examples/datacenter_arbiter.py
"""

from repro.datacenter.arbiter import ArbiterPolicy, machine_cap_floor
from repro.experiments.common import Scale, experiment_machine
from repro.experiments.datacenter import (
    DEFAULT_BUDGET_WATTS,
    default_tenant_mix,
    format_datacenter,
    run_datacenter,
)
from repro.experiments.registry import built_service_system


def main():
    table = built_service_system().table
    print("Shared service knob table (each tenant restricts it to its")
    print("own accuracy tolerance via a QoS cap):")
    for setting in table:
        print(
            f"  n={setting.configuration['n']:>3}: "
            f"speedup {setting.speedup:4.2f}x, "
            f"QoS loss {100 * setting.qos_loss:.3f}%"
        )

    floor = machine_cap_floor(experiment_machine())
    print(
        f"\nTenant mix (budget {DEFAULT_BUDGET_WATTS:.0f} W over two "
        f"machines; per-machine cap floor {floor:.0f} W):"
    )
    for tenant in default_tenant_mix():
        service = "exact (no knobs)" if tenant.qos_cap == 0.0 else "knobbed"
        print(
            f"  {tenant.name:<10} machine {tenant.machine_index}, "
            f"{tenant.trace_kind:<7} traffic at {tenant.rate:.1f} req/s, "
            f"{service}, SLA {tenant.attainment_target:.0%} under "
            f"{tenant.latency_bound:.1f} s"
        )

    print(
        f"\nServing both {ArbiterPolicy.STATIC_EQUAL.value} and "
        f"{ArbiterPolicy.SLA_AWARE.value} over the same traces...\n"
    )
    experiment = run_datacenter(Scale.TINY)
    print(format_datacenter(experiment))

    name, delta = experiment.best_improvement()
    print(
        f"\nThe arbiter moved watts toward machine 1 whenever billing's"
        f"\nrecent attainment sagged; {name} gained {delta:+.3f} attainment"
        f"\nwhile every machine stayed under its cap and the pool under"
        f"\nthe {experiment.budget_watts:.0f} W budget.  The knobbed"
        f"\ntenants on the donor machine kept their SLAs by spending"
        f"\ndynamic-knob speedup instead of watts — the paper's §5.5"
        f"\nmechanism, arbitrated across tenants at runtime."
    )


if __name__ == "__main__":
    main()
