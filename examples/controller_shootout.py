#!/usr/bin/env python3
"""Controller shootout: why PowerDial uses control theory (paper §6).

Runs four controller families through the §5.4 power-cap scenario on the
paper's plant model ``h(t+1) = c(t) * b * s(t)``:

* the paper's deadbeat integral controller (Eq. 3-4),
* a PID variant,
* a Green/Eon-style multiplicative step heuristic,
* bang-bang (full speed when behind, baseline when ahead),

then prints each one's step-by-step trace around the cap and the summary
scores.  It also executes the paper's Z-domain argument (Eq. 5-8) with
the transfer-function toolkit: the closed loop is exactly 1/z.

Run:
    python examples/controller_shootout.py
"""

from repro.control import (
    ClosedLoopScenario,
    MeasurementNoise,
    evaluate_controller,
    heartbeat_controller_tf,
    heartbeat_plant_tf,
    pulse_profile,
)
from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
)
from repro.core.controller import HeartRateController


def main():
    target = 10.0  # heartbeats per control period
    s_max = 4.0  # fastest calibrated knob setting
    cap_at, lift_at = 30, 90

    # -- Eq. 5-8, executed -------------------------------------------------
    controller_tf = heartbeat_controller_tf(target)
    plant_tf = heartbeat_plant_tf(target)
    closed = controller_tf.cascade(plant_tf).feedback()
    print("Z-domain check (Eq. 5-8):")
    print(f"  F(z)G(z) closed under unity feedback -> poles {closed.poles()}")
    print(f"  DC gain {closed.dc_gain():.3f} (1.0 = converges to target)")
    print(f"  convergence time {closed.convergence_time():.1f} periods "
          f"(deadbeat)\n")

    # -- the shootout --------------------------------------------------------
    scenario = ClosedLoopScenario(
        target_rate=target,
        baseline_rate=target,
        steps=120,
        capacity=pulse_profile(cap_at, lift_at, 1.6 / 2.4),
        noise=MeasurementNoise(sigma=0.01, seed=7),
        max_speedup=s_max,
    )
    contenders = [
        ("integral (paper)", HeartRateController(target, target, max_speedup=s_max)),
        ("pid kp=.2 ki=.8", PIDController(target, target, kp=0.2, ki=0.8,
                                          max_speedup=s_max)),
        ("heuristic x1.25", HeuristicStepController(target, step_factor=1.25,
                                                    max_speedup=s_max)),
        ("bang-bang", BangBangController(target, high_speedup=s_max)),
    ]

    results = [(name, evaluate_controller(c, scenario)) for name, c in contenders]

    print(f"Heart rate around the power cap (target {target:.0f}, "
          f"cap at step {cap_at}, lift at {lift_at}):")
    header = "step  " + "  ".join(f"{name:>16s}" for name, _ in results)
    print(header)
    for step in list(range(cap_at - 2, cap_at + 8)) + \
                list(range(lift_at - 2, lift_at + 8)):
        row = f"{step:4d}  " + "  ".join(
            f"{r.heart_rates[step]:16.2f}" for _, r in results
        )
        print(row)

    print("\nScores (lower is better except 'settled'):")
    print(f"{'controller':>16s}  {'ITAE':>9s}  {'mean |e|':>8s}  "
          f"{'settled after cap':>18s}  {'tail crossings':>14s}")
    for name, r in results:
        settle = r.settling_step(after=cap_at, tolerance=0.05)
        settled = "never" if settle is None or settle >= lift_at \
            else f"{settle - cap_at} steps"
        print(f"{name:>16s}  {r.itae:9.1f}  {100 * r.mean_abs_error:7.2f}%  "
              f"{settled:>18s}  {r.oscillation_crossings:14d}")

    print("\nThe integral controller settles in ~1 period after each "
          "transition;\nthe heuristics either track loosely or oscillate "
          "forever -- the paper's §6 claim, executed.")


if __name__ == "__main__":
    main()
