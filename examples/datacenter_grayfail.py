#!/usr/bin/env python3
"""Inject gray failures and watch the control plane degrade gracefully.

A `--chaos` kill is honest: the machine stops and everyone knows.
Gray failures lie — heartbeats go silent while the machine keeps
serving, commanded caps are silently swallowed by the actuator, a
straggler pins itself at its cap floor.  ARCHITECTURE.md invariant 8
says degraded mode never violates conservation or parity: faulted runs
stay byte-identical across backends, every injected fault and every
applier retry is journaled, and billing meters the *applied* DVFS
ground truth rather than the commands a fault blocked.

This walkthrough:

1. parses a declarative fault plan (the same grammar `--faults FILE`
   accepts) with a sensor dropout, an actuator drop window, and a
   straggler;
2. runs it on the serial backend and prints the journaled fault and
   retry timeline — quarantine, backoff retries, hysteretic recovery;
3. re-runs it on the sharded backend and shows bills, fault records,
   and retry records are byte-identical, with conservation balanced.

Run:
    python examples/datacenter_grayfail.py
"""

from repro.datacenter import fork_available, parse_fault_plan
from repro.datacenter.journal import canonical_json, encode_bill
from repro.experiments.common import Scale
from repro.experiments.datacenter import run_datacenter

FAULT_PLAN = """
# tuned for the tiny 40 s scenario (control barrier every ~6 s)
config seed=11 unresponsive_after=4 reintegrate=5 retry_base=2 retry_cap=8 retry_deadline=12
sensor machine=0 start=8 end=16 mode=dropout
actuator machine=1 start=10 end=22 mode=drop
straggler machine=0 start=24 end=30
"""


def main():
    print("1. Parsing the declarative fault plan...")
    plan = parse_fault_plan(FAULT_PLAN)
    print(
        f"   {len(plan.sensors)} sensor, {len(plan.actuators)} actuator, "
        f"{len(plan.stragglers)} straggler fault(s); retry deadline "
        f"{plan.retry_deadline_seconds:g}s"
    )

    print("\n2. Running the faulted scenario (serial backend)...")
    experiment = run_datacenter(scale=Scale.TINY, faults=plan)
    live = experiment.arbitrated
    for record in live.faults:
        where = (
            "" if record.machine_index is None else f" m{record.machine_index}"
        )
        mode = f" ({record.mode})" if record.mode else ""
        print(f"   t={record.time:5.1f}s  {record.kind}{mode}{where}")
    for retry in live.retries:
        applied = (
            "nothing (previous DVFS state survives)"
            if retry.applied_watts is None
            else f"{retry.applied_watts:.0f} W"
        )
        print(
            f"   t={retry.time:5.1f}s  retry attempt {retry.attempt} on "
            f"m{retry.machine_index}: target {retry.target_watts:.0f} W -> "
            f"applied {applied} ({retry.outcome})"
        )
    conservation = live.energy_conservation_rel_error()
    print(f"   billing conservation rel. error {conservation:.1e}")

    if not fork_available():
        print("\n3. (fork unavailable: skipping the sharded parity check)")
        return

    print("\n3. Re-running sharded (2 workers) — parity under faults...")
    sharded = run_datacenter(
        scale=Scale.TINY, faults=plan, backend="sharded", workers=2
    ).arbitrated
    assert sharded.faults == live.faults, "fault records diverged"
    assert sharded.retries == live.retries, "retry records diverged"
    serial_bills = [canonical_json(encode_bill(bill)) for bill in live.bills]
    sharded_bills = [
        canonical_json(encode_bill(bill)) for bill in sharded.bills
    ]
    assert sharded_bills == serial_bills, "bills diverged"
    print(
        f"   {len(serial_bills)} tenant bills, {len(live.faults)} fault "
        f"records, {len(live.retries)} retry records: byte-identical"
    )

    print("\nDegraded mode never violates conservation or parity.")


if __name__ == "__main__":
    main()
