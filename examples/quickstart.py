#!/usr/bin/env python3
"""Quickstart: turn a static parameter into a dynamic knob in ~60 lines.

A tiny Monte-Carlo estimator exposes one static parameter (``samples``).
PowerDial traces it into a control variable, calibrates the speedup/QoS
trade-off, and then holds the application's heart rate through a power
cap by dialing the knob at run time — no change to the application's
processing code.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import Machine, Parameter, build_powerdial, measure_baseline_rate
from repro.apps.base import Application, ItemResult
from repro.core.qos import DistortionMetric
from repro.core.runtime import RuntimeEvent
from repro.hardware.cpu import Processor


class PiEstimator(Application):
    """Estimates pi by dart-throwing; `samples` controls accuracy vs time."""

    name = "pi-estimator"

    @classmethod
    def parameters(cls):
        return (Parameter("samples", (2_000, 8_000, 32_000, 128_000), 128_000),)

    def initialize(self, config, space):
        # Startup derives the control variable from the static parameter.
        space.write("samples", config["samples"] + 0)

    def prepare(self, job):
        return list(range(job))  # job = number of estimates to produce

    def process_item(self, item, space, tracker):
        samples = int(space.read("samples"))
        rng = np.random.default_rng(item)  # common random numbers per item
        points = rng.uniform(size=(samples, 2))
        inside = float(np.mean(np.sum(points**2, axis=1) <= 1.0))
        tracker.add("main", float(samples))
        return ItemResult(output=4.0 * inside, work=float(samples))

    def qos_metric(self):
        return DistortionMetric(lambda outs: np.asarray(outs, dtype=float))


def main():
    # 1. Identify control variables + calibrate (Figure 1 workflow).
    system = build_powerdial(PiEstimator, training_jobs=[12])
    print(system.report)
    print()
    print("Calibrated knob table (speedup vs QoS loss):")
    for setting in system.table:
        print(
            f"  samples={setting.configuration['samples']:>7}: "
            f"speedup {setting.speedup:6.1f}x, "
            f"QoS loss {100 * setting.qos_loss:.4f}%"
        )

    # 2. Run under control on a simulated server; cap power mid-run.
    machine = Machine(processor=Processor(work_units_per_ghz_second=1e6))
    target = measure_baseline_rate(PiEstimator, 200, machine)
    runtime = system.runtime(machine, target_rate=target)
    events = [
        RuntimeEvent(at_beat=60, action=lambda m: m.set_frequency(1.6), label="cap"),
        RuntimeEvent(at_beat=150, action=lambda m: m.set_frequency(2.4), label="lift"),
    ]
    result = runtime.run([200], events=events)

    print(f"\nTarget heart rate: {target:.1f} beats/s; power cap at beat 60.")
    print("beat  norm.perf  knob.gain  freq")
    for sample in result.samples[::20]:
        perf = sample.normalized_performance
        print(
            f"{sample.beat:4d}  {('%.2f' % perf) if perf else '   -'}      "
            f"{sample.knob_gain:5.1f}   {sample.frequency_ghz:.2f} GHz"
        )
    capped = [
        s.normalized_performance
        for s in result.samples[100:150]
        if s.normalized_performance
    ]
    print(
        f"\nMean normalized performance during cap (post-transient): "
        f"{sum(capped) / len(capped):.3f} (1.0 = target held)"
    )


if __name__ == "__main__":
    main()
