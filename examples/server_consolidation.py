#!/usr/bin/env python3
"""Server consolidation scenario (paper §3 + §5.5, Figure 8) for swish++.

A search service is provisioned with three servers for its peak query
rate, but typical utilization is 20-30% with intermittent spikes — idle
servers burn ~90 W each doing nothing.  PowerDial's Equation 21 says two
servers suffice if each can speed up 1.5x by trimming low-ranked results
during spikes.  This example sizes the consolidated system, then replays
a spiky day against both deployments and accounts power and QoS.

Run:
    python examples/server_consolidation.py
"""

from repro.apps.swish import (
    InvertedIndex,
    SwishApp,
    generate_corpus,
    generate_queries,
)
from repro.cluster import ClusterSpec, replay_profile, spiky_profile
from repro.core.powerdial import build_powerdial
from repro.models.consolidation import machines_required, plan_consolidation
from repro.models.costs import CostModel, consolidation_savings


def main():
    print("Indexing the corpus (2000 synthetic 'books')...")
    index = InvertedIndex(
        generate_corpus(documents=2000, tokens_per_document=500,
                        vocabulary_size=20_000, seed=41)
    )
    app_factory = lambda: SwishApp(index=index, qos_cutoff=10)
    training = [generate_queries(index.corpus, count=120, seed=43)]
    system = build_powerdial(app_factory, training)

    print("\nCalibrated max-results knob (P@10 QoS):")
    for setting in system.table:
        print(f"  max-results={setting.configuration['max_results']:>3}: "
              f"speedup {setting.speedup:.3f}x, "
              f"QoS loss {100 * setting.qos_loss:.1f}%")

    bounded = system.table.with_qos_cap(0.35)
    speedup = bounded.max_speedup
    n_orig = 3
    n_new = machines_required(n_orig, speedup)
    print(f"\nEquation 21: S(QoS<=35%) = {speedup:.2f} "
          f"=> {n_orig} machines consolidate to {n_new}.")

    original = ClusterSpec(machines=n_orig, slots_per_machine=1)
    consolidated = ClusterSpec(machines=n_new, slots_per_machine=1)

    profile = spiky_profile(epochs=48, base_utilization=0.25, seed=7)
    print(f"\nReplaying a spiky day: {len(profile.utilizations)} epochs, "
          f"mean load {100 * profile.mean:.0f}%, "
          f"{sum(1 for u in profile.utilizations if u == 1.0)} spikes to peak.")

    result = replay_profile(original, consolidated, bounded, profile)
    print(f"\nEnergy over the day:")
    print(f"  original ({n_orig} machines):     "
          f"{result.original_energy_joules / 3.6e6:.2f} kWh")
    print(f"  consolidated ({n_new} machines): "
          f"{result.consolidated_energy_joules / 3.6e6:.2f} kWh")
    print(f"  saved: {100 * result.energy_savings_fraction:.0f}% "
          f"({result.oversubscribed_epochs} oversubscribed epochs)")
    print(f"  worst-case QoS loss during spikes: "
          f"{100 * result.worst_qos_loss:.1f}% "
          f"(top-10 results preserved; recall trimmed)")

    # Section 3: over the facility lifetime, capital can exceed energy.
    plan = plan_consolidation(
        n_orig, speedup, profile.mean, p_load=220.0, p_idle=90.0
    )
    model = CostModel()  # $4k servers, $10/W provisioning, PUE 1.7, 4 years
    savings = consolidation_savings(plan, peak_power_per_machine=220.0, model=model)
    print(f"\nLifetime cost over {model.lifetime_years:.0f} years "
          f"(Section 3 cost model):")
    print(f"  original:     ${savings.original.total:,.0f}")
    print(f"  consolidated: ${savings.consolidated.total:,.0f}")
    print(f"  saved:        ${savings.total_savings:,.0f} "
          f"(${savings.capital_savings:,.0f} capital + "
          f"${savings.energy_savings:,.0f} energy)")


if __name__ == "__main__":
    main()
