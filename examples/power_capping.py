#!/usr/bin/env python3
"""Power capping scenario (paper §5.4, Figure 7) on the x264 encoder.

A data center imposes a power cap — the server drops from 2.4 GHz to
1.6 GHz — while a video encode is in flight.  Without dynamic knobs the
encoder falls to ~2/3 of its target frame rate for the duration of the
cap; with PowerDial it briefly dips, then returns to target by trading a
little PSNR/bitrate quality for speed, and restores full quality the
moment the cap lifts.

Run:
    python examples/power_capping.py
"""

from repro.core.knobs import KnobTable
from repro.core.powerdial import build_powerdial, measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, RuntimeEvent
from repro.apps.x264 import X264App, synthesize_video
from repro.core.knobs import KnobSpace, Parameter
from repro.experiments.common import experiment_machine


def main():
    # Calibrate a modest knob space (subme x merange; ref fixed for speed).
    space = KnobSpace(
        (
            Parameter("subme", (1, 3, 5, 7), 7),
            Parameter("merange", (1, 2, 4, 8), 8),
            Parameter("ref", (1,), 1),
        )
    )
    training = [synthesize_video("train", frames=10, seed=1)]
    print("Calibrating x264 knobs (this explores 16 combinations)...")
    system = build_powerdial(X264App, training, knob_space=space)
    print(f"Pareto frontier: {len(system.table)} settings, "
          f"max speedup {system.table.max_speedup:.2f}x\n")

    stream = [synthesize_video("live", frames=200, seed=9)]
    machine = experiment_machine(2.4)
    target = measure_baseline_rate(
        X264App, stream[0], machine,
        configuration=system.table.baseline.configuration.as_dict(),
    )
    events = [
        RuntimeEvent(50, lambda m: m.set_frequency(1.6), "power cap"),
        RuntimeEvent(150, lambda m: m.set_frequency(2.4), "cap lifted"),
    ]

    print(f"Encoding 200 frames at target {target:.1f} fps; "
          f"cap at frame 50, lift at frame 150.\n")
    controlled = system.runtime(machine, target_rate=target).run(stream, events=events)

    rigid = PowerDialRuntime(
        app=X264App(),
        table=KnobTable([system.table.baseline]),
        machine=experiment_machine(2.4),
        target_rate=target,
    ).run(stream, events=events)

    print("frame  dynamic-knobs        no-knobs")
    print("       perf   gain  freq    perf")
    for dyn, fixed in zip(controlled.samples[::15], rigid.samples[::15]):
        dperf = dyn.normalized_performance
        fperf = fixed.normalized_performance
        print(
            f"{dyn.beat:5d}  "
            f"{('%.2f' % dperf) if dperf else '  - '}   "
            f"{dyn.knob_gain:4.2f}  {dyn.frequency_ghz:.2f}    "
            f"{('%.2f' % fperf) if fperf else '  - '}"
        )

    def mean_perf(result, lo, hi):
        vals = [s.normalized_performance for s in result.samples[lo:hi]
                if s.normalized_performance is not None]
        return sum(vals) / len(vals)

    print(f"\nDuring the cap (frames 90-150):")
    print(f"  with dynamic knobs: {mean_perf(controlled, 90, 150):.2f} of target")
    print(f"  without knobs:      {mean_perf(rigid, 90, 150):.2f} of target "
          f"(~{1.6 / 2.4:.2f} expected)")


if __name__ == "__main__":
    main()
