"""E-F6: regenerate Figure 6 (power vs QoS across DVFS states, §5.3).

Paper shapes: PowerDial holds performance within 5% of target at every
power state; mean system power falls monotonically with frequency
(16-21% total reduction at 1.6 GHz); QoS loss rises as frequency drops.
"""

import pytest

from repro.experiments import Scale, format_fig6, run_power_qos

BENCHMARKS = ("swaptions", "x264", "bodytrack", "swish++")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig6_power_qos(name, benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: run_power_qos(name, Scale.PAPER), rounds=1, iterations=1
    )
    points = experiment.points
    assert [p.frequency_ghz for p in points] == [
        2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6,
    ]
    # Performance within 5% of target at every state (§5.3).
    assert all(p.within_target for p in points), [
        (p.frequency_ghz, p.normalized_performance) for p in points
    ]
    # Power falls monotonically; total reduction in the paper's band.
    powers = [p.mean_power for p in points]
    assert all(b <= a + 1e-6 for a, b in zip(powers, powers[1:]))
    assert 0.08 < experiment.power_reduction() < 0.30
    # QoS loss at 1.6 GHz exceeds the 2.4 GHz loss.
    assert points[-1].qos_loss >= points[0].qos_loss
    artifact(f"fig6_{name.replace('+', 'p')}", format_fig6(experiment))
