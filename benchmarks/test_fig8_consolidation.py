"""E-F8: regenerate Figure 8 (server consolidation, §5.5).

Paper shapes: PARSEC benchmarks consolidate 4 machines to 1 (a 3/4
reduction) under a 5% QoS bound; swish++ consolidates 3 to 2 (1/3) under
its bound; consolidation saves ~66% power at 25% utilization and ~75% at
peak for PARSEC (25% for swish++), with QoS loss appearing only once the
small system is oversubscribed and staying within the bound.
"""

import pytest

from repro.experiments import Scale, format_fig8, run_consolidation

EXPECTED_MACHINES = {
    "swaptions": (4, 1),
    "x264": (4, 2),  # max speedup ~3.6 under the 5% bound -> ceil(4/3.6)
    "bodytrack": (4, 1),
    "swish++": (3, 2),
}


@pytest.mark.parametrize("name", sorted(EXPECTED_MACHINES))
def test_fig8_consolidation(name, benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: run_consolidation(name, Scale.PAPER), rounds=1, iterations=1
    )
    n_orig, n_new = EXPECTED_MACHINES[name]
    assert experiment.original_machines == n_orig
    assert experiment.consolidated_machines == n_new

    # Power savings across the sweep; consolidated never draws more.
    for point in experiment.points:
        assert point.consolidated_power <= point.original_power + 1e-9
    _, fraction_quarter = experiment.savings_at(0.25)
    assert fraction_quarter > 0.2

    # QoS: zero at low load, bounded at peak, rising along the sweep.
    # Measured QoS is noisy (Monte Carlo / particle-filter variance, as in
    # the paper's figures), so require a monotone trend rather than strict
    # sample-by-sample monotonicity: each dip must stay within 20% of the
    # peak loss, and the peak itself must land in the oversubscribed tail.
    losses = [p.qos_loss for p in experiment.points]
    assert losses[0] == 0.0
    noise_budget = 0.2 * max(losses)
    assert all(b >= a - noise_budget for a, b in zip(losses, losses[1:]))
    assert max(losses[-3:]) == max(losses)
    assert experiment.peak_qos_loss() <= experiment.qos_bound + 1e-9

    # Performance preserved ("at most negligible performance loss").
    assert all(p.performance_factor > 0.9 for p in experiment.points)
    artifact(f"fig8_{name.replace('+', 'p')}", format_fig8(experiment))
