"""Ablation: the 20-heartbeat time quantum (§2.3.3 and DESIGN.md).

Reruns the Figure 7 power-cap scenario with quanta of 5, 20 (the paper's
heuristic), and 80 heartbeats.  Expected shape: shorter quanta track the
target more tightly but churn through more knob settings; longer quanta
react sluggishly (larger RMS tracking error around the cap transitions)
while switching settings rarely.
"""

import pytest

from repro.experiments import format_quantum_ablation, run_quantum_ablation
from repro.experiments.common import Scale


def test_ablation_quantum(benchmark, artifact):
    ablation = benchmark.pedantic(
        lambda: run_quantum_ablation("swaptions", Scale.PAPER, quanta=(5, 20, 80)),
        rounds=1,
        iterations=1,
    )
    fast = ablation.result(5)
    paper = ablation.result(20)
    slow = ablation.result(80)

    # All quanta hold responsive performance through the cap.
    for result in ablation.results:
        assert result.capped_performance > 0.8
        assert result.recovery_beats >= 0  # never fails to recover

    # Tracking error grows with the quantum ...
    assert fast.performance_deviation <= paper.performance_deviation + 1e-9
    assert paper.performance_deviation < slow.performance_deviation
    # ... while setting churn shrinks with it.
    assert fast.setting_switches >= paper.setting_switches
    assert paper.setting_switches >= slow.setting_switches

    artifact("ablation_quantum", format_quantum_ablation(ablation))
