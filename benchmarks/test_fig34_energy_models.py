"""E-F3/F4: evaluate the Section 3 analytical energy models (Eq. 12-19).

Figures 3-4 are schematic; the quantitative content is the equations.
Shapes: knob savings are zero at S=1 and grow with S; with no slack the
DVFS-stretch strategy wins on this platform, while large slack favors
race-to-idle only when idle power is low relative to the DVFS point.
"""

import pytest

from repro.experiments import format_fig34, run_energy_models


def test_fig34_energy_models(benchmark, artifact):
    scenarios = benchmark.pedantic(run_energy_models, rounds=1, iterations=1)
    by_cell = {(s.slack_fraction, s.speedup): s for s in scenarios}

    # S = 1 recovers DVFS-only energy exactly (Eq. 17 = Eq. 18).
    for slack in (0.0, 0.25, 0.5):
        base = by_cell[(slack, 1.0)]
        assert base.result.savings == pytest.approx(0.0, abs=1e-9)

    # Savings grow with speedup at fixed slack.
    for slack in (0.0, 0.25, 0.5):
        savings = [by_cell[(slack, s)].result.savings for s in (1.0, 1.5, 2.0, 4.0)]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

    # Elastic energy never exceeds either pure strategy (Eq. 17).
    for scenario in scenarios:
        assert scenario.result.e_elastic <= scenario.result.e1 + 1e-9
        assert scenario.result.e_elastic <= scenario.result.e2 + 1e-9
    artifact("fig34_energy_models", format_fig34(scenarios))
