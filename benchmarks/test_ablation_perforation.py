"""Ablation: dynamic knobs vs loop perforation (paper §6).

The paper argues dynamic knobs beat blind mechanisms because they exploit
the application's *own* accuracy/effort machinery.  This bench perforates
the swaptions main loop (reusing the previous price for skipped
contracts) and compares QoS loss against calibrated knobs at matched
speedups: the knob curve should dominate everywhere.
"""

import pytest

from repro.apps.swaptions import SwaptionsApp, generate_swaptions
from repro.core.calibration import calibrate
from repro.core.knobs import KnobSpace, Parameter
from repro.core.perforation import PerforatedApplication
from repro.experiments.common import format_table


def test_ablation_knobs_vs_perforation(benchmark, artifact):
    jobs = [generate_swaptions(24, seed=61 + j) for j in range(2)]
    knob_space = KnobSpace(
        (Parameter("sm", (2_500, 5_000, 10_000, 20_000), 20_000),)
    )

    def run():
        knob_result = calibrate(SwaptionsApp, jobs, knob_space=knob_space)
        perforation_result = calibrate(
            lambda: PerforatedApplication(SwaptionsApp()), jobs
        )
        return knob_result, perforation_result

    knob_result, perforation_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    def loss_at(result, target_speedup):
        feasible = [p for p in result.points if p.speedup >= target_speedup * 0.95]
        return min(feasible, key=lambda p: p.qos_loss) if feasible else None

    rows = []
    for target in (2.0, 4.0, 8.0):
        knob_point = loss_at(knob_result, target)
        perf_point = loss_at(perforation_result, target)
        assert knob_point is not None and perf_point is not None
        # The headline: calibrated knobs dominate blind perforation.
        assert knob_point.qos_loss < perf_point.qos_loss, target
        rows.append(
            [
                f"{target:.0f}x",
                f"{100 * knob_point.qos_loss:.3f}",
                f"{100 * perf_point.qos_loss:.3f}",
                f"{perf_point.qos_loss / max(knob_point.qos_loss, 1e-12):.0f}x",
            ]
        )
    artifact(
        "ablation_perforation",
        "Ablation: QoS loss (%) at matched speedup, dynamic knobs vs loop "
        "perforation (swaptions)\n"
        + format_table(
            ["speedup", "dynamic knobs", "loop perforation", "knob advantage"],
            rows,
        ),
    )
