"""E-F5: regenerate Figure 5 (speedup vs QoS-loss trade-off spaces, §5.2).

Paper shapes: swaptions reaches the widest speedups at near-zero QoS loss
(~100x at <=1.5%, scaled here to ~50x by the knob-range scaling documented
in DESIGN.md); x264 reaches ~4.5x at <=7%; bodytrack ~7x at <=6%; swish++
~1.5x with loss dominated by recall.  Pareto settings generalize from
training to production inputs.
"""

import pytest

from repro.experiments import Scale, format_fig5, run_tradeoff

EXPECTED_SPEEDUP_BANDS = {
    "swaptions": (20.0, 60.0),
    "x264": (2.0, 7.0),
    "bodytrack": (4.0, 12.0),
    "swish++": (1.2, 2.0),
}

EXPECTED_PARETO_QOS_CAP = {
    "swaptions": 0.10,
    "x264": 0.30,
    "bodytrack": 0.35,
    "swish++": 0.40,
}


@pytest.mark.parametrize("name", sorted(EXPECTED_SPEEDUP_BANDS))
def test_fig5_tradeoff(name, benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: run_tradeoff(name, Scale.PAPER), rounds=1, iterations=1
    )
    low, high = EXPECTED_SPEEDUP_BANDS[name]
    assert low < experiment.max_speedup < high

    frontier = experiment.pareto_training
    speeds = [p.speedup for p in frontier]
    losses = [p.qos_loss for p in frontier]
    assert speeds == sorted(speeds)
    assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:]))
    assert max(losses) < EXPECTED_PARETO_QOS_CAP[name]

    # Production points track training points (the white squares hug the
    # black ones in Figure 5).
    for train, prod in zip(frontier, experiment.pareto_production):
        assert prod.speedup == pytest.approx(train.speedup, rel=0.15)
    artifact(f"fig5_{name.replace('+', 'p')}", format_fig5(experiment))
