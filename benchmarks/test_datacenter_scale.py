"""Benchmark E-DC: the datacenter subsystem at paper scale.

Four artifacts:

* ``datacenter`` — the headline static-vs-arbitrated tenant mix;
* ``datacenter_sweep`` — SLA attainment across utilization x budget x
  tenant mix, the scenario space the subsystem opens;
* ``datacenter_closed_form`` — the event-driven engine cross-validated
  against the §5.5 closed-form ``cluster.evaluate_system`` power model
  at matching utilization points;
* ``datacenter_speedup`` — wall-clock of the engine backends (the PR 1
  eager loop vs the lazy serial scheduler vs the sharded multiprocess
  backend) at growing pool sizes, via the :mod:`repro.bench` harness.
"""

import pytest

from repro.cluster.system import ClusterSpec, evaluate_system
from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter.engine import DatacenterEngine, InstanceBinding
from repro.datacenter.service import (
    ServiceApp,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.tenants import LatencySLA, TenantSpec
from repro.datacenter.traffic import poisson_trace
from repro.experiments import (
    Scale,
    built_service_system,
    experiment_machine,
    format_datacenter,
    format_table,
    run_datacenter,
)
from repro.experiments.datacenter import TenantScenario, default_tenant_mix


class TestDatacenterArbitration:
    def test_arbiter_beats_static_split(self, artifact):
        experiment = run_datacenter(Scale.PAPER)
        text = format_datacenter(experiment)
        artifact("datacenter", text)

        # Hard budget compliance under both policies.
        assert experiment.static.total_mean_power <= experiment.budget_watts
        assert (
            experiment.arbitrated.total_mean_power <= experiment.budget_watts
        )
        # Reallocation demonstrably helps at least one tenant's SLA.
        name, delta = experiment.best_improvement()
        assert delta > 0.0, "arbiter should improve some tenant's attainment"
        assert experiment.arbitrated.slas_met() >= experiment.static.slas_met()
        # The knob-poor tenant specifically must not get worse.
        assert experiment.attainment_delta("billing") > -0.02


class TestScenarioSweep:
    def test_utilization_budget_mix_sweep(self, artifact):
        rows = []
        improvements = []
        for mix_name, billing_cap in (("mixed", 0.0), ("all-knobbed", None)):
            for billing_rate in (2.2, 2.8):
                for budget in (390.0, 420.0):
                    tenants = tuple(
                        TenantScenario(
                            name=t.name,
                            machine_index=t.machine_index,
                            trace_kind=t.trace_kind,
                            rate=billing_rate if t.name == "billing" else t.rate,
                            qos_cap=(
                                billing_cap if t.name == "billing" else t.qos_cap
                            ),
                            latency_bound=t.latency_bound,
                            attainment_target=t.attainment_target,
                            weight=t.weight,
                            seed=t.seed,
                        )
                        for t in default_tenant_mix()
                    )
                    experiment = run_datacenter(
                        Scale.PAPER, budget_watts=budget, tenants=tenants
                    )
                    assert (
                        experiment.static.total_mean_power <= budget
                    ), "static split exceeded budget"
                    assert (
                        experiment.arbitrated.total_mean_power <= budget
                    ), "arbiter exceeded budget"
                    name, delta = experiment.best_improvement()
                    improvements.append(delta)
                    static_b = experiment.static.report_for("billing")
                    arb_b = experiment.arbitrated.report_for("billing")
                    rows.append(
                        [
                            mix_name,
                            f"{billing_rate:.1f}",
                            f"{budget:.0f}",
                            f"{experiment.static.total_mean_power:.0f}",
                            f"{experiment.arbitrated.total_mean_power:.0f}",
                            f"{static_b.attainment:.3f}",
                            f"{arb_b.attainment:.3f}",
                            f"{experiment.static.slas_met()}",
                            f"{experiment.arbitrated.slas_met()}",
                            f"{name} {delta:+.3f}",
                        ]
                    )
        text = "Datacenter scenario sweep (utilization x budget x mix)\n" + (
            format_table(
                [
                    "mix",
                    "billing r/s",
                    "budget W",
                    "static W",
                    "arb W",
                    "billing att s",
                    "billing att a",
                    "SLAs s",
                    "SLAs a",
                    "best gain",
                ],
                rows,
            )
        )
        artifact("datacenter_sweep", text)
        # Across the sweep the arbiter must help somewhere substantial.
        assert max(improvements) > 0.02


class TestClosedFormValidation:
    def test_engine_power_matches_cluster_model(self, artifact):
        """Event-driven power ≈ §5.5 closed form at matching utilization."""
        system = built_service_system()
        machines_count = 2
        horizon = 150.0
        spec = ClusterSpec(machines=machines_count, slots_per_machine=1)
        rows = []
        for utilization in (0.2, 0.5, 0.8):
            machines = [experiment_machine() for _ in range(machines_count)]
            target = measure_baseline_rate(
                ServiceApp, service_training_jobs()[0], machines[0]
            )
            items = 5
            request_rate = utilization * target / items
            bindings = []
            for index in range(machines_count):
                runtime = PowerDialRuntime(
                    app=ServiceApp(),
                    table=system.table,
                    machine=machines[index],
                    target_rate=target,
                )
                spec_t = TenantSpec(
                    name=f"uniform-{index}",
                    trace=poisson_trace(
                        request_rate, horizon, seed=50 + index
                    ),
                    sla=LatencySLA(2.0, 0.5),
                    job_factory=request_stream(
                        seed=60 + index, items_per_request=items
                    ),
                )
                bindings.append(
                    InstanceBinding(
                        tenant=spec_t, runtime=runtime, machine_index=index
                    )
                )
            result = DatacenterEngine(machines, bindings).run()
            closed = evaluate_system(spec, utilization * machines_count)
            rows.append(
                [
                    f"{utilization:.1f}",
                    f"{closed.power_watts:.1f}",
                    f"{result.total_mean_power:.1f}",
                    f"{100 * (result.total_mean_power / closed.power_watts - 1):+.1f}",
                ]
            )
            assert result.total_mean_power == pytest.approx(
                closed.power_watts, rel=0.10
            )
        text = (
            "Closed-form cluster model vs event-driven engine "
            "(2 machines, uniform Poisson load)\n"
            + format_table(
                ["utilization", "closed-form W", "engine W", "error %"], rows
            )
        )
        artifact("datacenter_closed_form", text)


class TestEngineScaling:
    def test_lazy_scheduler_outscales_eager_loop(self, artifact):
        """Regenerate the backend speedup table and pin the lazy win.

        The eager loop pays O(machines) per event; at mostly-idle pools
        the lazy scheduler's advantage must therefore grow with pool
        size and be decisive at the largest pool.  Sharded wall-clock is
        reported but not asserted: on a single-core host (CI containers)
        forked workers time-slice, so only the projected multi-core
        number is meaningful there.
        """
        from repro.bench import (
            bench_datacenter,
            environment_header,
            format_backend_table,
        )

        payload = bench_datacenter(
            pool_sizes=(16, 64), worker_counts=(4,), repeats=2
        )
        env = environment_header()
        text = (
            "Engine backend speedups (serial-old/eager vs serial-new/lazy "
            "vs sharded)\n"
            f"  host: {env['cpu_count']} cpu(s), python {env['python']}; "
            "projected = multi-core projection from worker CPU times\n"
            + format_backend_table(payload)
        )
        artifact("datacenter_speedup", text)

        (largest,) = [
            s for s in payload["scenarios"] if s["scenario"] == "open-64m"
        ]
        assert largest["machines"] == 64
        serial = largest["backends"]["serial"]
        assert serial["speedup_vs_eager"] > 1.3, (
            "lazy scheduler should clearly beat the eager loop at 64 "
            f"mostly-idle machines, got {serial['speedup_vs_eager']:.2f}x"
        )
