"""E-F7: regenerate Figure 7 (elastic response to power capping, §5.4).

Paper shapes: when the cap hits, the knob-controlled run spikes down,
the knob gain rises, and performance returns to target; the version
without dynamic knobs sits at ~2/3 of target (1.6/2.4 GHz) for the whole
cap; when the cap lifts, knobs return to baseline (gain ~1) and QoS is
fully restored.
"""

import pytest

from repro.experiments import Scale, format_fig7, run_powercap

BENCHMARKS = ("swaptions", "x264", "bodytrack", "swish++")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fig7_powercap(name, benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: run_powercap(name, Scale.PAPER), rounds=1, iterations=1
    )
    knobs_perf, no_knobs_perf = experiment.capped_performance()
    # With knobs: performance recovers to the target under the cap.
    assert knobs_perf == pytest.approx(1.0, abs=0.15), name
    # Without knobs: stuck near the frequency ratio.
    assert no_knobs_perf == pytest.approx(1.6 / 2.4, abs=0.12), name
    # The gain plateau appears only during the cap.
    assert experiment.mean_gain_during_cap() > 1.1
    assert experiment.tail_gain() == pytest.approx(1.0, abs=0.2)
    # Recovery within a few control quanta.
    assert 0 <= experiment.recovery_beats() <= 60
    artifact(f"fig7_{name.replace('+', 'p')}", format_fig7(experiment))
