"""E-SLA: latency SLAs under power capping (§3).

Paper claim: power capping "may violate latency service level
agreements"; PowerDial absorbs the cap by trading QoS.  Expected shape:
the capped knob-less queue diverges (p95 latency an order of magnitude
past the SLA); the capped PowerDial server's latency distribution is
statistically the uncapped reference's, with the cap paid in bounded
QoS loss (for swish++: trimmed recall) instead of latency.
"""

import pytest

from repro.experiments import Scale, format_sla, run_sla


@pytest.mark.parametrize("name", ["swish++", "swaptions"])
def test_sla_latency(name, benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: run_sla(name, Scale.PAPER), rounds=1, iterations=1
    )
    reference = experiment.series_by_label("uncapped reference")
    no_knobs = experiment.series_by_label("capped, no knobs")
    knobs = experiment.series_by_label("capped, dynamic knobs")

    # Without knobs the capped queue diverges: the SLA collapses.
    assert no_knobs.stats.p95 > 5.0 * reference.stats.p95
    assert no_knobs.stats.p95 > experiment.sla_seconds
    assert no_knobs.violation_fraction > 0.3

    # With knobs, latency matches the uncapped reference ...
    assert knobs.stats.p95 < 2.0 * reference.stats.p95
    assert knobs.violation_fraction < reference.violation_fraction + 0.05
    # ... throughput is preserved ...
    assert knobs.throughput == pytest.approx(reference.throughput, rel=0.05)
    # ... and the cap is paid in QoS, not latency.
    assert knobs.mean_qos_loss > 0.0
    assert reference.mean_qos_loss == 0.0
    assert no_knobs.mean_qos_loss == 0.0

    artifact(f"sla_{name.replace('+', 'p')}", format_sla(experiment))
