"""E-S51: control-system overhead (§5.1).

Paper: "The overhead of the PowerDial control system is insignificant and
within the run-to-run variations."  In our virtual-time reproduction the
modeled overhead is exactly zero (the runtime adds no application work);
the wall-clock harness overhead is reported for completeness.
"""

import pytest

from repro.experiments import Scale, format_overhead, run_overhead

BENCHMARKS = ("swaptions", "x264", "bodytrack", "swish++")


def test_overhead(benchmark, artifact):
    results = benchmark.pedantic(
        lambda: [run_overhead(name, Scale.TINY) for name in BENCHMARKS],
        rounds=1,
        iterations=1,
    )
    for result in results:
        # Never slower than the static run; a noisy workload may nudge a
        # knob and finish marginally faster, never more than a few percent.
        assert result.modeled_overhead <= 1e-9, result.name
        assert result.modeled_overhead > -0.05, result.name
    artifact("overhead", format_overhead(results))
