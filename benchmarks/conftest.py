"""Benchmark-harness fixtures.

Every benchmark regenerates one paper artifact (table or figure) at PAPER
scale, asserts its headline shape, and emits the paper-style rows both to
stdout and to ``benchmarks/output/<artifact>.txt`` so the regenerated
artifacts persist after the run.

Everything under ``benchmarks/`` is marked ``slow``: the fast tier
(``pytest -m "not slow"``) runs the unit and tiny-scale tests only.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_collection_modifyitems(items):
    """Mark every paper-scale benchmark as slow."""
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture()
def artifact():
    """Persist and print a rendered paper artifact."""

    def _save(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
