"""Ablation: actuation policies (§2.3.3 and DESIGN.md).

Compares the paper's two constraint solutions (minimal-speedup and
race-to-idle) and our LP extension (optimal-QoS) at matched throughput:

* minimal-speedup minimizes QoS loss among the paper's policies but can
  lose to the LP on non-convex frontiers;
* race-to-idle trades QoS for idle time — on a platform with high idle
  power (this one: 90 W idle) it burns more energy, which is exactly the
  paper's Figure 4 argument for choosing per-platform.
"""

import pytest

from repro.core.actuator import ActuationPolicy, Actuator
from repro.experiments import Scale, built_system, format_table


def _plan_cost(plan):
    return plan.expected_qos_loss()


def test_actuation_policy_ablation(benchmark, artifact):
    system = built_system("bodytrack", Scale.PAPER)
    table = system.table

    def sweep():
        rows = []
        speedups = [1.2, 1.5, 2.0, 3.0, 4.0, 5.0]
        for target in speedups:
            minimal = Actuator(table, ActuationPolicy.MINIMAL_SPEEDUP).plan(target)
            optimal = Actuator(table, ActuationPolicy.OPTIMAL_QOS).plan(target)
            race = Actuator(table, ActuationPolicy.RACE_TO_IDLE).plan(target)
            rows.append((target, minimal, optimal, race))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    formatted = []
    for target, minimal, optimal, race in rows:
        # All policies hit the commanded average speedup (Eq. 9).
        for plan in (minimal, optimal, race):
            achieved = sum(s.fraction * s.speedup for s in plan.segments)
            assert achieved == pytest.approx(target, rel=1e-6)
        # The LP never loses to the paper's minimal-speedup heuristic.
        assert _plan_cost(optimal) <= _plan_cost(minimal) + 1e-9
        # Race-to-idle pays QoS for idle time.
        assert race.idle_fraction() > 0.0
        formatted.append(
            [
                f"{target:.1f}",
                f"{100 * _plan_cost(minimal):.3f}",
                f"{100 * _plan_cost(optimal):.3f}",
                f"{100 * _plan_cost(race):.3f}",
                f"{100 * race.idle_fraction():.1f}%",
            ]
        )
    artifact(
        "ablation_actuation",
        "Ablation: expected QoS loss (%) by actuation policy (bodytrack table)\n"
        + format_table(
            ["speedup", "minimal-speedup", "optimal-qos (LP)", "race-to-idle", "idle"],
            formatted,
        ),
    )
