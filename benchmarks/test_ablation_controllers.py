"""Ablation: controller families (§2.3.2, §6 and DESIGN.md).

Scores the paper's integral controller against PID, a Green/Eon-style
heuristic step controller, and bang-bang on the power-cap scenario over
each benchmark's calibrated plant.  Paper claim under test (§6): the
control-theoretic design converges provably and predictably where the
heuristics either track worse (higher ITAE) or oscillate forever.
"""

import math

import pytest

from repro.experiments import format_controller_ablation, run_controller_ablation
from repro.experiments.common import Scale

APPS = ["swaptions", "x264", "bodytrack", "swish++"]


@pytest.mark.parametrize("name", sorted(APPS))
def test_ablation_controllers(name, benchmark, artifact):
    ablation = benchmark.pedantic(
        lambda: run_controller_ablation(name, Scale.PAPER),
        rounds=1,
        iterations=1,
    )
    integral = ablation.result("integral (paper)")
    heuristic = ablation.result("heuristic step")
    bang_bang = ablation.result("bang-bang")

    # The paper's controller settles after both transitions, quickly.
    assert integral.settle_after_cap is not None
    assert integral.settle_after_cap <= 10
    assert integral.settle_after_lift is not None
    assert integral.settle_after_lift <= 10

    # It tracks at least as well as every alternative (ITAE).  (QoS loss
    # is not compared across controllers: an oscillating policy can show
    # lower mean QoS simply by failing to deliver the target rate.)
    for other in ablation.results:
        assert integral.evaluation.itae <= other.evaluation.itae + 1e-9

    # The heuristics pay for their blindness: visibly worse tracking,
    # and bang-bang limit-cycles across the target indefinitely.
    assert heuristic.evaluation.itae > 1.5 * integral.evaluation.itae
    assert bang_bang.evaluation.oscillation_crossings >= 10
    assert (
        bang_bang.evaluation.mean_abs_error
        > 5 * integral.evaluation.mean_abs_error
    )

    # The integral controller's QoS cost is finite and bounded.
    assert not math.isnan(integral.mean_qos_loss)
    assert 0.0 <= integral.mean_qos_loss < 1.0
    artifact(
        f"ablation_controllers_{name.replace('+', 'p')}",
        format_controller_ablation(ablation),
    )
