"""E-T2: regenerate Table 2 (training-vs-production correlation, §5.2).

Paper values: speedup correlations 0.995-1.000; QoS correlations
0.839-0.999.  The shape to reproduce: training behavior is an excellent
predictor of production behavior (all coefficients close to 1).
"""

import pytest

from repro.experiments import Scale, format_table2, run_tradeoff

BENCHMARKS = ("swaptions", "x264", "bodytrack", "swish++")


def test_table2_correlation(benchmark, artifact):
    experiments = benchmark.pedantic(
        lambda: [run_tradeoff(name, Scale.PAPER) for name in BENCHMARKS],
        rounds=1,
        iterations=1,
    )
    for experiment in experiments:
        assert experiment.speedup_correlation > 0.95, experiment.name
        assert experiment.qos_correlation > 0.75, experiment.name
    artifact("table2_correlation", format_table2(experiments))
