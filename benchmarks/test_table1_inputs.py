"""E-T1: regenerate Table 1 (training and production inputs, §4)."""

from repro.experiments import Scale, format_table1, summarize_inputs


def test_table1_inputs(benchmark, artifact):
    summaries = benchmark.pedantic(
        lambda: summarize_inputs(Scale.PAPER), rounds=1, iterations=1
    )
    assert {s.name for s in summaries} == {
        "swaptions",
        "x264",
        "bodytrack",
        "swish++",
    }
    # Production sets at least match training sets in size, as in Table 1.
    for summary in summaries:
        assert summary.production_units >= summary.training_units
    artifact("table1_inputs", format_table1(summaries))
