"""The control-variable report (paper Section 2.1).

"To enable a developer to (if desired) check that neither of these
potential sources of imprecision affects the validity of the control
variables, PowerDial produces a control variable report.  This report lists
the control variables, the corresponding configuration parameters from
which their values are derived, and the statements in the application that
access them."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracing.tracer import ControlVariableSet

__all__ = ["ControlVariableReport", "render_report"]


@dataclass(frozen=True)
class ControlVariableReport:
    """A rendered control-variable report.

    Attributes:
        application: Application name the report describes.
        text: The full human-readable report.
        variable_count: Number of control variables listed.
    """

    application: str
    text: str
    variable_count: int

    def __str__(self) -> str:
        return self.text


def render_report(
    application: str, control_set: ControlVariableSet
) -> ControlVariableReport:
    """Render the developer-facing report for an identified control set."""
    lines = [
        f"Control variable report — {application}",
        f"Dynamic knob parameters: {sorted(control_set.knob_parameters)}",
        f"Control variables found: {len(control_set.variables)}",
        "",
    ]
    for variable in control_set.variables:
        lines.append(f"* {variable.name}")
        lines.append(f"    derived from : {sorted(variable.parameters)}")
        writes = ", ".join(variable.write_sites) or "(none observed)"
        reads = ", ".join(variable.read_sites) or "(none observed)"
        lines.append(f"    written at   : {writes}")
        lines.append(f"    read at      : {reads}")
        sample_count = len(control_set.values)
        lines.append(f"    recorded for : {sample_count} parameter combination(s)")
    lines.append("")
    lines.append(
        "NOTE: influence tracing is dynamic and does not follow indirect "
        "control-flow or array-index influence; audit the sites above if "
        "unexercised paths may exist."
    )
    text = "\n".join(lines)
    return ControlVariableReport(
        application=application,
        text=text,
        variable_count=len(control_set.variables),
    )
