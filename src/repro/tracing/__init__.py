"""Dynamic influence tracing and control-variable identification (Section 2.1).

The subsystem that turns static configuration parameters into dynamic
knobs: value-level influence propagation, the logged application address
space, the four validity checks, the tracing driver, and the developer
report.
"""

from repro.tracing.checks import (
    CandidateVariables,
    KnobRejectionError,
    check_consistent,
    check_constant,
    filter_relevant,
    find_candidate_variables,
)
from repro.tracing.influence import (
    TracedValue,
    combine_influence,
    influence_of,
    is_traced,
    strip,
    traced,
)
from repro.tracing.report import ControlVariableReport, render_report
from repro.tracing.tracer import (
    ControlVariable,
    ControlVariableSet,
    TraceResult,
    identify_control_variables,
    trace_configuration,
)
from repro.tracing.variables import Access, AddressSpace, AddressSpaceError, Phase

__all__ = [
    "TracedValue",
    "traced",
    "influence_of",
    "strip",
    "is_traced",
    "combine_influence",
    "AddressSpace",
    "AddressSpaceError",
    "Access",
    "Phase",
    "KnobRejectionError",
    "CandidateVariables",
    "find_candidate_variables",
    "filter_relevant",
    "check_constant",
    "check_consistent",
    "TraceResult",
    "ControlVariable",
    "ControlVariableSet",
    "trace_configuration",
    "identify_control_variables",
    "ControlVariableReport",
    "render_report",
]
