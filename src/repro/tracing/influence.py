"""Dynamic influence tracing at the value level (paper Section 2.1).

The paper's tracer is an LLVM source instrumentor for C/C++ that tags every
computed value with the set of configuration parameters that influenced it.
We implement the same dynamic analysis for Python: a configuration
parameter enters the application as a :class:`TracedValue`, and arithmetic
on traced values propagates the union of the operands' influence sets.

Like the paper's system, the analysis is *data-flow only*: it does not
trace indirect control-flow influence (branching on a traced value yields
plain booleans) nor array-index influence (indexing with a traced value
returns the element's own influence).  The control-variable report exists
precisely so a developer can audit the consequences of this imprecision.

Supported datatypes mirror the paper's implementation: ``int``, ``float``
(``long`` and ``double`` collapse onto these in Python) and vectors
(Python lists of traced scalars stand in for STL vectors).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "TracedValue",
    "traced",
    "influence_of",
    "strip",
    "is_traced",
    "combine_influence",
]

Influence = frozenset

_EMPTY: frozenset[str] = frozenset()


def combine_influence(*values: Any) -> frozenset[str]:
    """Union of the influence sets of ``values`` (plain values contribute none)."""
    result: frozenset[str] = _EMPTY
    for value in values:
        if isinstance(value, TracedValue):
            result = result | value.influence
    return result


def influence_of(value: Any) -> frozenset[str]:
    """The influence set of ``value``.

    Scalars report their own set; lists and tuples report the union of
    their elements' sets; everything else reports the empty set.
    """
    if isinstance(value, TracedValue):
        return value.influence
    if isinstance(value, (list, tuple)):
        result: frozenset[str] = _EMPTY
        for item in value:
            result = result | influence_of(item)
        return result
    return _EMPTY


def strip(value: Any) -> Any:
    """Recursively remove tracing wrappers, returning plain Python values."""
    if isinstance(value, TracedValue):
        return value.value
    if isinstance(value, list):
        return [strip(item) for item in value]
    if isinstance(value, tuple):
        return tuple(strip(item) for item in value)
    return value


def is_traced(value: Any) -> bool:
    """True if ``value`` carries a non-empty influence set."""
    return bool(influence_of(value))


def traced(value: Any, *parameters: str) -> Any:
    """Wrap ``value`` so it carries influence from ``parameters``.

    Lists and tuples are wrapped element-wise (the container itself stays a
    plain container, matching how the paper traces STL vector contents).
    """
    influence = frozenset(parameters)
    if isinstance(value, TracedValue):
        return TracedValue(value.value, value.influence | influence)
    if isinstance(value, list):
        return [traced(item, *parameters) for item in value]
    if isinstance(value, tuple):
        return tuple(traced(item, *parameters) for item in value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(
            f"only int/float/list/tuple values can be traced, got {type(value).__name__}"
        )
    return TracedValue(value, influence)


def _unwrap(value: Any) -> Any:
    return value.value if isinstance(value, TracedValue) else value


class TracedValue:
    """A numeric value tagged with the parameters that influenced it.

    Arithmetic returns new :class:`TracedValue` instances whose influence
    is the union of the operands'.  Comparisons, hashing, and truthiness
    return plain results (control flow is untracked, as in the paper).
    """

    __slots__ = ("value", "influence")

    def __init__(self, value: int | float, influence: Iterable[str] = ()) -> None:
        self.value = value
        self.influence = frozenset(influence)

    # -- representation -------------------------------------------------
    def __repr__(self) -> str:
        tags = ",".join(sorted(self.influence)) or "-"
        return f"TracedValue({self.value!r} <- {tags})"

    # -- conversion (influence is dropped at the boundary) ---------------
    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __index__(self) -> int:
        if isinstance(self.value, int):
            return self.value
        raise TypeError(f"cannot use non-integer TracedValue {self.value!r} as index")

    def __bool__(self) -> bool:
        return bool(self.value)

    def __hash__(self) -> int:
        return hash(self.value)

    # -- comparisons (plain bool: control flow untracked) ----------------
    def __eq__(self, other: Any) -> bool:
        return self.value == _unwrap(other)

    def __ne__(self, other: Any) -> bool:
        return self.value != _unwrap(other)

    def __lt__(self, other: Any) -> bool:
        return self.value < _unwrap(other)

    def __le__(self, other: Any) -> bool:
        return self.value <= _unwrap(other)

    def __gt__(self, other: Any) -> bool:
        return self.value > _unwrap(other)

    def __ge__(self, other: Any) -> bool:
        return self.value >= _unwrap(other)

    # -- arithmetic -------------------------------------------------------
    def _binary(self, other: Any, op) -> "TracedValue":
        result = op(self.value, _unwrap(other))
        return TracedValue(result, self.influence | combine_influence(other))

    def _rbinary(self, other: Any, op) -> "TracedValue":
        result = op(_unwrap(other), self.value)
        return TracedValue(result, self.influence | combine_influence(other))

    def __add__(self, other): return self._binary(other, lambda a, b: a + b)
    def __radd__(self, other): return self._rbinary(other, lambda a, b: a + b)
    def __sub__(self, other): return self._binary(other, lambda a, b: a - b)
    def __rsub__(self, other): return self._rbinary(other, lambda a, b: a - b)
    def __mul__(self, other): return self._binary(other, lambda a, b: a * b)
    def __rmul__(self, other): return self._rbinary(other, lambda a, b: a * b)
    def __truediv__(self, other): return self._binary(other, lambda a, b: a / b)
    def __rtruediv__(self, other): return self._rbinary(other, lambda a, b: a / b)
    def __floordiv__(self, other): return self._binary(other, lambda a, b: a // b)
    def __rfloordiv__(self, other): return self._rbinary(other, lambda a, b: a // b)
    def __mod__(self, other): return self._binary(other, lambda a, b: a % b)
    def __rmod__(self, other): return self._rbinary(other, lambda a, b: a % b)
    def __pow__(self, other): return self._binary(other, lambda a, b: a ** b)
    def __rpow__(self, other): return self._rbinary(other, lambda a, b: a ** b)

    def __neg__(self) -> "TracedValue":
        return TracedValue(-self.value, self.influence)

    def __pos__(self) -> "TracedValue":
        return TracedValue(+self.value, self.influence)

    def __abs__(self) -> "TracedValue":
        return TracedValue(abs(self.value), self.influence)

    def __round__(self, ndigits: int | None = None) -> "TracedValue":
        return TracedValue(round(self.value, ndigits), self.influence)

    def __floor__(self) -> "TracedValue":
        return TracedValue(math.floor(self.value), self.influence)

    def __ceil__(self) -> "TracedValue":
        return TracedValue(math.ceil(self.value), self.influence)

    def __trunc__(self) -> "TracedValue":
        return TracedValue(math.trunc(self.value), self.influence)

    # -- influence-preserving helpers ------------------------------------
    def min_with(self, other: Any) -> "TracedValue":
        """Influence-preserving minimum (built-in ``min`` would drop the
        influence set whenever the plain operand wins)."""
        return self._binary(other, min)

    def max_with(self, other: Any) -> "TracedValue":
        """Influence-preserving maximum; see :meth:`min_with`."""
        return self._binary(other, max)
