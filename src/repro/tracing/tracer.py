"""Dynamic knob identification: the influence-tracing driver (Section 2.1).

For each combination of configuration parameter settings the tracer runs an
instrumented execution: knob parameters enter the application as traced
values, startup derives state into a logged :class:`AddressSpace`, and a
short prefix of the main control loop is executed so read/write phases can
be observed.  The per-configuration traces feed the validity checks and
yield a :class:`ControlVariableSet` — the complete table of control
variables and the value each one takes under every knob setting.  This
table is what the runtime pokes into the address space to move the
application around its trade-off space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Protocol, Sequence

from repro.tracing.checks import (
    CandidateVariables,
    check_consistent,
    check_constant,
    filter_relevant,
    find_candidate_variables,
)
from repro.tracing.influence import strip, traced
from repro.tracing.variables import Access, AddressSpace

__all__ = [
    "TraceableApplication",
    "TraceResult",
    "ControlVariable",
    "ControlVariableSet",
    "trace_configuration",
    "identify_control_variables",
]


class TraceableApplication(Protocol):
    """Structural protocol the tracer needs from an application."""

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        """Derive configuration-dependent state into ``space``."""

    def prepare(self, job: Any) -> Sequence[Any]:
        """Return the main-control-loop items for one input job."""

    def process_item(self, item: Any, space: AddressSpace, tracker: Any) -> Any:
        """Process one item, reading control state from ``space``."""


class _NullTracker:
    """Work tracker that discards everything (tracing ignores work)."""

    def add(self, section: str, units: float) -> None:
        pass


@dataclass
class TraceResult:
    """Everything observed during one instrumented execution.

    Attributes:
        configuration: The parameter settings used.
        space: The logged address space after the run.
        candidates: Variables surviving Complete/Pure + Relevant + Constant.
        values: Plain (stripped) values of the candidate variables.
    """

    configuration: Mapping[str, Any]
    space: AddressSpace
    candidates: CandidateVariables
    values: dict[str, Any] = field(default_factory=dict)


def trace_configuration(
    app: TraceableApplication,
    configuration: Mapping[str, Any],
    knob_parameters: set[str],
    sample_job: Any,
    loop_iterations: int = 3,
) -> TraceResult:
    """Run one instrumented execution and apply the per-run checks.

    Args:
        app: A fresh application instance.
        configuration: Full parameter settings (knob and non-knob).
        knob_parameters: Names of the parameters being transformed.
        sample_job: One representative input; a short prefix of its items
            is processed so main-loop accesses are observed.
        loop_iterations: How many main-loop iterations to execute.
    """
    space = AddressSpace(log_accesses=True)
    # Every (traceable) parameter is tagged with its own name — not just the
    # knob parameters — so the Pure check can see foreign influence.
    instrumented: dict[str, Any] = {}
    for name, value in configuration.items():
        try:
            instrumented[name] = traced(value, name)
        except TypeError:
            instrumented[name] = value  # non-numeric config stays plain
    app.initialize(instrumented, space)
    candidates = find_candidate_variables(space, knob_parameters)

    items = app.prepare(sample_job)
    tracker = _NullTracker()
    for index, item in enumerate(items):
        if index >= loop_iterations:
            break
        space.mark_first_heartbeat()
        app.process_item(item, space, tracker)

    candidates = filter_relevant(candidates, space)
    check_constant(candidates, space)
    values = {name: strip(space.peek(name)) for name in candidates.names}
    return TraceResult(
        configuration=dict(configuration),
        space=space,
        candidates=candidates,
        values=values,
    )


@dataclass(frozen=True)
class ControlVariable:
    """One identified control variable.

    Attributes:
        name: Variable name in the application address space.
        parameters: The knob parameters its value derives from.
        read_sites: Code sites reading it in the main loop.
        write_sites: Code sites writing it during startup.
    """

    name: str
    parameters: frozenset[str]
    read_sites: tuple[str, ...]
    write_sites: tuple[str, ...]


@dataclass
class ControlVariableSet:
    """The calibrated control-variable table for one application.

    Attributes:
        variables: The identified control variables.
        knob_parameters: Parameters transformed into dynamic knobs.
        values: ``values[config_key][var_name]`` — the recorded plain value
            of each control variable under each parameter combination.
            ``config_key`` is the sorted tuple of ``(param, value)`` pairs.
    """

    variables: list[ControlVariable]
    knob_parameters: set[str]
    values: dict[tuple, dict[str, Any]]

    @staticmethod
    def config_key(configuration: Mapping[str, Any]) -> tuple:
        """Canonical hashable key for a parameter combination."""
        return tuple(sorted((str(k), v) for k, v in configuration.items()))

    def values_for(self, configuration: Mapping[str, Any]) -> dict[str, Any]:
        """Control-variable values recorded for ``configuration``."""
        key = self.config_key(configuration)
        if key not in self.values:
            raise KeyError(f"no recorded values for configuration {configuration!r}")
        return dict(self.values[key])

    @property
    def names(self) -> list[str]:
        """Names of all control variables."""
        return [variable.name for variable in self.variables]


def _sites(accesses: Iterable[Access], name: str) -> tuple[str, ...]:
    seen: list[str] = []
    for access in accesses:
        if access.name == name and access.site not in seen:
            seen.append(access.site)
    return tuple(seen)


def identify_control_variables(
    app_factory,
    configurations: Sequence[Mapping[str, Any]],
    knob_parameters: set[str],
    sample_job: Any,
    loop_iterations: int = 3,
) -> ControlVariableSet:
    """Trace every parameter combination and build the control-variable set.

    Runs :func:`trace_configuration` for each combination, applies the
    Consistent check across combinations, and records each variable's value
    under each combination (the data the runtime replays at actuation
    time).

    Raises :class:`~repro.tracing.checks.KnobRejectionError` if any check
    fails.
    """
    traces: dict[tuple, TraceResult] = {}
    for configuration in configurations:
        app = app_factory()
        result = trace_configuration(
            app, configuration, knob_parameters, sample_job, loop_iterations
        )
        traces[ControlVariableSet.config_key(configuration)] = result

    common = check_consistent(
        {key: result.candidates for key, result in traces.items()}
    )

    reference = next(iter(traces.values()))
    variables = [
        ControlVariable(
            name=name,
            parameters=reference.candidates.influences[name],
            read_sites=_sites(reference.space.reads, name),
            write_sites=_sites(reference.space.writes, name),
        )
        for name in sorted(common)
    ]
    values = {
        key: {name: result.values[name] for name in common}
        for key, result in traces.items()
    }
    return ControlVariableSet(
        variables=variables, knob_parameters=set(knob_parameters), values=values
    )
