"""The application address space and its access log (paper Section 2.1).

The paper stores control variables "in the address space of the running
application" and instruments the production binary to register their
addresses.  Our applications keep their configuration-derived state in an
explicit :class:`AddressSpace` — a named variable store that records every
read and write together with the execution *phase* (before or after the
first heartbeat).  Those logs drive the Relevant and Constant checks, and
the store's :meth:`AddressSpace.poke` is the mechanism the dynamic-knob
runtime uses to move the application to a different operating point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.tracing.influence import influence_of, strip

__all__ = ["Phase", "Access", "AddressSpace", "AddressSpaceError"]


class AddressSpaceError(KeyError):
    """Raised on access to an unknown variable."""


class Phase(enum.Enum):
    """Execution phase relative to the application's first heartbeat."""

    STARTUP = "startup"
    MAIN = "main"


@dataclass(frozen=True)
class Access:
    """One logged variable access.

    Attributes:
        name: Variable name.
        phase: Phase in which the access happened.
        site: Code location label (``module.qualname`` of the accessor) —
            the paper's report lists "the statements in the application
            that access them".
    """

    name: str
    phase: Phase
    site: str


def _caller_site(depth: int = 2) -> str:
    import sys

    frame = sys._getframe(depth)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_qualname}"


class AddressSpace:
    """Named variable store with phase-aware access logging.

    Args:
        log_accesses: When True (tracing runs), every read/write is logged
            with its call site.  Production runs may disable logging; the
            knob runtime only needs :meth:`poke`.
    """

    def __init__(self, log_accesses: bool = True) -> None:
        self._values: dict[str, Any] = {}
        self._phase = Phase.STARTUP
        self._log = log_accesses
        self.reads: list[Access] = []
        self.writes: list[Access] = []
        self.pokes: list[Access] = []

    # -- phase ------------------------------------------------------------
    @property
    def phase(self) -> Phase:
        """Current execution phase."""
        return self._phase

    def mark_first_heartbeat(self) -> None:
        """Switch to the MAIN phase (idempotent)."""
        self._phase = Phase.MAIN

    # -- application-visible operations ------------------------------------
    def write(self, name: str, value: Any) -> None:
        """Store ``value`` under ``name`` (an application write)."""
        if self._log:
            self.writes.append(Access(name, self._phase, _caller_site()))
        self._values[name] = value

    def read(self, name: str) -> Any:
        """Read the variable ``name`` (an application read)."""
        if name not in self._values:
            raise AddressSpaceError(f"unknown variable {name!r}")
        if self._log:
            self.reads.append(Access(name, self._phase, _caller_site()))
        return self._values[name]

    # -- runtime (non-application) operations -------------------------------
    def poke(self, name: str, value: Any) -> None:
        """Set a control variable from *outside* the application.

        This is the dynamic-knob actuation path: the PowerDial runtime
        writes a previously recorded value into the address space.  Pokes
        are logged separately and do not count as application writes for
        the Constant check.
        """
        if name not in self._values:
            raise AddressSpaceError(f"cannot poke unknown variable {name!r}")
        if self._log:
            self.pokes.append(Access(name, self._phase, "powerdial.runtime"))
        self._values[name] = value

    def peek(self, name: str) -> Any:
        """Read ``name`` without logging (for tooling, not applications)."""
        if name not in self._values:
            raise AddressSpaceError(f"unknown variable {name!r}")
        return self._values[name]

    # -- inspection ---------------------------------------------------------
    def names(self) -> list[str]:
        """All variable names, in insertion order."""
        return list(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> dict[str, Any]:
        """Plain (influence-stripped) copy of all variables."""
        return {name: strip(value) for name, value in self._values.items()}

    def influence_map(self) -> dict[str, frozenset[str]]:
        """Influence set of every variable's current value."""
        return {name: influence_of(value) for name, value in self._values.items()}

    def reads_of(self, name: str, phase: Phase | None = None) -> list[Access]:
        """Logged reads of ``name``, optionally filtered by phase."""
        return [
            access
            for access in self.reads
            if access.name == name and (phase is None or access.phase == phase)
        ]

    def writes_of(self, name: str, phase: Phase | None = None) -> list[Access]:
        """Logged application writes of ``name``, optionally by phase."""
        return [
            access
            for access in self.writes
            if access.name == name and (phase is None or access.phase == phase)
        ]
