"""Control-variable validity checks (paper Section 2.1).

PowerDial accepts a set of configuration parameters for transformation into
dynamic knobs only if the traced control variables satisfy four conditions:

* **Complete and Pure** — every variable influenced by the specified
  parameters before the first heartbeat is a control variable, and control
  variables are influenced *only* by the specified parameters.
* **Relevant** — variables not read after the first heartbeat are filtered
  out (they do not affect the main control loop).
* **Constant** — the application never writes a control variable after the
  first heartbeat.
* **Consistent** — every combination of parameter settings produces the
  same set of control variables.

A violation of Pure, Constant, or Consistent rejects the transformation
(:class:`KnobRejectionError`); Relevant merely filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.tracing.variables import AddressSpace, Phase

__all__ = [
    "KnobRejectionError",
    "CandidateVariables",
    "find_candidate_variables",
    "filter_relevant",
    "check_constant",
    "check_consistent",
]


class KnobRejectionError(RuntimeError):
    """PowerDial rejects the parameters-to-knobs transformation.

    Attributes:
        reason: Which check failed (``"pure"``, ``"constant"``,
            ``"consistent"``).
        details: Human-readable explanation naming the offending variables.
    """

    def __init__(self, reason: str, details: str) -> None:
        super().__init__(f"dynamic knob transformation rejected ({reason}): {details}")
        self.reason = reason
        self.details = details


@dataclass
class CandidateVariables:
    """Variables that passed the Complete-and-Pure check.

    Attributes:
        influences: Map from variable name to the subset of knob parameters
            influencing its startup value.
    """

    influences: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def names(self) -> set[str]:
        """Candidate variable names."""
        return set(self.influences)


def find_candidate_variables(
    space: AddressSpace, knob_parameters: set[str]
) -> CandidateVariables:
    """Apply the Complete-and-Pure check to a traced startup.

    *Complete*: every variable whose startup value is influenced by any of
    ``knob_parameters`` becomes a candidate.  *Pure*: each candidate's
    influence set must be a subset of ``knob_parameters`` — a value mixing
    knob parameters with other configuration would make replayed knob
    settings unsound, so it rejects the transformation.
    """
    candidates: dict[str, frozenset[str]] = {}
    impure: dict[str, frozenset[str]] = {}
    for name, influence in space.influence_map().items():
        touched = influence & knob_parameters
        if not touched:
            continue
        foreign = influence - knob_parameters
        if foreign:
            impure[name] = foreign
        else:
            candidates[name] = influence
    if impure:
        details = "; ".join(
            f"{name} also influenced by {sorted(extra)}"
            for name, extra in sorted(impure.items())
        )
        raise KnobRejectionError("pure", details)
    return CandidateVariables(influences=candidates)


def filter_relevant(
    candidates: CandidateVariables, space: AddressSpace
) -> CandidateVariables:
    """Drop candidates never read after the first heartbeat.

    "It filters out any variables that the application does not read after
    the first heartbeat — the values of these variables are not relevant to
    the main control loop computation."
    """
    read_in_main = {
        access.name for access in space.reads if access.phase is Phase.MAIN
    }
    kept = {
        name: influence
        for name, influence in candidates.influences.items()
        if name in read_in_main
    }
    return CandidateVariables(influences=kept)


def check_constant(candidates: CandidateVariables, space: AddressSpace) -> None:
    """Reject if the application wrote a candidate after the first heartbeat.

    Runtime pokes are not application writes and are exempt.
    """
    written_in_main = {
        access.name for access in space.writes if access.phase is Phase.MAIN
    }
    violations = sorted(candidates.names & written_in_main)
    if violations:
        raise KnobRejectionError(
            "constant",
            f"variables written after the first heartbeat: {violations}",
        )


def check_consistent(
    per_configuration: Mapping[object, CandidateVariables],
) -> set[str]:
    """Verify every configuration produced the same control-variable set.

    Returns the common variable-name set on success.
    """
    if not per_configuration:
        raise KnobRejectionError("consistent", "no configurations were traced")
    items = list(per_configuration.items())
    reference_key, reference = items[0]
    for key, candidates in items[1:]:
        if candidates.names != reference.names:
            missing = sorted(reference.names - candidates.names)
            extra = sorted(candidates.names - reference.names)
            raise KnobRejectionError(
                "consistent",
                f"configuration {key!r} disagrees with {reference_key!r}: "
                f"missing {missing}, extra {extra}",
            )
    return set(reference.names)
