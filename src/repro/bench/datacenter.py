"""Engine-scaling benchmark: eager vs lazy-serial vs sharded backends.

For each pool size the harness runs the same fully-seeded scenario
through every backend and records wall-clock, events/second, and
speedups.  ``eager`` is PR 1's advance-all-hosts-per-event loop (kept in
the engine precisely to anchor this trajectory); ``serial`` is the lazy
scheduler; ``sharded-N`` is the multiprocess backend with N workers.

Sharded entries additionally record each worker's CPU seconds (barrier
waits burn no CPU) and the coordinator's own CPU seconds.  On a
single-core host (CI containers, laptops under cgroup limits) worker
processes time-slice, so measured wall-clock cannot beat serial there;
``projected_parallel_seconds`` — the coordinator's CPU time plus the
*slowest worker's* CPU time instead of the sum — estimates the
multi-core wall-clock from the same run and is labeled as a projection
in the JSON.  Every backend entry also carries its ``barrier_stats``
breakdown (wire protocol, barrier count, payload bytes, and
serialize/wait/apply seconds) so barrier-plane regressions show up in
the JSON, not just in end-to-end seconds.

The ``scale-1024m`` scenario is the standing large-pool run the shard
delta barriers target; the eager backend is skipped above
:data:`EAGER_MAX_MACHINES` machines because its O(events x machines)
loop would dominate the bench for no trajectory signal.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Sequence

from repro.bench.scenarios import PoolScenario, build_pool_engine, count_events
from repro.datacenter.billing import CONSERVATION_TOLERANCE
from repro.datacenter.shard import fork_available, usable_cpu_count

__all__ = [
    "CONSERVATION_TOLERANCE",
    "DEFAULT_POOL_SIZES",
    "EAGER_MAX_MACHINES",
    "SCALE_MACHINES",
    "SCALE_RATE",
    "SMOKE_POOL_SIZES",
    "bench_datacenter",
]

DEFAULT_POOL_SIZES = (8, 32, 128)
"""Pool sizes of the full bench run (one tenant per machine)."""

SCALE_MACHINES = 1024
"""Pool size of the standing ``scale`` scenario (hier-arbitrated,
batched step kernel) — the regime where sharded must beat serial."""

SCALE_RATE = 0.1
"""Per-tenant arrival rate of the scale scenario: low utilization so
1024 tenants stay in the mostly-idle regime the lazy scheduler and the
delta barriers both target (~12k arrivals over a 120 s horizon)."""

EAGER_MAX_MACHINES = 128
"""Largest pool the eager reference backend is timed on.  Its loop is
O(events x machines); at 1024 machines it would take minutes to anchor
a trajectory nothing regresses against."""

SMOKE_POOL_SIZES = (8, 16)
"""Pool sizes of the CI smoke run.

The floor matches the full run's smallest pool so the trajectory
gate's per-kind comparison is like for like: the special scenarios
(budget shock, consolidation, chaos, gray failure) run at
``min(pool_sizes)``, and at 4 machines their fixed per-run costs
(fault-plan setup, barrier machinery) spread over too few events to
transfer against the committed 8-machine baselines.
"""


def _time_backend(
    scenario: PoolScenario,
    backend: str,
    workers: int | None,
    repeats: int,
) -> dict[str, Any]:
    """Best-of-``repeats`` wall-clock for one backend on one scenario.

    Every timed run doubles as a billing audit: the per-tenant billed
    energy plus the unattributed idle energy must reproduce the metered
    pool energy to :data:`CONSERVATION_TOLERANCE` relative, or the
    bench aborts — a perf harness must not post numbers for an engine
    that is silently losing watt-seconds.
    """
    best = float("inf")
    busy: list[float] | None = None
    coordinator: float | None = None
    barrier_stats: dict[str, Any] | None = None
    conservation_error = 0.0
    for _ in range(max(1, repeats)):
        engine = build_pool_engine(scenario, backend=backend, workers=workers)
        # Drain the collector before the timer starts: a smoke scenario
        # runs in milliseconds, so a threshold-crossing full GC pass —
        # whose placement shifts with unrelated import-time allocations
        # — would otherwise dominate one measurement and trip the
        # trajectory gate on noise rather than engine cost.
        gc.collect()
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        error = result.energy_conservation_rel_error()
        if error > CONSERVATION_TOLERANCE:
            raise RuntimeError(
                f"billing conservation violated on {scenario.label} "
                f"({backend}): rel error {error:.3e} > "
                f"{CONSERVATION_TOLERANCE:.0e}"
            )
        conservation_error = max(conservation_error, error)
        if elapsed < best:
            best = elapsed
            busy = engine.shard_busy_seconds
            coordinator = engine.coordinator_busy_seconds
            barrier_stats = engine.barrier_stats
    entry: dict[str, Any] = {
        "seconds": best,
        "conservation_rel_error": conservation_error,
    }
    if barrier_stats is not None:
        entry["barrier_stats"] = dict(barrier_stats)
    if busy is not None:
        entry["worker_busy_seconds"] = busy
        entry["coordinator_busy_seconds"] = coordinator
        # The multi-core wall-clock estimate: the coordinator's own CPU
        # time plus the slowest worker's, measured directly instead of
        # inferred from wall-clock residue (which double-counts the
        # time-slicing tax on oversubscribed hosts).
        entry["projected_parallel_seconds"] = (
            (coordinator or 0.0) + max(busy)
        )
    return entry


def bench_datacenter(
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    worker_counts: Sequence[int] = (4,),
    repeats: int = 2,
    horizon: float = 30.0,
    rate: float = 0.4,
) -> dict[str, Any]:
    """Time every backend across ``pool_sizes``; return the JSON payload.

    Each scenario entry reports per-backend wall-clock seconds and
    events/second, ``speedup_vs_eager`` for the lazy serial scheduler
    (omitted above :data:`EAGER_MAX_MACHINES`, where eager is not
    timed), and per-worker-count sharded entries with
    ``speedup_vs_serial`` (measured) and
    ``projected_speedup_vs_serial`` (multi-core projection; see module
    docstring).
    """
    sharded_ok = fork_available()
    scenarios = [
        PoolScenario(machines=m, horizon=horizon, rate=rate)
        for m in pool_sizes
    ]
    # One arbitrated scenario at the largest pool tracks barrier cost.
    scenarios.append(
        PoolScenario(
            machines=max(pool_sizes), horizon=horizon, rate=rate, arbitrated=True
        )
    )
    # One budget-shock scenario exercises the control plane's SetBudget
    # path (drop at horizon/3, recover at 2/3) — the conservation audit
    # in _time_backend must hold across the mid-run budget changes.
    scenarios.append(
        PoolScenario(
            machines=min(pool_sizes),
            horizon=horizon,
            rate=rate,
            arbitrated=True,
            budget_shock=True,
        )
    )
    # One consolidation scenario times multi-step warm placement: a
    # diurnal trough packs tenants onto fewer machines (live
    # migrations, parked machines at their cap floor) and the mid-run
    # peak spreads them back.  Ten barriers across the horizon so the
    # pack/spread loop gets enough decisions even at smoke scale.
    scenarios.append(
        PoolScenario(
            machines=min(pool_sizes),
            horizon=horizon,
            rate=rate,
            consolidation=True,
            control_period=horizon / 10.0,
        )
    )
    # One chaos scenario times crash recovery: a seeded mid-run machine
    # kill fail-stops a victim and rebuilds its tenants on survivors
    # from barrier checkpoints — so checkpoint capture (paid at every
    # barrier when failures are possible) and the re-placement path are
    # on the perf trajectory, and the conservation audit must survive a
    # failure.
    scenarios.append(
        PoolScenario(
            machines=min(pool_sizes),
            horizon=horizon,
            rate=rate,
            chaos_kills=1,
        )
    )
    # One gray-failure scenario times degraded-mode control: a full
    # seeded FaultPlan (sensor dropouts, actuator drops, a straggler,
    # one kill) runs under a DegradedModePolicy wrapper, so faulted
    # observation, applier retries with backoff, and quarantine/
    # reintegration are on the perf trajectory — with the conservation
    # audit enforced across all of it.
    scenarios.append(
        PoolScenario(
            machines=min(pool_sizes),
            horizon=horizon,
            rate=rate,
            grayfail=True,
        )
    )
    # The standing scale scenario: 1024 machines under hier-arbitrated
    # with the batched step kernel.  Appended unconditionally (smoke and
    # full runs time the identical configuration) so the trajectory
    # gate's per-kind serial cost comparison is like for like.
    scenarios.append(
        PoolScenario(
            machines=SCALE_MACHINES,
            horizon=horizon,
            rate=SCALE_RATE,
            hier=True,
            step_mode="batched",
        )
    )
    results = []
    for scenario in scenarios:
        events = count_events(scenario)
        eager = None
        if scenario.machines <= EAGER_MAX_MACHINES:
            eager = _time_backend(scenario, "eager", None, repeats)
            eager["events_per_sec"] = events / eager["seconds"]
        serial = _time_backend(scenario, "serial", None, repeats)
        serial["events_per_sec"] = events / serial["seconds"]
        if eager is not None:
            serial["speedup_vs_eager"] = eager["seconds"] / serial["seconds"]
        backends: dict[str, Any] = {"serial": serial}
        if eager is not None:
            backends = {"eager": eager, "serial": serial}
        if sharded_ok:
            # Dedupe after clamping so a 4-machine pool asked for
            # workers 4 and 8 is timed (and reported) once, not twice.
            clamped = sorted({min(w, scenario.machines) for w in worker_counts})
            for workers in clamped:
                sharded = _time_backend(scenario, "sharded", workers, repeats)
                sharded["workers"] = workers
                sharded["events_per_sec"] = events / sharded["seconds"]
                sharded["speedup_vs_serial"] = (
                    serial["seconds"] / sharded["seconds"]
                )
                sharded["projected_speedup_vs_serial"] = (
                    serial["seconds"] / sharded["projected_parallel_seconds"]
                )
                backends[f"sharded-{workers}"] = sharded
        results.append(
            {
                "scenario": scenario.label,
                "machines": scenario.machines,
                "tenants": scenario.machines,
                "horizon_seconds": scenario.horizon,
                "arrival_rate_per_tenant": scenario.rate,
                "arbitrated": scenario.arbitrated,
                "events": events,
                "backends": backends,
            }
        )
    cpus = usable_cpu_count()
    payload: dict[str, Any] = {
        "benchmark": "datacenter-engine",
        "pool_sizes": list(pool_sizes),
        "repeats": repeats,
        "sharded_available": sharded_ok,
        "scenarios": results,
    }
    if sharded_ok and worker_counts and cpus < max(worker_counts):
        payload["sharded_note"] = (
            f"host exposes {cpus} usable CPU(s): forked workers time-slice, "
            "so measured sharded wall-clock cannot beat serial here; "
            "projected_parallel_seconds / projected_speedup_vs_serial "
            "estimate the >=N-core wall-clock from per-worker CPU times"
        )
    return payload
