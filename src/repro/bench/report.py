"""Machine-readable bench artifacts: ``BENCH_<name>.json`` writers.

Every payload is stamped with the same environment header so a
trajectory of artifacts across PRs records *where* each number was
measured (a 1-core CI container and an 8-core workstation are different
instruments).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any

from repro.bench.calibration import host_speed_score
from repro.datacenter.shard import usable_cpu_count
from repro.experiments.common import format_table

__all__ = ["environment_header", "format_backend_table", "write_bench_json"]

SCHEMA_VERSION = 3


def environment_header() -> dict[str, Any]:
    """Provenance recorded alongside every bench payload.

    Since schema version 2 the header also carries
    ``calibration_ops_per_sec`` — the host-speed score measured right
    before the payload's numbers (:mod:`repro.bench.calibration`) —
    which is what lets the trajectory gate compare runs across hosts.
    Schema version 3 adds per-backend ``barrier_stats`` (wire protocol,
    payload bytes, serialize/wait/apply seconds), the coordinator's CPU
    seconds on sharded entries, re-derives
    ``projected_parallel_seconds`` from measured CPU times
    (coordinator + slowest worker), adds the standing ``scale-1024m``
    scenario, and stops timing the eager backend above
    :data:`~repro.bench.datacenter.EAGER_MAX_MACHINES` machines (those
    serial entries carry no ``speedup_vs_eager``).
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": usable_cpu_count(),
        "calibration_ops_per_sec": host_speed_score(),
    }


def format_backend_table(payload: dict[str, Any]) -> str:
    """Plain-text rendition of a ``bench_datacenter`` payload.

    Shared by the CLI summary and the ``datacenter_speedup`` benchmark
    artifact so the two never drift apart.
    """
    rows = []
    for scenario in payload["scenarios"]:
        for name, entry in scenario["backends"].items():
            if "speedup_vs_eager" in entry:
                speedup = f"{entry['speedup_vs_eager']:.2f}x vs eager"
            elif "speedup_vs_serial" in entry:
                speedup = f"{entry['speedup_vs_serial']:.2f}x vs serial"
            else:
                speedup = "baseline"
            projected = entry.get("projected_parallel_seconds")
            rows.append(
                [
                    scenario["scenario"],
                    name,
                    f"{entry['seconds']:.3f}",
                    f"{entry['events_per_sec']:.0f}",
                    speedup,
                    f"{projected:.3f}" if projected is not None else "-",
                ]
            )
    return format_table(
        ["scenario", "backend", "seconds", "events/s", "speedup", "projected s"],
        rows,
    )


def write_bench_json(
    out_dir: Path, name: str, payload: dict[str, Any], smoke: bool
) -> Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; return the path."""
    document = dict(environment_header())
    document["smoke"] = smoke
    document.update(payload)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
