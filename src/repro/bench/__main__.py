"""CLI driver for the perf-tracking bench harness.

Full run (regenerates the repo-root trajectory artifacts)::

    PYTHONPATH=src python -m repro.bench

CI smoke run (tiny pools, seconds not minutes)::

    PYTHONPATH=src python -m repro.bench --smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.datacenter import (
    DEFAULT_POOL_SIZES,
    SMOKE_POOL_SIZES,
    bench_datacenter,
)
from repro.bench.report import format_backend_table, write_bench_json
from repro.bench.runtime import bench_runtime
from repro.experiments.common import format_table


def _summarize_runtime(payload: dict) -> str:
    probes = payload["probes"]
    rows = [
        [
            "step_path",
            f"{probes['step_path']['items_per_sec']:.0f} items/s",
            f"{probes['step_path']['beats_per_sec']:.0f} beats/s",
        ],
        [
            "batched_step_path",
            f"{probes['batched_step_path']['items_per_sec']:.0f} items/s",
            f"{probes['batched_step_path']['instances']} instances, "
            f"{probes['batched_step_path']['speedup_vs_scalar']:.1f}x scalar",
        ],
        [
            "heartbeat_window",
            f"{probes['heartbeat_window']['beats_per_sec']:.0f} beats/s",
            "window 20, O(1) rate query per beat",
        ],
        [
            "actuation_plan",
            f"{probes['actuation_plan']['uncached_us_per_call']:.2f} us uncached",
            f"{probes['actuation_plan']['cached_us_per_call']:.2f} us cached "
            f"({probes['actuation_plan']['cache_speedup']:.0f}x)",
        ],
    ]
    return format_table(["probe", "throughput", "detail"], rows)


def main(argv: list[str] | None = None) -> int:
    """Run the bench suites and write ``BENCH_*.json``; exit code 0."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the engine backends and runtime hot paths; "
        "write BENCH_*.json perf artifacts.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny pools and short probes (seconds; used by CI)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory for BENCH_*.json (default: current directory)",
    )
    parser.add_argument(
        "--pools",
        type=lambda text: tuple(int(p) for p in text.split(",")),
        default=None,
        help="comma-separated pool sizes (default: 8,32,128; smoke: 8,16)",
    )
    parser.add_argument(
        "--workers",
        type=lambda text: tuple(int(w) for w in text.split(",")),
        default=None,
        help="comma-separated sharded worker counts (default: 4; smoke: 2)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per backend, best-of (default: 2; "
        "smoke also 2 — best-of-2 keeps first-run warmup out of the "
        "trajectory gate's tiny scenarios)",
    )
    args = parser.parse_args(argv)

    pools = args.pools or (SMOKE_POOL_SIZES if args.smoke else DEFAULT_POOL_SIZES)
    workers = args.workers or ((2,) if args.smoke else (4,))
    repeats = args.repeats if args.repeats is not None else 2
    # Long enough that per-run fixed costs (fork, result transfer) do
    # not swamp the engine time being measured.  The smoke run keeps
    # the full horizon on purpose: the faulted scenarios carry a fixed
    # per-run workload (the fault plan injects the same fault count at
    # any horizon), so halving the horizon doubles their per-event cost
    # and the trajectory gate would flag unchanged code.  At the full
    # horizon the smoke's special scenarios are byte-for-byte the
    # committed baseline configs, so per-event costs transfer exactly.
    horizon = 120.0

    datacenter_payload = bench_datacenter(
        pool_sizes=pools,
        worker_counts=workers,
        repeats=repeats,
        horizon=horizon,
    )
    path = write_bench_json(
        args.out_dir, "datacenter", datacenter_payload, args.smoke
    )
    print(format_backend_table(datacenter_payload))
    print(f"[saved to {path}]\n")

    runtime_payload = bench_runtime(smoke=args.smoke)
    path = write_bench_json(args.out_dir, "runtime", runtime_payload, args.smoke)
    print(_summarize_runtime(runtime_payload))
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
