"""Microbenchmarks of the PowerDial runtime's hot step path.

Three probes, matching the optimizations this harness exists to keep
honest:

* ``step_path`` — a full :meth:`~repro.core.runtime.PowerDialRuntime`
  run over a stream of service jobs: items/second and heartbeats/second
  through the whole monitor -> controller -> actuator -> machine loop.
* ``heartbeat_window`` — beats/second through
  :meth:`~repro.heartbeats.api.HeartbeatMonitor.heartbeat` plus a
  ``window_rate`` query per beat (O(1) running-sum path; the naive
  recompute made this O(window) per beat).
* ``actuation_plan`` — per-call cost of
  :meth:`~repro.core.actuator.Actuator.plan` versus the runtime's
  cached ``_plan_for`` on a repeated command (the steady-state case).
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter.service import ServiceApp, service_training_jobs
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system
from repro.hardware.clock import VirtualClock
from repro.heartbeats.api import HeartbeatMonitor

__all__ = ["bench_runtime"]


def _bench_step_path(jobs: int, items_per_job: int) -> dict[str, Any]:
    system = built_service_system()
    machine = experiment_machine()
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machine
    )
    runtime = PowerDialRuntime(
        app=ServiceApp(),
        table=system.table,
        machine=machine,
        target_rate=target,
    )
    workload = [[float(1 + i % 7)] * items_per_job for i in range(jobs)]
    start = time.perf_counter()
    result = runtime.run(workload)
    elapsed = time.perf_counter() - start
    beats = len(result.samples)
    return {
        "jobs": jobs,
        "items": jobs * items_per_job,
        "seconds": elapsed,
        "items_per_sec": jobs * items_per_job / elapsed,
        "beats_per_sec": beats / elapsed,
    }


def _bench_heartbeat_window(beats: int) -> dict[str, Any]:
    clock = VirtualClock()
    monitor = HeartbeatMonitor(clock, window_size=20)
    start = time.perf_counter()
    for _ in range(beats):
        clock.advance(0.042)
        monitor.heartbeat()
        monitor.window_rate()
    elapsed = time.perf_counter() - start
    return {
        "beats": beats,
        "window_size": 20,
        "seconds": elapsed,
        "beats_per_sec": beats / elapsed,
    }


def _bench_actuation_plan(calls: int) -> dict[str, Any]:
    system = built_service_system()
    machine = experiment_machine()
    runtime = PowerDialRuntime(
        app=ServiceApp(),
        table=system.table,
        machine=machine,
        target_rate=20.0,
    )
    # A blended command (between table settings) is the expensive case.
    speedup = 0.5 * (1.0 + system.table.max_speedup)
    start = time.perf_counter()
    for _ in range(calls):
        runtime.actuator.plan(speedup)
    uncached = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(calls):
        runtime._plan_for(speedup)
    cached = time.perf_counter() - start
    return {
        "calls": calls,
        "uncached_seconds": uncached,
        "cached_seconds": cached,
        "uncached_us_per_call": 1e6 * uncached / calls,
        "cached_us_per_call": 1e6 * cached / calls,
        "cache_speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_runtime(smoke: bool = False) -> dict[str, Any]:
    """Run the three step-path microbenchmarks; return the JSON payload."""
    if smoke:
        jobs, items, beats, calls = 40, 5, 20_000, 20_000
    else:
        jobs, items, beats, calls = 400, 5, 200_000, 100_000
    return {
        "benchmark": "runtime-step-path",
        "probes": {
            "step_path": _bench_step_path(jobs, items),
            "heartbeat_window": _bench_heartbeat_window(beats),
            "actuation_plan": _bench_actuation_plan(calls),
        },
    }
