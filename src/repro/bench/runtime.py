"""Microbenchmarks of the PowerDial runtime's hot step path.

Four probes, matching the optimizations this harness exists to keep
honest:

* ``step_path`` — a full :meth:`~repro.core.runtime.PowerDialRuntime`
  run over a stream of service jobs: items/second and heartbeats/second
  through the whole monitor -> controller -> actuator -> machine loop.
* ``batched_step_path`` — the same loop through the vectorized kernel
  (:mod:`repro.core.batched`): a pool of co-resident instances, each on
  its own machine with a coarse 200-beat quantum (the regime the kernel
  targets — chunk size is pinned at ``quantum_beats``), drained to
  completion the way :class:`~repro.datacenter.engine.DatacenterEngine`
  drains its hosts.  ``scalar_items_per_sec`` reports the identical
  pool stepped through the scalar loop, so the probe carries its own
  like-for-like speedup.
* ``heartbeat_window`` — beats/second through
  :meth:`~repro.heartbeats.api.HeartbeatMonitor.heartbeat` plus a
  ``window_rate`` query per beat (O(1) running-sum path; the naive
  recompute made this O(window) per beat).
* ``actuation_plan`` — per-call cost of
  :meth:`~repro.core.actuator.Actuator.plan` versus the runtime's
  cached ``_plan_for`` on a repeated command (the steady-state case).

Every probe reports ``repeats`` and its best-of-``repeats`` timing,
with a ``gc.collect()`` drain before each timed run so collector debt
from a previous repeat (or the calling harness) never lands inside a
measurement.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Callable

from repro.core.batched import to_batched
from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, StepStatus
from repro.datacenter.service import ServiceApp, service_training_jobs
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system
from repro.hardware.clock import VirtualClock
from repro.heartbeats.api import HeartbeatMonitor

__all__ = ["bench_runtime"]

# Quantum length for the batched probe: the kernel advances one chunk
# per quantum, so a coarse quantum is what makes batching pay.
BATCHED_QUANTUM_BEATS = 200


def _best_of(
    repeats: int, run_once: Callable[[], dict[str, Any]], key: str
) -> dict[str, Any]:
    """Run ``run_once`` ``repeats`` times; keep the lowest-``key`` run.

    Collects garbage before every timed run so one repeat's debt never
    pollutes the next measurement.
    """
    best: dict[str, Any] | None = None
    for _ in range(repeats):
        gc.collect()
        payload = run_once()
        if best is None or payload[key] < best[key]:
            best = payload
    assert best is not None
    best["repeats"] = repeats
    return best


def _service_workload(jobs: int, items_per_job: int) -> list[list[float]]:
    return [[float(1 + i % 7)] * items_per_job for i in range(jobs)]


def _bench_step_path(
    jobs: int, items_per_job: int, repeats: int
) -> dict[str, Any]:
    system = built_service_system()

    def run_once() -> dict[str, Any]:
        machine = experiment_machine()
        target = measure_baseline_rate(
            ServiceApp, service_training_jobs()[0], machine
        )
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machine,
            target_rate=target,
        )
        workload = _service_workload(jobs, items_per_job)
        start = time.perf_counter()
        result = runtime.run(workload)
        elapsed = time.perf_counter() - start
        beats = len(result.samples)
        return {
            "jobs": jobs,
            "items": jobs * items_per_job,
            "seconds": elapsed,
            "items_per_sec": jobs * items_per_job / elapsed,
            "beats_per_sec": beats / elapsed,
        }

    return _best_of(repeats, run_once, "seconds")


def _drain_pool(runtimes, workload) -> None:
    """Feed and drain a pool the way the engine drains its hosts."""
    for runtime in runtimes:
        runtime.begin([list(job) for job in workload])
        runtime.close_input()
    for runtime in runtimes:
        while runtime.step() is not StepStatus.FINISHED:
            pass
        runtime.finish()


def _bench_batched_step_path(
    instances: int, jobs: int, items_per_job: int, repeats: int
) -> dict[str, Any]:
    system = built_service_system()
    workload = _service_workload(jobs, items_per_job)
    total_items = instances * jobs * items_per_job

    def build_pool() -> list[PowerDialRuntime]:
        pool = []
        for _ in range(instances):
            machine = experiment_machine()
            target = measure_baseline_rate(
                ServiceApp, service_training_jobs()[0], machine
            )
            pool.append(
                PowerDialRuntime(
                    app=ServiceApp(),
                    table=system.table,
                    machine=machine,
                    target_rate=target,
                    quantum_beats=BATCHED_QUANTUM_BEATS,
                )
            )
        return pool

    def run_once() -> dict[str, Any]:
        batched = [to_batched(runtime) for runtime in build_pool()]
        start = time.perf_counter()
        _drain_pool(batched, workload)
        batched_elapsed = time.perf_counter() - start

        scalar = build_pool()
        gc.collect()
        start = time.perf_counter()
        _drain_pool(scalar, workload)
        scalar_elapsed = time.perf_counter() - start
        return {
            "instances": instances,
            "jobs_per_instance": jobs,
            "items": total_items,
            "quantum_beats": BATCHED_QUANTUM_BEATS,
            "seconds": batched_elapsed,
            "items_per_sec": total_items / batched_elapsed,
            "scalar_seconds": scalar_elapsed,
            "scalar_items_per_sec": total_items / scalar_elapsed,
            "speedup_vs_scalar": scalar_elapsed / batched_elapsed,
        }

    return _best_of(repeats, run_once, "seconds")


def _bench_heartbeat_window(beats: int, repeats: int) -> dict[str, Any]:
    def run_once() -> dict[str, Any]:
        clock = VirtualClock()
        monitor = HeartbeatMonitor(clock, window_size=20)
        start = time.perf_counter()
        for _ in range(beats):
            clock.advance(0.042)
            monitor.heartbeat()
            monitor.window_rate()
        elapsed = time.perf_counter() - start
        return {
            "beats": beats,
            "window_size": 20,
            "seconds": elapsed,
            "beats_per_sec": beats / elapsed,
        }

    return _best_of(repeats, run_once, "seconds")


def _bench_actuation_plan(calls: int, repeats: int) -> dict[str, Any]:
    system = built_service_system()

    def run_once() -> dict[str, Any]:
        machine = experiment_machine()
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machine,
            target_rate=20.0,
        )
        # A blended command (between table settings) is the expensive case.
        speedup = 0.5 * (1.0 + system.table.max_speedup)
        start = time.perf_counter()
        for _ in range(calls):
            runtime.actuator.plan(speedup)
        uncached = time.perf_counter() - start
        gc.collect()
        start = time.perf_counter()
        for _ in range(calls):
            runtime._plan_for(speedup)
        cached = time.perf_counter() - start
        return {
            "calls": calls,
            "seconds": uncached + cached,
            "uncached_seconds": uncached,
            "cached_seconds": cached,
            "uncached_us_per_call": 1e6 * uncached / calls,
            "cached_us_per_call": 1e6 * cached / calls,
            "cache_speedup": uncached / cached if cached > 0 else float("inf"),
        }

    return _best_of(repeats, run_once, "seconds")


def bench_runtime(smoke: bool = False) -> dict[str, Any]:
    """Run the four step-path microbenchmarks; return the JSON payload."""
    if smoke:
        # Only the expensive probes shrink: heartbeat beats and plan
        # calls stay at full count because they cost well under a
        # second, and at smoke-sized counts the cached-plan timing
        # (~0.1 us/call) drops below the noise floor of a shared host,
        # making the trajectory gate flap on unchanged code.
        jobs, items, beats, calls = 40, 5, 200_000, 100_000
        instances, batched_jobs, repeats = 8, 40, 2
    else:
        jobs, items, beats, calls = 400, 5, 200_000, 100_000
        instances, batched_jobs, repeats = 32, 200, 3
    return {
        "benchmark": "runtime-step-path",
        "probes": {
            "step_path": _bench_step_path(jobs, items, repeats),
            "batched_step_path": _bench_batched_step_path(
                instances, batched_jobs, items, repeats
            ),
            "heartbeat_window": _bench_heartbeat_window(beats, repeats),
            "actuation_plan": _bench_actuation_plan(calls, repeats),
        },
    }
