"""Host-speed calibration for cross-host bench comparison.

Absolute bench seconds measured on different hosts are different
instruments: a laptop, a CI container, and a workstation disagree by
integer factors before the engine changes at all.  The trajectory gate
(:mod:`repro.bench.trajectory`) therefore normalizes every timing by a
*calibration score* — the throughput of a fixed pure-Python arithmetic
loop measured on the same host, in the same process, as the bench run
it is stamped into (see
:func:`repro.bench.report.environment_header`).  Dividing a measured
cost by the host's score yields a unit that transfers across hosts to
first order: "how many calibration ops the host could have executed in
the time this scenario event took".
"""

from __future__ import annotations

import time

__all__ = ["host_speed_score"]


def _spin(iterations: int) -> float:
    """The fixed arithmetic kernel: pure-Python integer/float mixing."""
    acc = 0.0
    for i in range(iterations):
        acc += (i & 7) * 0.5 - (i & 3) * 0.25
    return acc


def host_speed_score(
    target_seconds: float = 0.2, chunk: int = 200_000
) -> float:
    """Measure this host's speed, in calibration ops per second.

    Runs the fixed kernel in ``chunk``-sized batches for at least
    ``target_seconds`` of wall clock (after one warm-up batch) and
    returns the achieved iteration rate.  The kernel is deliberately
    interpreter-bound — no numpy, no allocation — because the engine's
    hot paths are too, so interpreter-speed differences between hosts
    (and Python versions) cancel out of normalized comparisons.
    """
    if target_seconds <= 0.0:
        raise ValueError(
            f"target_seconds must be positive, got {target_seconds!r}"
        )
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk!r}")
    _spin(chunk)  # warm-up: bytecode caches, branch history
    ops = 0
    start = time.perf_counter()
    while True:
        _spin(chunk)
        ops += chunk
        elapsed = time.perf_counter() - start
        if elapsed >= target_seconds:
            return ops / elapsed
