"""Reference scenarios the perf-tracking bench harness times.

One scenario family, parameterized by pool size: ``machines`` servers,
one Poisson-driven :class:`~repro.datacenter.service.ServiceApp` tenant
per machine at modest utilization.  Mostly-idle pools are exactly the
regime the lazy scheduler targets (the eager loop pays O(machines) per
event regardless of idleness), and one-tenant-per-machine keeps the
virtual workload identical across pool sizes so wall-clock differences
measure the engine, not the workload.

Six scenario kinds:

* ``open`` — no control policy, pure event scheduling;
* ``arbitrated`` — an SLA-aware cap policy at every barrier (tracks
  barrier cost);
* ``budget_shock`` — arbitrated plus a fleet-wide budget drop at a
  third of the horizon and recovery at two-thirds (the §5.4 cap event
  fleet-wide, via the control plane's ``SetBudget`` path); every timed
  run still has to pass the billing conservation audit, so this
  scenario keeps the invariant honest under mid-run budget changes;
* ``consolidation`` — diurnal traffic (trough at both ends of the
  horizon, peak mid-run) under the ``consolidating`` policy: tenants
  get packed onto fewer machines with warm migrations in the troughs,
  parked machines sit at their cap floor, and the peak spreads them
  back out — so the timed run exercises multi-step warm placement and
  the conservation audit across it;
* ``chaos`` — arbitrated plus seeded mid-run machine kills
  (:class:`~repro.datacenter.controlplane.policy.ChaosPolicy`): a
  victim machine fail-stops at each kill barrier and its tenants are
  rebuilt on survivors from that barrier's checkpoints, so the timed
  run covers checkpoint capture, fail-stop teardown, and crash
  re-placement — with the billing conservation audit still enforced
  across the failures;
* ``scale`` — the 1024-machine standing scenario: hierarchical
  arbitration (``hier-arbitrated``) over the batched step kernel at a
  low per-tenant rate, the regime the shard barrier-protocol v2's
  delta barriers and O(groups) demand aggregation target — this is
  the scenario where the sharded backend must beat serial;
* ``grayfail`` — arbitrated plus a full seeded
  :class:`~repro.datacenter.faults.FaultPlan`: sensor dropout windows,
  actuator drop windows, a straggler, and one fail-stop kill, with the
  policy stack wrapped in a :class:`~repro.datacenter.controlplane.
  policy.DegradedModePolicy` — so the timed run exercises faulted
  observation, applier retries with backoff, quarantine/reintegration,
  and the conservation audit under all of it.

Scenarios are fully seeded: the same :class:`PoolScenario` always
builds the same traces, requests, and calibration, so timings across
PRs compare like for like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter.controlplane import (
    BudgetSchedule,
    ChaosPolicy,
    DegradedModePolicy,
    build_policy,
    chaos_kill_times,
)
from repro.datacenter.engine import DatacenterEngine, InstanceBinding
from repro.datacenter.faults import FaultPlan
from repro.datacenter.service import (
    ServiceApp,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.tenants import LatencySLA, TenantSpec
from repro.datacenter.traffic import diurnal_trace, poisson_trace
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system

__all__ = ["PoolScenario", "build_pool_engine", "count_events"]

BUDGET_WATTS_PER_MACHINE = 200.0
"""Arbitrated-scenario budget per machine (floor ~183 W, ceiling 220 W)."""

SHOCK_FRACTION = 0.94
"""Budget-shock level as a fraction of the base budget (stays above the
pool's cap floor at :data:`BUDGET_WATTS_PER_MACHINE`)."""

CONSOLIDATION_PEAK_FACTOR = 2.5
"""Diurnal peak rate of the consolidation scenario, as a multiple of the
scenario's base ``rate`` (the trough sits at a tenth of the peak, so the
quiet ends of the horizon trigger packing and the peak spreads back)."""


@dataclass(frozen=True)
class PoolScenario:
    """One timed engine scenario.

    Attributes:
        machines: Pool size (one tenant per machine).
        horizon: Trace duration in virtual seconds.
        rate: Per-tenant Poisson arrival rate (requests/second).
        arbitrated: Whether a cap policy runs (adds barrier ticks).
        control_period: Seconds between control barriers when a policy
            runs.
        budget_shock: Whether the global budget drops to
            :data:`SHOCK_FRACTION` of its base at ``horizon/3`` and
            recovers at ``2*horizon/3`` (implies a policy runs).
        consolidation: Whether tenants ride a diurnal trough (peak
            :data:`CONSOLIDATION_PEAK_FACTOR` × ``rate`` mid-horizon)
            under the ``consolidating`` warm-migration policy instead
            of steady Poisson traffic (implies a policy runs).
        chaos_kills: How many machines fail-stop mid-run at seeded
            instants, their tenants rebuilt on survivors from barrier
            checkpoints (implies a policy runs; 0 disables).
        chaos_seed: Seed for the kill schedule and victim choice.
        grayfail: Whether a full seeded gray-failure plan runs (sensor
            dropouts, actuator drops, a straggler, one kill — see
            :meth:`fault_plan`) under a degraded-mode policy wrapper
            (implies a policy runs).
        hier: Whether the ``hier-arbitrated`` two-level water-fill
            policy runs instead of the flat SLA-aware arbiter (implies
            a policy runs).  Labeled ``scale-{machines}m`` — the
            standing large-pool scenario.
        step_mode: Default virtual-step kernel (``"scalar"`` or
            ``"batched"``) when the caller does not override it; the
            scale scenario pins ``"batched"``.
    """

    machines: int
    horizon: float = 30.0
    rate: float = 0.4
    arbitrated: bool = False
    control_period: float = 10.0
    budget_shock: bool = False
    consolidation: bool = False
    chaos_kills: int = 0
    chaos_seed: int = 7
    grayfail: bool = False
    hier: bool = False
    step_mode: str = "scalar"

    @property
    def label(self) -> str:
        """Stable scenario name used in the bench JSON."""
        if self.hier:
            return f"scale-{self.machines}m"
        if self.grayfail:
            return f"grayfail-{self.machines}m"
        if self.chaos_kills:
            return f"chaos-{self.machines}m"
        if self.consolidation:
            return f"consolidation-{self.machines}m"
        if self.budget_shock:
            return f"budget_shock-{self.machines}m"
        kind = "arbitrated" if self.arbitrated else "open"
        return f"{kind}-{self.machines}m"

    @property
    def budget_watts(self) -> float:
        """Base fleet budget when a policy runs."""
        return BUDGET_WATTS_PER_MACHINE * self.machines

    def tenant_trace(self, index: int):
        """The (seeded) arrival trace of tenant ``index``."""
        if self.consolidation:
            # One full quiet-busy-quiet cycle: troughs at both ends of
            # the horizon (pack), peak mid-run (spread).
            return diurnal_trace(
                CONSOLIDATION_PEAK_FACTOR * self.rate,
                self.horizon,
                period=self.horizon,
                trough_fraction=0.1,
                seed=index,
                name="bench-diurnal",
            )
        return poisson_trace(self.rate, self.horizon, seed=index, name="bench")

    def budget_schedule(self) -> BudgetSchedule | None:
        """The shock schedule (drop then recover), or None."""
        if not self.budget_shock:
            return None
        return BudgetSchedule(
            (
                (self.horizon / 3.0, SHOCK_FRACTION * self.budget_watts),
                (2.0 * self.horizon / 3.0, self.budget_watts),
            )
        )

    def fault_plan(self) -> FaultPlan | None:
        """The seeded gray-failure plan, or None unless ``grayfail``.

        A pure function of the scenario (seeded by ``chaos_seed``), so
        the same :class:`PoolScenario` always injects the same faults
        and timings stay comparable across PRs.
        """
        if not self.grayfail:
            return None
        return FaultPlan.generate(
            horizon=self.horizon,
            machines=self.machines,
            seed=self.chaos_seed,
            kills=1,
            sensor_dropouts=2,
            actuator_drops=2,
            stragglers=1,
            unresponsive_after=4.0,
            reintegrate=5.0,
        )


def build_pool_engine(
    scenario: PoolScenario,
    backend: str = "serial",
    workers: int | None = None,
    step_mode: str | None = None,
) -> DatacenterEngine:
    """Materialize a fresh engine for ``scenario`` (engines are one-shot).

    ``step_mode`` defaults to the scenario's own (``"scalar"`` unless
    the scenario pins otherwise); an explicit argument always wins.
    """
    if step_mode is None:
        step_mode = scenario.step_mode
    system = built_service_system()
    machines = [experiment_machine() for _ in range(scenario.machines)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )

    def make_runtime(machine):
        return PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machine,
            target_rate=target,
        )

    bindings = []
    for index in range(scenario.machines):
        spec = TenantSpec(
            name=f"tenant-{index}",
            trace=scenario.tenant_trace(index),
            sla=LatencySLA(latency_bound=1.0, attainment_target=0.9),
            job_factory=request_stream(seed=1000 + index),
        )
        bindings.append(
            InstanceBinding(
                tenant=spec,
                runtime=make_runtime(machines[index]),
                machine_index=index,
                runtime_factory=make_runtime,
            )
        )
    policy = None
    if scenario.consolidation:
        policy = build_policy(
            "consolidating",
            scenario.budget_watts,
            machines,
            schedule=scenario.budget_schedule(),
        )
    elif scenario.hier:
        policy = build_policy(
            "hier-arbitrated",
            scenario.budget_watts,
            machines,
            schedule=scenario.budget_schedule(),
        )
    elif (
        scenario.arbitrated
        or scenario.budget_shock
        or scenario.chaos_kills
        or scenario.grayfail
    ):
        policy = build_policy(
            "sla-aware",
            scenario.budget_watts,
            machines,
            schedule=scenario.budget_schedule(),
        )
    if scenario.chaos_kills:
        policy = ChaosPolicy(
            policy, kills=scenario.chaos_kills, seed=scenario.chaos_seed
        )
    plan = scenario.fault_plan()
    if plan is not None:
        if plan.kills:
            policy = ChaosPolicy(
                policy, seed=plan.seed, kill_times=plan.kills
            )
        policy = DegradedModePolicy(policy)
    return DatacenterEngine(
        machines,
        bindings,
        policy=policy,
        control_period=scenario.control_period,
        backend=backend,
        workers=workers,
        faults=plan,
        step_mode=step_mode,
    )


def count_events(scenario: PoolScenario) -> int:
    """Global events (arrivals + control barriers) a scenario processes.

    Computed from the traces alone — no engine (with its runtimes and
    calibration) is built just to count.  Mirrors the engine's barrier
    merge: periodic ticks plus the budget schedule's change instants,
    deduplicated.
    """
    arrivals = sum(
        scenario.tenant_trace(index).count for index in range(scenario.machines)
    )
    ticks: set[float] = set()
    if (
        scenario.arbitrated
        or scenario.budget_shock
        or scenario.consolidation
        or scenario.chaos_kills
        or scenario.grayfail
        or scenario.hier
    ):
        periods = int(math.floor(scenario.horizon / scenario.control_period))
        ticks.update(
            k * scenario.control_period for k in range(1, periods + 1)
        )
        schedule = scenario.budget_schedule()
        if schedule is not None:
            ticks.update(
                t for t in schedule.times if 0.0 < t <= scenario.horizon
            )
        if scenario.chaos_kills:
            ticks.update(
                chaos_kill_times(
                    scenario.horizon, scenario.chaos_kills, scenario.chaos_seed
                )
            )
        plan = scenario.fault_plan()
        if plan is not None:
            ticks.update(plan.barrier_times(scenario.horizon))
    return arrivals + len(ticks)
