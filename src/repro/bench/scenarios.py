"""Reference scenarios the perf-tracking bench harness times.

One scenario family, parameterized by pool size: ``machines`` servers,
one Poisson-driven :class:`~repro.datacenter.service.ServiceApp` tenant
per machine at modest utilization.  Mostly-idle pools are exactly the
regime the lazy scheduler targets (the eager loop pays O(machines) per
event regardless of idleness), and one-tenant-per-machine keeps the
virtual workload identical across pool sizes so wall-clock differences
measure the engine, not the workload.

Scenarios are fully seeded: the same :class:`PoolScenario` always
builds the same traces, requests, and calibration, so timings across
PRs compare like for like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter.arbiter import PowerArbiter
from repro.datacenter.engine import DatacenterEngine, InstanceBinding
from repro.datacenter.service import (
    ServiceApp,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.tenants import LatencySLA, TenantSpec
from repro.datacenter.traffic import poisson_trace
from repro.experiments.common import experiment_machine
from repro.experiments.registry import built_service_system

__all__ = ["PoolScenario", "build_pool_engine", "count_events"]

BUDGET_WATTS_PER_MACHINE = 200.0
"""Arbitrated-scenario budget per machine (floor ~183 W, ceiling 220 W)."""


@dataclass(frozen=True)
class PoolScenario:
    """One timed engine scenario.

    Attributes:
        machines: Pool size (one tenant per machine).
        horizon: Trace duration in virtual seconds.
        rate: Per-tenant Poisson arrival rate (requests/second).
        arbitrated: Whether a power arbiter runs (adds barrier ticks).
        arbiter_period: Seconds between arbitrations when arbitrated.
    """

    machines: int
    horizon: float = 30.0
    rate: float = 0.4
    arbitrated: bool = False
    arbiter_period: float = 10.0

    @property
    def label(self) -> str:
        """Stable scenario name used in the bench JSON."""
        kind = "arbitrated" if self.arbitrated else "open"
        return f"{kind}-{self.machines}m"

    def tenant_trace(self, index: int):
        """The (seeded) arrival trace of tenant ``index``."""
        return poisson_trace(self.rate, self.horizon, seed=index, name="bench")


def build_pool_engine(
    scenario: PoolScenario,
    backend: str = "serial",
    workers: int | None = None,
) -> DatacenterEngine:
    """Materialize a fresh engine for ``scenario`` (engines are one-shot)."""
    system = built_service_system()
    machines = [experiment_machine() for _ in range(scenario.machines)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    bindings = []
    for index in range(scenario.machines):
        runtime = PowerDialRuntime(
            app=ServiceApp(),
            table=system.table,
            machine=machines[index],
            target_rate=target,
        )
        spec = TenantSpec(
            name=f"tenant-{index}",
            trace=scenario.tenant_trace(index),
            sla=LatencySLA(latency_bound=1.0, attainment_target=0.9),
            job_factory=request_stream(seed=1000 + index),
        )
        bindings.append(
            InstanceBinding(tenant=spec, runtime=runtime, machine_index=index)
        )
    arbiter = None
    if scenario.arbitrated:
        arbiter = PowerArbiter(
            BUDGET_WATTS_PER_MACHINE * scenario.machines, machines
        )
    return DatacenterEngine(
        machines,
        bindings,
        arbiter=arbiter,
        arbiter_period=scenario.arbiter_period,
        backend=backend,
        workers=workers,
    )


def count_events(scenario: PoolScenario) -> int:
    """Global events (arrivals + arbiter ticks) a scenario will process.

    Computed from the traces alone — no engine (with its runtimes and
    calibration) is built just to count.
    """
    arrivals = sum(
        scenario.tenant_trace(index).count for index in range(scenario.machines)
    )
    ticks = 0
    if scenario.arbitrated:
        ticks = int(math.floor(scenario.horizon / scenario.arbiter_period))
    return arrivals + ticks
