"""The perf-trajectory gate: fresh bench run vs committed baselines.

CI's ``bench-trajectory`` step runs this module after the smoke bench::

    PYTHONPATH=src python -m repro.bench.trajectory \\
        --baseline-dir . --fresh-dir bench-artifacts \\
        --out bench-artifacts/TRAJECTORY.md

It compares the fresh run's per-scenario **serial** timings (and the
runtime microbench probes) against the committed repo-root
``BENCH_datacenter.json`` / ``BENCH_runtime.json`` trajectory
artifacts, and exits nonzero — naming the regressed scenario — when a
normalized cost grew past the tolerance.

Two normalizations make a smoke run on an arbitrary CI host comparable
to a committed full run from another machine:

* **per-event cost**: scenario wall-clock divided by its event count,
  so a 10 s smoke horizon compares against a 120 s committed horizon
  (the serial scheduler is O(events));
* **host speed**: each payload carries the
  ``calibration_ops_per_sec`` score measured alongside it
  (:mod:`repro.bench.calibration`); costs are expressed in
  *calibration ops per event*, cancelling host and interpreter speed
  to first order.

Residual noise (different pool sizes per kind, per-run fixed costs at
tiny event counts) is absorbed by a deliberately generous tolerance —
the gate is meant to catch structural slowdowns (an accidentally
quadratic path, a hot loop de-optimized), not single-digit-percent
drift.  ``--inject-slowdown 2.0`` scales the fresh costs for an
end-to-end check that the gate actually fails and names the scenario.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "DEFAULT_TOLERANCE",
    "TrajectoryCheck",
    "compare_datacenter",
    "compare_runtime",
    "format_markdown",
    "main",
    "scenario_kind",
]

DEFAULT_TOLERANCE = 1.6
"""Max tolerated normalized-cost ratio (fresh / baseline).

Generous by design: cross-host calibration and smoke-vs-full scenario
differences leave ~±25 % of noise, while the regressions worth gating
(complexity-class slips) show up as >=2x.  A synthetic 2x slowdown must
fail the gate, so the ceiling sits well below 2."""


@dataclass(frozen=True)
class TrajectoryCheck:
    """One scenario's (or probe's) fresh-vs-baseline comparison.

    Attributes:
        name: Fresh scenario label (e.g. ``open-4m``) or probe name.
        kind: Scenario family compared against (``open``,
            ``arbitrated``, …) or ``probe``.
        baseline_cost: Committed normalized cost (calibration ops per
            event / item / beat / call).
        fresh_cost: This run's normalized cost, same unit.
        ratio: ``fresh_cost / baseline_cost`` — > 1 means slower.
        regressed: Whether ``ratio`` exceeded the tolerance.
    """

    name: str
    kind: str
    baseline_cost: float
    fresh_cost: float
    ratio: float
    regressed: bool

    @property
    def message(self) -> str:
        """Human-readable one-liner, suitable for a CI failure log."""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: normalized cost {self.ratio:.2f}x the committed "
            f"baseline ({self.kind}) — {verdict}"
        )


def scenario_kind(label: str) -> str:
    """The scenario family of a bench label (``open-32m`` -> ``open``)."""
    return label.rsplit("-", 1)[0]


def _calibration(payload: dict[str, Any]) -> float | None:
    """The payload's host-speed score, or None for pre-gate artifacts."""
    score = payload.get("calibration_ops_per_sec")
    return float(score) if score else None


def _normalizer(
    baseline: dict[str, Any], fresh: dict[str, Any], notes: list[str]
) -> tuple[float, float]:
    """Per-payload calibration factors (1.0 with a note when absent)."""
    base_calib = _calibration(baseline)
    fresh_calib = _calibration(fresh)
    if base_calib is None or fresh_calib is None:
        notes.append(
            "calibration_ops_per_sec missing from "
            + ("baseline" if base_calib is None else "fresh run")
            + "; comparing raw (un-normalized) costs"
        )
        return 1.0, 1.0
    return base_calib, fresh_calib


def _serial_cost_per_event(scenario: dict[str, Any]) -> float | None:
    """A scenario's serial seconds per event, or None if malformed."""
    serial = scenario.get("backends", {}).get("serial")
    events = scenario.get("events")
    if not serial or not events:
        return None
    return serial["seconds"] / events


def compare_datacenter(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    slowdown: float = 1.0,
    notes: list[str] | None = None,
) -> list[TrajectoryCheck]:
    """Compare a fresh datacenter payload against the committed one.

    Every fresh scenario whose *kind* exists in the baseline is
    checked: its calibrated per-event serial cost against the mean
    calibrated per-event cost of the baseline's scenarios of the same
    kind (pool sizes may differ — the serial scheduler is O(events), so
    per-event cost transfers).  Fresh kinds with no committed
    counterpart are skipped with a note; they gate once the baseline is
    regenerated.  ``slowdown`` scales the fresh costs (synthetic
    regression injection for validating the gate itself).
    """
    notes = notes if notes is not None else []
    base_calib, fresh_calib = _normalizer(baseline, fresh, notes)
    by_kind: dict[str, list[float]] = {}
    for scenario in baseline.get("scenarios", ()):
        cost = _serial_cost_per_event(scenario)
        if cost is not None:
            kind = scenario_kind(scenario["scenario"])
            by_kind.setdefault(kind, []).append(cost * base_calib)
    checks: list[TrajectoryCheck] = []
    for scenario in fresh.get("scenarios", ()):
        label = scenario["scenario"]
        cost = _serial_cost_per_event(scenario)
        if cost is None:
            notes.append(f"{label}: no serial timing in the fresh payload")
            continue
        kind = scenario_kind(label)
        reference = by_kind.get(kind)
        if not reference:
            notes.append(
                f"{label}: no committed baseline for kind {kind!r} yet "
                "(gates after the next full-bench regeneration)"
            )
            continue
        baseline_cost = sum(reference) / len(reference)
        fresh_cost = cost * fresh_calib * slowdown
        ratio = fresh_cost / baseline_cost
        checks.append(
            TrajectoryCheck(
                name=label,
                kind=kind,
                baseline_cost=baseline_cost,
                fresh_cost=fresh_cost,
                ratio=ratio,
                regressed=ratio > tolerance,
            )
        )
    return checks


_PROBE_COSTS = {
    "step_path": ("items_per_sec", "item"),
    "batched_step_path": ("items_per_sec", "item"),
    "heartbeat_window": ("beats_per_sec", "beat"),
}


def compare_runtime(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    slowdown: float = 1.0,
    notes: list[str] | None = None,
) -> list[TrajectoryCheck]:
    """Compare the runtime microbench probes against the committed run.

    ``step_path``, ``batched_step_path``, and ``heartbeat_window``
    compare calibrated per-item / per-beat costs; ``actuation_plan``
    compares the calibrated cost
    of a *cached* plan call (the steady-state path the cache exists
    for).  Same tolerance and injection semantics as
    :func:`compare_datacenter`.
    """
    notes = notes if notes is not None else []
    base_calib, fresh_calib = _normalizer(baseline, fresh, notes)
    base_probes = baseline.get("probes", {})
    fresh_probes = fresh.get("probes", {})
    checks: list[TrajectoryCheck] = []

    def add(name: str, base_cost: float, fresh_cost: float) -> None:
        baseline_cost = base_cost * base_calib
        cost = fresh_cost * fresh_calib * slowdown
        ratio = cost / baseline_cost
        checks.append(
            TrajectoryCheck(
                name=name,
                kind="probe",
                baseline_cost=baseline_cost,
                fresh_cost=cost,
                ratio=ratio,
                regressed=ratio > tolerance,
            )
        )

    for probe, (rate_field, _unit) in _PROBE_COSTS.items():
        base = base_probes.get(probe)
        current = fresh_probes.get(probe)
        if not base or not current:
            notes.append(f"probe {probe!r} missing from a payload; skipped")
            continue
        add(probe, 1.0 / base[rate_field], 1.0 / current[rate_field])
    base_plan = base_probes.get("actuation_plan")
    fresh_plan = fresh_probes.get("actuation_plan")
    if base_plan and fresh_plan:
        add(
            "actuation_plan(cached)",
            1e-6 * base_plan["cached_us_per_call"],
            1e-6 * fresh_plan["cached_us_per_call"],
        )
    else:
        notes.append("probe 'actuation_plan' missing from a payload; skipped")
    return checks


def format_markdown(
    checks: Sequence[TrajectoryCheck],
    notes: Sequence[str],
    tolerance: float,
) -> str:
    """Render the comparison as the markdown summary CI uploads."""
    lines = [
        "# Bench trajectory: fresh run vs committed baseline",
        "",
        f"Tolerance: fresh normalized cost may be at most "
        f"**{tolerance:.2f}x** the committed baseline "
        "(costs in host-calibrated ops per event/item/beat/call; "
        "see `docs/BENCH.md`).",
        "",
        "| scenario / probe | kind | baseline cost | fresh cost | ratio | status |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for check in checks:
        status = "**REGRESSED**" if check.regressed else "ok"
        lines.append(
            f"| {check.name} | {check.kind} | {check.baseline_cost:,.0f} "
            f"| {check.fresh_cost:,.0f} | {check.ratio:.2f}x | {status} |"
        )
    if notes:
        lines += ["", "## Notes", ""]
        lines += [f"- {note}" for note in notes]
    regressed = [c for c in checks if c.regressed]
    lines += [
        "",
        (
            f"**{len(regressed)} regression(s)** out of {len(checks)} checks."
            if regressed
            else f"All {len(checks)} checks within tolerance."
        ),
        "",
    ]
    return "\n".join(lines)


def _load(path: Path) -> dict[str, Any]:
    """Read one bench JSON artifact, with a readable failure."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(
            f"bench-trajectory: {path} not found — run "
            "`python -m repro.bench` (baseline) or the smoke bench "
            "(fresh) first"
        ) from None
    except json.JSONDecodeError as error:
        raise SystemExit(f"bench-trajectory: {path} is not valid JSON: {error}")


def main(argv: list[str] | None = None) -> int:
    """CLI driver; exit 0 on pass, 1 on regression (scenario named)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Gate a fresh bench run against the committed "
        "BENCH_*.json perf-trajectory baselines.",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory holding the committed BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        help="directory holding the fresh run's BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"max fresh/baseline normalized-cost ratio "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply fresh costs by FACTOR (synthetic regression, "
        "for validating the gate; default: 1.0)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the markdown diff summary to this file",
    )
    args = parser.parse_args(argv)

    notes: list[str] = []
    checks = compare_datacenter(
        _load(args.baseline_dir / "BENCH_datacenter.json"),
        _load(args.fresh_dir / "BENCH_datacenter.json"),
        tolerance=args.tolerance,
        slowdown=args.inject_slowdown,
        notes=notes,
    )
    checks += compare_runtime(
        _load(args.baseline_dir / "BENCH_runtime.json"),
        _load(args.fresh_dir / "BENCH_runtime.json"),
        tolerance=args.tolerance,
        slowdown=args.inject_slowdown,
        notes=notes,
    )

    markdown = format_markdown(checks, notes, args.tolerance)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(markdown)
    for check in checks:
        print(check.message)
    for note in notes:
        print(f"note: {note}")

    regressed = [check for check in checks if check.regressed]
    if regressed:
        worst = max(regressed, key=lambda check: check.ratio)
        print(
            f"\nbench-trajectory FAILED: scenario {worst.name!r} is "
            f"{worst.ratio:.2f}x the committed {worst.kind} baseline "
            f"(tolerance {args.tolerance:.2f}x)."
            "\nIf this slowdown is intended (new feature cost), regenerate "
            "the baselines with `PYTHONPATH=src python -m repro.bench` and "
            "commit the updated BENCH_*.json.",
            file=sys.stderr,
        )
        return 1
    print(f"\nbench-trajectory OK: {len(checks)} checks within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
