"""Automatic heartbeat insertion (paper Section 2.3.1).

The paper's instrumentation system "profiles each application to find the
most time-consuming loop (in all of our applications this is the main
control loop), then inserts a heartbeat call at the top of this loop."

Our applications attribute their work to named *sections* through a
:class:`~repro.apps.base.WorkTracker` (for example ``"main"``,
``"main/motion_estimation"``, ``"startup/parse"``).  This module profiles a
sample execution, aggregates work per repeated section, and selects the
heartbeat site: the outermost repeated section with the largest total work.
The PowerDial runtime then emits one heartbeat per iteration of that
section.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LoopProfile",
    "profile_sections",
    "choose_heartbeat_section",
    "InstrumentationError",
]


class InstrumentationError(RuntimeError):
    """Raised when no plausible heartbeat site can be found."""


@dataclass(frozen=True)
class LoopProfile:
    """Aggregate profile of one named section.

    Attributes:
        section: Section name (hierarchical, ``/``-separated).
        entries: How many times the section was entered.
        total_work: Total work units attributed to the section, including
            work attributed to its nested sub-sections.
    """

    section: str
    entries: int
    total_work: float


def profile_sections(events: list[tuple[str, float]]) -> list[LoopProfile]:
    """Aggregate raw ``(section, work)`` events into per-section profiles.

    Work attributed to ``"a/b"`` also counts toward the enclosing ``"a"``;
    entry counts do not roll up (an entry of ``a/b`` is not an entry of
    ``a``), matching how a loop-profiler counts loop-header executions.
    """
    entries: dict[str, int] = {}
    work: dict[str, float] = {}
    for section, units in events:
        if units < 0:
            raise InstrumentationError(
                f"negative work {units!r} attributed to section {section!r}"
            )
        entries[section] = entries.get(section, 0) + 1
        parts = section.split("/")
        for depth in range(1, len(parts) + 1):
            prefix = "/".join(parts[:depth])
            work[prefix] = work.get(prefix, 0.0) + units
    profiles = []
    for section in sorted(work):
        profiles.append(
            LoopProfile(
                section=section,
                entries=entries.get(section, 0),
                total_work=work[section],
            )
        )
    return profiles


def choose_heartbeat_section(
    profiles: list[LoopProfile], min_entries: int = 2
) -> str:
    """Pick the heartbeat site: the dominant repeated section.

    Candidates are sections entered at least ``min_entries`` times (a loop,
    not straight-line startup code).  Among candidates we choose the one
    with the largest total work; ties break toward the outermost (shortest)
    name so the heartbeat lands at the top of the main control loop rather
    than an inner kernel.
    """
    candidates = [p for p in profiles if p.entries >= min_entries]
    if not candidates:
        raise InstrumentationError(
            "no repeated section found; cannot choose a heartbeat site"
        )
    best = max(candidates, key=lambda p: (p.total_work, -len(p.section)))
    return best.section
