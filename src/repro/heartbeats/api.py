"""Application Heartbeats (Hoffmann et al., ICAC 2010).

The feedback substrate PowerDial builds on.  An application registers a
heartbeat monitor, declares a target heart-rate window, and calls
:meth:`HeartbeatMonitor.heartbeat` once per unit of useful work (one loop
iteration of the main control loop).  Observers — the PowerDial controller,
experiment harnesses — read instantaneous and windowed heart rates.

Timestamps come from a :class:`~repro.hardware.clock.VirtualClock` so that
heart rates reflect simulated execution time, exactly as the real API
reflects wall-clock time.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.hardware.clock import VirtualClock

__all__ = [
    "HeartbeatRecord",
    "HeartbeatMonitor",
    "HeartbeatError",
    "HeartbeatWindowState",
]


class HeartbeatError(RuntimeError):
    """Raised for invalid heartbeat API usage."""


@dataclass(frozen=True)
class HeartbeatRecord:
    """One emitted heartbeat.

    Attributes:
        sequence: Monotonically increasing beat number, starting at 0.
        timestamp: Virtual time at which the beat was emitted.
        tag: Optional application-supplied label (e.g. frame number).
    """

    sequence: int
    timestamp: float
    tag: object | None = None


@dataclass(frozen=True)
class HeartbeatWindowState:
    """A monitor's rate-window state, detached for warm handoff.

    Everything a *new* monitor needs to continue another monitor's
    sliding-window statistics without a cold restart: the live
    migration path (:meth:`~repro.core.runtime.PowerDialRuntime.
    snapshot`) ships this between hosts.  Plain floats and tuples, so
    it pickles across process boundaries.

    Attributes:
        count: Beats the source monitor had emitted.
        last_timestamp: Timestamp of the source's last beat (None when
            it never beat) — lets the first beat after a restore close
            its interval, provided the destination clock has reached
            that instant.
        intervals: The sliding window's beat intervals, oldest first.
        window_sum: The source's *running* interval sum — carried
            verbatim (not recomputed) so restored rate queries
            reproduce the source's floats exactly.
    """

    count: int
    last_timestamp: float | None
    intervals: tuple[float, ...]
    window_sum: float


class HeartbeatMonitor:
    """Registry and rate statistics for one application's heartbeats.

    Mirrors the Application Heartbeats API surface used by the paper:
    ``register`` (construction), ``heartbeat``, current/window/global rate
    queries, and min/max target rates.

    Args:
        clock: Source of timestamps.
        window_size: Number of most recent beat *intervals* in the sliding
            window (the paper and [35] use 20).
        min_target_rate: Minimum desired heart rate in beats/second.
        max_target_rate: Maximum desired heart rate in beats/second.
    """

    def __init__(
        self,
        clock: VirtualClock,
        window_size: int = 20,
        min_target_rate: float | None = None,
        max_target_rate: float | None = None,
    ) -> None:
        if window_size < 1:
            raise HeartbeatError(f"window_size must be >= 1, got {window_size!r}")
        self._clock = clock
        self._window_size = window_size
        self._records: list[HeartbeatRecord] = []
        # Sequence offset of the first locally emitted beat: 0 normally,
        # the carried-over beat count after restore_window(), so beat
        # numbering continues across a warm handoff.
        self._base = 0
        self._intervals: deque[float] = deque(maxlen=window_size)
        # Running sum of the window's intervals, maintained incrementally
        # so the per-beat rate queries are O(1) instead of O(window).
        self._window_sum = 0.0
        self.set_targets(min_target_rate, max_target_rate)

    # ------------------------------------------------------------------
    # Targets
    # ------------------------------------------------------------------
    def set_targets(
        self, min_rate: float | None, max_rate: float | None
    ) -> None:
        """Declare the desired heart-rate window.

        Either bound may be ``None`` (unconstrained).  The paper's
        experiments set both to the measured baseline rate.
        """
        if min_rate is not None and min_rate <= 0:
            raise HeartbeatError(f"min target rate must be positive, got {min_rate!r}")
        if max_rate is not None and max_rate <= 0:
            raise HeartbeatError(f"max target rate must be positive, got {max_rate!r}")
        if min_rate is not None and max_rate is not None and min_rate > max_rate:
            raise HeartbeatError(
                f"min target {min_rate!r} exceeds max target {max_rate!r}"
            )
        self._min_target = min_rate
        self._max_target = max_rate

    @property
    def min_target_rate(self) -> float | None:
        """Minimum desired heart rate (beats/second), if declared."""
        return self._min_target

    @property
    def max_target_rate(self) -> float | None:
        """Maximum desired heart rate (beats/second), if declared."""
        return self._max_target

    @property
    def target_rate(self) -> float | None:
        """Midpoint of the target window (the controller's setpoint ``g``)."""
        if self._min_target is None and self._max_target is None:
            return None
        if self._min_target is None:
            return self._max_target
        if self._max_target is None:
            return self._min_target
        return 0.5 * (self._min_target + self._max_target)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def heartbeat(self, tag: object | None = None) -> HeartbeatRecord:
        """Emit one heartbeat at the current virtual time."""
        now = self._clock.now
        record = HeartbeatRecord(self._base + len(self._records), now, tag)
        if self._records:
            interval = now - self._records[-1].timestamp
            if interval < 0:
                raise HeartbeatError("heartbeat timestamps went backwards")
            if len(self._intervals) == self._window_size:
                self._window_sum -= self._intervals[0]
            self._intervals.append(interval)
            self._window_sum += interval
        self._records.append(record)
        return record

    def commit_run(
        self, timestamps: Sequence[float]
    ) -> tuple[int, list[float | None]]:
        """Emit a run of heartbeats at precomputed timestamps, in one call.

        The bulk twin of :meth:`heartbeat` for the batched step kernel
        (:mod:`repro.core.batched`): the caller has already computed the
        exact clock values successive beats would observe, and this
        method reproduces — float for float — the window state that the
        same number of sequential :meth:`heartbeat` calls would leave
        behind (the interval recurrence runs in emission order on the
        same running ``window_sum``).

        Returns ``(first_sequence, window_rates)``: the sequence number
        of the run's first beat, and one :meth:`window_rate` value per
        beat, observed *after* that beat (``None`` while no interval
        exists or the window duration is non-positive).

        The per-beat record log is collapsed to a single trailing
        :class:`HeartbeatRecord` (the same trick :meth:`restore_window`
        uses), so :attr:`count`, the next interval, and
        :meth:`export_window` are exact while :attr:`records` and
        :meth:`global_rate` only see the collapsed history.  The commit
        is atomic: a backwards timestamp raises before any state
        changes.
        """
        n = len(timestamps)
        if n == 0:
            return self.count, []
        window_size = self._window_size
        last = self._records[-1].timestamp if self._records else None
        if last is not None and n >= 8 and len(self._intervals) == window_size:
            bulk = self._commit_run_filled(timestamps, last, n)
            if bulk is not None:
                return bulk
        if not isinstance(timestamps, list):
            # Normalize ndarray/tuple input so the recurrence below runs
            # on Python floats, like per-beat heartbeat() calls would.
            timestamps = [float(t) for t in timestamps]
        intervals = deque(self._intervals, maxlen=window_size)
        window_sum = self._window_sum
        rates: list[float | None] = []
        for now in timestamps:
            if last is not None:
                interval = now - last
                if interval < 0:
                    raise HeartbeatError("heartbeat timestamps went backwards")
                if len(intervals) == window_size:
                    window_sum -= intervals[0]
                intervals.append(interval)
                window_sum += interval
            last = now
            if intervals and window_sum > 0.0:
                rates.append(len(intervals) / window_sum)
            else:
                rates.append(None)
        first = self._base + len(self._records)
        self._base = first + n - 1
        self._records = [HeartbeatRecord(self._base, timestamps[-1])]
        self._intervals = intervals
        self._window_sum = window_sum
        return first, rates

    def _commit_run_filled(
        self, timestamps: Sequence[float], last: float, n: int
    ) -> tuple[int, list[float | None]] | None:
        """Vectorized :meth:`commit_run` for the filled-window steady state.

        With the interval window already full, every beat performs the
        same three-operation recurrence — evict the oldest interval, add
        the newest, read ``window_size / window_sum`` — so the whole run
        unrolls into one strictly sequential ``np.add.accumulate`` over
        the interleaved ``(-evicted, +appended)`` stream, seeded with the
        current ``window_sum``.  Each chain element is the identical IEEE
        binary add the scalar loop would execute (``x - old`` equals
        ``x + (-old)`` bit for bit), so the emitted rates and the final
        window state match the loop exactly.  Returns ``None`` — leaving
        all state untouched — when any intermediate window sum is
        non-positive, which the loop handles with per-beat ``None``
        rates.
        """
        window_size = self._window_size
        ts = np.asarray(timestamps, dtype=float)
        # The eviction stream is simply the interval stream delayed by
        # ``window_size``: pool = [existing window | new intervals].
        pool = np.empty(window_size + n)
        pool[:window_size] = self._intervals
        news = pool[window_size:]
        news[0] = ts[0] - last
        if n > 1:
            np.subtract(ts[1:], ts[:-1], out=news[1:])
        if float(news.min()) < 0.0:
            raise HeartbeatError("heartbeat timestamps went backwards")
        chain = np.empty(2 * n + 1)
        chain[0] = self._window_sum
        np.negative(pool[:n], out=chain[1::2])
        chain[2::2] = news
        np.add.accumulate(chain, out=chain)
        sums = chain[2::2]
        if float(sums.min()) <= 0.0:
            return None
        rates = (window_size / sums).tolist()
        first = self._base + len(self._records)
        self._base = first + n - 1
        self._records = [HeartbeatRecord(self._base, float(ts[-1]))]
        self._intervals = deque(pool[n:].tolist(), maxlen=window_size)
        self._window_sum = float(chain[-1])
        return first, rates

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of beats emitted (carried-over beats included)."""
        return self._base + len(self._records)

    @property
    def records(self) -> list[HeartbeatRecord]:
        """All emitted heartbeat records."""
        return list(self._records)

    @property
    def window_size(self) -> int:
        """Sliding window length (in intervals)."""
        return self._window_size

    def last_interval(self) -> float | None:
        """Seconds between the two most recent beats, if any."""
        if not self._intervals:
            return None
        return self._intervals[-1]

    def instant_rate(self) -> float | None:
        """Instantaneous heart rate: 1 / last interval."""
        interval = self.last_interval()
        if interval is None or interval == 0.0:
            return None
        return 1.0 / interval

    def window_rate(self) -> float | None:
        """Heart rate over the sliding window (beats/second).

        Computed as the window beat count divided by the window duration —
        equivalently the reciprocal of the mean interval.  Returns ``None``
        until at least one interval exists.  O(1): the window duration is
        maintained as a running sum as beats arrive.
        """
        if not self._intervals:
            return None
        total = self._window_sum
        if total <= 0.0:
            return None
        return len(self._intervals) / total

    def global_rate(self) -> float | None:
        """Average rate over the whole execution so far."""
        if len(self._records) < 2:
            return None
        span = self._records[-1].timestamp - self._records[0].timestamp
        if span == 0.0:
            return None
        return (len(self._records) - 1) / span

    def window_mean_interval(self) -> float | None:
        """Mean of the window's beat intervals (the paper's 'sliding mean
        of the last twenty times between heartbeats').  O(1) via the
        running window sum."""
        if not self._intervals:
            return None
        return self._window_sum / len(self._intervals)

    def reset(self) -> None:
        """Forget all beats, carried-over ones included (targets are
        preserved)."""
        self._records.clear()
        self._base = 0
        self._intervals.clear()
        self._window_sum = 0.0

    # ------------------------------------------------------------------
    # Warm handoff
    # ------------------------------------------------------------------
    def export_window(self) -> HeartbeatWindowState:
        """Detach the rate-window state for a warm handoff.

        The returned :class:`HeartbeatWindowState` carries the beat
        count, the last beat's timestamp, and the sliding window with
        its *running* sum, so a monitor restored from it continues the
        windowed statistics float-for-float.
        """
        return HeartbeatWindowState(
            count=self.count,
            last_timestamp=(
                self._records[-1].timestamp if self._records else None
            ),
            intervals=tuple(self._intervals),
            window_sum=self._window_sum,
        )

    def restore_window(self, state: HeartbeatWindowState) -> None:
        """Continue another monitor's window on this (fresh) monitor.

        Beat numbering resumes at ``state.count``; the sliding window
        and its running sum are adopted verbatim.  When the carried
        last-beat timestamp is not in this clock's future, it is
        replayed as the previous beat so the first local beat closes
        its interval exactly as an unmigrated run would; otherwise
        (the source ran ahead of this clock, e.g. a migration drain)
        the first local beat starts a fresh interval.  Only valid on a
        monitor that has not yet beaten; targets are untouched.
        """
        if self._records or self._base:
            raise HeartbeatError(
                "restore_window requires a fresh monitor (beats already "
                "emitted)"
            )
        if len(state.intervals) > self._window_size:
            raise HeartbeatError(
                f"carried window of {len(state.intervals)} intervals does "
                f"not fit a window_size={self._window_size} monitor"
            )
        if state.count <= 0:
            return
        if (
            state.last_timestamp is not None
            and state.last_timestamp <= self._clock.now
        ):
            self._base = state.count - 1
            self._records.append(
                HeartbeatRecord(state.count - 1, state.last_timestamp)
            )
        else:
            self._base = state.count
        self._intervals = deque(state.intervals, maxlen=self._window_size)
        self._window_sum = state.window_sum
