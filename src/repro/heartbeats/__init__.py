"""Application Heartbeats framework (paper Section 2.3.1, reference [25]).

The generic performance-feedback interface PowerDial uses: applications emit
one heartbeat per unit of useful work and declare target heart rates; the
control system observes instantaneous and sliding-window rates.
"""

from repro.heartbeats.api import HeartbeatError, HeartbeatMonitor, HeartbeatRecord
from repro.heartbeats.health import (
    HEALTH_DEAD,
    HEALTH_FRESH,
    HEALTH_STALE,
    HEALTH_UNRESPONSIVE,
    MACHINE_HEALTH_STATES,
    classify_heartbeat_age,
)
from repro.heartbeats.instrument import (
    InstrumentationError,
    LoopProfile,
    choose_heartbeat_section,
    profile_sections,
)
from repro.heartbeats.log import (
    HeartbeatLogRow,
    LogFormatError,
    read_log,
    write_log,
)

__all__ = [
    "HeartbeatMonitor",
    "HeartbeatRecord",
    "HeartbeatError",
    "HEALTH_FRESH",
    "HEALTH_STALE",
    "HEALTH_UNRESPONSIVE",
    "HEALTH_DEAD",
    "MACHINE_HEALTH_STATES",
    "classify_heartbeat_age",
    "LoopProfile",
    "profile_sections",
    "choose_heartbeat_section",
    "InstrumentationError",
    "HeartbeatLogRow",
    "write_log",
    "read_log",
    "LogFormatError",
]
