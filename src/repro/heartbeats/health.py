"""Heartbeat-age health classification.

The datacenter control plane judges a machine by the age of its most
recent trusted heartbeat telemetry: fresh telemetry means the machine
is controllable, aging telemetry means decisions are running on stale
state, and silence past a deadline means the machine must be treated
as unresponsive even though its workloads may still be running.  This
module holds the pure age -> health-state classifier shared by the
engine's control-view construction; the hysteresis on *recovery*
(a quarantined machine earns back trust slowly) lives with the
engine's per-machine state, not here, because it depends on history
rather than on a single age.
"""

from __future__ import annotations

__all__ = [
    "HEALTH_DEAD",
    "HEALTH_FRESH",
    "HEALTH_STALE",
    "HEALTH_UNRESPONSIVE",
    "MACHINE_HEALTH_STATES",
    "classify_heartbeat_age",
]

HEALTH_FRESH = "fresh"
"""Telemetry is current; the machine is fully controllable."""

HEALTH_STALE = "stale"
"""Telemetry is aging (or the machine is in its post-recovery
hysteresis window); decisions should hold last-known state."""

HEALTH_UNRESPONSIVE = "unresponsive"
"""Telemetry is past the unresponsive deadline; quarantine the
machine and reallocate its power to healthy peers."""

HEALTH_DEAD = "dead"
"""The machine fail-stopped; it is gone, not merely silent."""

MACHINE_HEALTH_STATES = (
    HEALTH_FRESH,
    HEALTH_STALE,
    HEALTH_UNRESPONSIVE,
    HEALTH_DEAD,
)
"""All health states a ClusterView machine may report, least to most
degraded."""

_EPS = 1e-9


def classify_heartbeat_age(
    age_seconds: float,
    stale_after_seconds: float,
    unresponsive_after_seconds: float,
) -> str:
    """Classify a live machine by the age of its last fresh heartbeat.

    Args:
        age_seconds: Seconds since the control plane last saw trusted
            telemetry from the machine (0 when the current barrier's
            sample is fresh).
        stale_after_seconds: Age beyond which the machine counts as
            stale (strictly greater-than, so 0 means "any positive
            age is stale").
        unresponsive_after_seconds: Age beyond which the machine
            counts as unresponsive; must exceed
            ``stale_after_seconds``.

    Returns:
        :data:`HEALTH_FRESH`, :data:`HEALTH_STALE`, or
        :data:`HEALTH_UNRESPONSIVE`.  (:data:`HEALTH_DEAD` is not an
        age — fail-stop is tracked by the engine's dead-machine set.)
    """
    if age_seconds > unresponsive_after_seconds + _EPS:
        return HEALTH_UNRESPONSIVE
    if age_seconds > stale_after_seconds + _EPS:
        return HEALTH_STALE
    return HEALTH_FRESH
