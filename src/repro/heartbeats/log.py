"""Heartbeat log export/import.

The Application Heartbeats framework logs every beat to a file so external
controllers and offline analysis can consume the performance signal.
This module provides the same interface: a tab-separated log with one
row per beat (sequence, timestamp, instant rate, window rate, global
rate) and a parser that round-trips it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, TextIO

from repro.heartbeats.api import HeartbeatMonitor

__all__ = ["HeartbeatLogRow", "write_log", "read_log", "LogFormatError"]

_HEADER = "beat\ttimestamp\tinstant_rate\twindow_rate\tglobal_rate"


class LogFormatError(ValueError):
    """Raised when a heartbeat log cannot be parsed."""


@dataclass(frozen=True)
class HeartbeatLogRow:
    """One parsed heartbeat log row.

    Attributes:
        beat: Heartbeat sequence number.
        timestamp: Emission time (virtual seconds).
        instant_rate: 1 / last interval (None for the first beat).
        window_rate: Sliding-window rate at this beat.
        global_rate: Whole-run rate at this beat.
    """

    beat: int
    timestamp: float
    instant_rate: float | None
    window_rate: float | None
    global_rate: float | None


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.9g}"


def _parse(value: str) -> float | None:
    if value == "-":
        return None
    try:
        return float(value)
    except ValueError as error:
        raise LogFormatError(f"bad rate field {value!r}") from error


def write_log(monitor: HeartbeatMonitor, stream: TextIO) -> int:
    """Replay a monitor's history into ``stream``; returns rows written.

    The rates recorded for each row are computed incrementally, exactly
    as an online logger attached to the application would have seen them.
    """
    replay = HeartbeatMonitor(
        _FixedClock(0.0), window_size=monitor.window_size
    )
    stream.write(_HEADER + "\n")
    rows = 0
    for record in monitor.records:
        replay._clock.now_value = record.timestamp
        replay.heartbeat(record.tag)
        stream.write(
            "\t".join(
                (
                    str(record.sequence),
                    f"{record.timestamp:.9g}",
                    _fmt(replay.instant_rate()),
                    _fmt(replay.window_rate()),
                    _fmt(replay.global_rate()),
                )
            )
            + "\n"
        )
        rows += 1
    return rows


def read_log(stream: TextIO) -> list[HeartbeatLogRow]:
    """Parse a heartbeat log written by :func:`write_log`."""
    lines = [line.rstrip("\n") for line in stream if line.strip()]
    if not lines or lines[0] != _HEADER:
        raise LogFormatError("missing heartbeat log header")
    rows = []
    for line in lines[1:]:
        fields = line.split("\t")
        if len(fields) != 5:
            raise LogFormatError(f"expected 5 fields, got {len(fields)}: {line!r}")
        rows.append(
            HeartbeatLogRow(
                beat=int(fields[0]),
                timestamp=float(fields[1]),
                instant_rate=_parse(fields[2]),
                window_rate=_parse(fields[3]),
                global_rate=_parse(fields[4]),
            )
        )
    return rows


class _FixedClock:
    """Minimal clock stub driven by recorded timestamps."""

    def __init__(self, start: float) -> None:
        self.now_value = start

    @property
    def now(self) -> float:
        return self.now_value
