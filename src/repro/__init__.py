"""PowerDial — dynamic knobs for responsive power-aware computing.

A complete Python reproduction of Hoffmann et al., ASPLOS 2011: the
influence-tracing knob identifier, the calibrator, the heartbeat-driven
controller and actuator, a simulated DVFS server platform, the four
benchmark applications (swaptions, x264, bodytrack, swish++), the
analytical power models, and the full experimental harness (Figures 5-8,
Tables 1-2).

Quickstart::

    from repro import build_powerdial, Machine
    from repro.apps.swaptions import SwaptionsApp, generate_swaptions

    jobs = [generate_swaptions(4, seed=s) for s in range(3)]
    system = build_powerdial(SwaptionsApp, training_jobs=jobs)
    print(system.report)
"""

from repro.core import (
    ActuationPolicy,
    KnobSpace,
    KnobTable,
    Parameter,
    PowerDialRuntime,
    PowerDialSystem,
    build_powerdial,
    measure_baseline_rate,
)
from repro.hardware import Machine, Processor, VirtualClock

__version__ = "1.0.0"

__all__ = [
    "build_powerdial",
    "measure_baseline_rate",
    "PowerDialSystem",
    "PowerDialRuntime",
    "ActuationPolicy",
    "Parameter",
    "KnobSpace",
    "KnobTable",
    "Machine",
    "Processor",
    "VirtualClock",
    "__version__",
]
