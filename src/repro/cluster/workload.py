"""Time-varying cluster workloads (paper Sections 3 and 5.5).

"Common workloads often contain intermittent load spikes" [Barroso &
Hölzle].  This module generates utilization profiles with a low baseline
punctuated by occasional spikes, plus the uniform utilization sweeps of
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadProfile", "spiky_profile", "utilization_sweep"]


@dataclass(frozen=True)
class LoadProfile:
    """A sequence of offered-load levels over time.

    Attributes:
        utilizations: Offered load per epoch, as a fraction of the
            *original* (fully provisioned) system's peak capacity.
        epoch_seconds: Duration each level holds.
    """

    utilizations: tuple[float, ...]
    epoch_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not self.utilizations:
            raise ValueError("profile needs at least one epoch")
        if any(not 0.0 <= u <= 1.0 for u in self.utilizations):
            raise ValueError("utilizations must be in [0, 1]")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch duration must be positive")

    @property
    def peak(self) -> float:
        """Highest offered load in the profile."""
        return max(self.utilizations)

    @property
    def mean(self) -> float:
        """Average offered load."""
        return float(np.mean(self.utilizations))


def spiky_profile(
    epochs: int = 48,
    base_utilization: float = 0.25,
    spike_utilization: float = 1.0,
    spike_probability: float = 0.08,
    seed: int = 5,
) -> LoadProfile:
    """A predominantly low-load profile with occasional full-load spikes.

    Mirrors the data-center utilization pattern the paper cites (typical
    20-30%% average utilization with intermittent peaks).
    """
    if not 0.0 <= spike_probability <= 1.0:
        raise ValueError("spike probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    levels = []
    for _ in range(epochs):
        if rng.uniform() < spike_probability:
            levels.append(spike_utilization)
        else:
            jitter = rng.uniform(-0.05, 0.05)
            levels.append(float(np.clip(base_utilization + jitter, 0.0, 1.0)))
    return LoadProfile(utilizations=tuple(levels))


def utilization_sweep(points: int = 11) -> tuple[float, ...]:
    """The Figure 8 x-axis: utilization 0 to 1 in equal steps."""
    if points < 2:
        raise ValueError(f"sweep needs >= 2 points, got {points!r}")
    return tuple(float(u) for u in np.linspace(0.0, 1.0, points))
