"""Replay a load profile against original and consolidated deployments.

Used by the §5.5-style analyses and the consolidation example: step
through a :class:`~repro.cluster.workload.LoadProfile`, evaluate both
systems at each epoch, and accumulate energy, power, and QoS statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.system import ClusterSpec, evaluate_system
from repro.cluster.workload import LoadProfile
from repro.core.knobs import KnobTable

__all__ = ["ReplayResult", "replay_profile"]


@dataclass(frozen=True)
class ReplayResult:
    """Aggregate outcome of replaying a profile against two deployments.

    Attributes:
        epochs: Number of epochs replayed.
        original_energy_joules: Energy of the fully provisioned system.
        consolidated_energy_joules: Energy of the knob-augmented system.
        worst_qos_loss: Largest per-epoch QoS loss of the consolidated
            system.
        mean_qos_loss: Load-weighted mean QoS loss across epochs.
        oversubscribed_epochs: Epochs in which the consolidated system
            needed knob speedups (ratio > 1).
    """

    epochs: int
    original_energy_joules: float
    consolidated_energy_joules: float
    worst_qos_loss: float
    mean_qos_loss: float
    oversubscribed_epochs: int

    @property
    def energy_savings_fraction(self) -> float:
        """Relative energy saved by consolidation over the replay."""
        if self.original_energy_joules == 0.0:
            return 0.0
        return (
            self.original_energy_joules - self.consolidated_energy_joules
        ) / self.original_energy_joules


def replay_profile(
    original: ClusterSpec,
    consolidated: ClusterSpec,
    table: KnobTable,
    profile: LoadProfile,
) -> ReplayResult:
    """Evaluate both deployments over every epoch of ``profile``.

    Load at each epoch is the profile utilization times the *original*
    system's peak capacity, as in Figure 8's x-axis.
    """
    peak = original.peak_instances
    original_energy = 0.0
    consolidated_energy = 0.0
    worst = 0.0
    weighted_loss = 0.0
    total_load = 0.0
    oversubscribed = 0
    for utilization in profile.utilizations:
        load = utilization * peak
        base = evaluate_system(original, load)
        cons = evaluate_system(consolidated, load, table=table)
        original_energy += base.power_watts * profile.epoch_seconds
        consolidated_energy += cons.power_watts * profile.epoch_seconds
        worst = max(worst, cons.qos_loss)
        weighted_loss += cons.qos_loss * load
        total_load += load
        if cons.max_required_speedup > 1.0 + 1e-12:
            oversubscribed += 1
    return ReplayResult(
        epochs=len(profile.utilizations),
        original_energy_joules=original_energy,
        consolidated_energy_joules=consolidated_energy,
        worst_qos_loss=worst,
        mean_qos_loss=weighted_loss / total_load if total_load else 0.0,
        oversubscribed_epochs=oversubscribed,
    )
