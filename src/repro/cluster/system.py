"""Multi-machine serving system with proportional load balancing (§5.5).

The paper's testbed: ``N`` identical servers behind a load balancer that
spreads application instances proportionally; machines without work idle
but stay powered on.  Each machine has one *slot* per core — an instance
on its own slot delivers target performance; when a machine holds more
instances than slots, every resident instance slows down by the
oversubscription ratio, and PowerDial must supply that ratio as knob
speedup to preserve responsiveness.

Two evaluation paths are provided:

* :func:`evaluate_system` — the closed-form path used for the Figure 8
  utilization sweeps (power from the machine power model, QoS from the
  actuator's quantum plan at the required speedup);
* :class:`~repro.cluster.system.InstanceSimulation` via
  :func:`simulate_instance` — runs a *real* controlled runtime on a
  ``load_factor``-degraded machine, used to validate that the closed form
  matches the behaving system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.actuator import ActuationPolicy, Actuator
from repro.core.knobs import KnobTable
from repro.core.runtime import RunResult
from repro.hardware.cpu import XEON_E5530_PSTATES
from repro.hardware.machine import Machine
from repro.hardware.power import PowerModel

__all__ = [
    "ClusterSpec",
    "SystemPoint",
    "place_instances",
    "evaluate_system",
    "simulate_instance",
    "ClusterError",
]


class ClusterError(ValueError):
    """Raised for invalid cluster configuration."""


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous server pool.

    Attributes:
        machines: Number of servers (powered on at all times).
        slots_per_machine: Instances each server can run at full speed
            (one per core for single-threaded instances; one per machine
            for 8-thread instances like the swish++ setup).
        power_model: Full-system power model per server.
    """

    machines: int
    slots_per_machine: int
    power_model: PowerModel = PowerModel()

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ClusterError(f"cluster needs >= 1 machine, got {self.machines!r}")
        if self.slots_per_machine < 1:
            raise ClusterError(
                f"need >= 1 slot per machine, got {self.slots_per_machine!r}"
            )

    @property
    def peak_instances(self) -> int:
        """Instances the pool serves at full-speed peak."""
        return self.machines * self.slots_per_machine


def place_instances(instances: int, machines: int) -> list[int]:
    """Proportional (balanced) placement of instances across machines.

    The paper's balancer "load balances all jobs proportionally across
    available machines": counts differ by at most one.
    """
    if instances < 0:
        raise ClusterError(f"instances must be >= 0, got {instances!r}")
    if machines < 1:
        raise ClusterError(f"machines must be >= 1, got {machines!r}")
    base, remainder = divmod(instances, machines)
    return [base + (1 if index < remainder else 0) for index in range(machines)]


@dataclass(frozen=True)
class SystemPoint:
    """One evaluated operating point of a serving system.

    Attributes:
        instances: Offered load (full-speed instance equivalents; may be
            fractional for request-stream workloads).
        power_watts: Total pool power.
        qos_loss: Mean QoS loss across instances (0 when nothing is
            oversubscribed).
        performance_factor: Delivered/target performance (1.0 unless the
            required speedup exceeds the knob table's maximum).
        max_required_speedup: Largest oversubscription ratio any machine
            had to absorb.
    """

    instances: float
    power_watts: float
    qos_loss: float
    performance_factor: float
    max_required_speedup: float


def evaluate_system(
    spec: ClusterSpec,
    load: float,
    table: KnobTable | None = None,
    policy: ActuationPolicy = ActuationPolicy.MINIMAL_SPEEDUP,
) -> SystemPoint:
    """Closed-form evaluation of the pool at a given offered load.

    ``load`` is measured in full-speed instance equivalents and may be
    fractional: the balancer spreads request streams proportionally, so
    every machine carries ``load / machines``.  Without a knob ``table``
    the system is the baseline deployment: it must never be offered more
    than its peak (the paper provisions it for exactly that) and delivers
    zero QoS loss.  With a table, an oversubscribed machine's instances
    run at the knob speedup equal to the oversubscription ratio; QoS
    comes from the actuator's plan at that speedup.
    """
    if load < 0:
        raise ClusterError(f"load must be >= 0, got {load!r}")
    per_machine = load / spec.machines
    ratio = per_machine / spec.slots_per_machine
    pstate = XEON_E5530_PSTATES[0]
    utilization = min(1.0, ratio)
    total_power = spec.machines * spec.power_model.power(
        utilization, pstate, pstate.frequency_ghz
    )

    qos_loss = 0.0
    worst_performance = 1.0
    if ratio > 1.0 + 1e-12:
        if table is None:
            raise ClusterError(
                f"baseline system oversubscribed: load {load!r} on "
                f"{spec.peak_instances} full-speed slots"
            )
        plan = Actuator(table, policy=policy).plan(ratio)
        qos_loss = plan.expected_qos_loss()
        if plan.achieved_speedup < ratio - 1e-9:
            worst_performance = plan.achieved_speedup / ratio

    return SystemPoint(
        instances=load,
        power_watts=total_power,
        qos_loss=qos_loss,
        performance_factor=worst_performance,
        max_required_speedup=ratio,
    )


def simulate_instance(
    runtime_factory: Callable[[Machine], Any],
    jobs: Sequence[Any],
    oversubscription: float,
) -> RunResult:
    """Run a real controlled runtime on an oversubscribed machine.

    Args:
        runtime_factory: Builds a PowerDial runtime bound to the given
            machine (caller fixes target rate, table, policy).
        jobs: The instance's input stream.
        oversubscription: Instances per slot on its machine (>= 1);
            becomes the machine's ``load_factor``.
    """
    if oversubscription < 1.0:
        raise ClusterError(
            f"oversubscription must be >= 1, got {oversubscription!r}"
        )
    machine = Machine(load_factor=oversubscription)
    runtime = runtime_factory(machine)
    return runtime.run(jobs)
