"""Cluster substrate: machines, load balancing, workloads (Section 5.5)."""

from repro.cluster.queueing import (
    LatencyStats,
    QueueingError,
    QueueResult,
    RequestRecord,
    poisson_arrivals,
    simulate_queue,
)
from repro.cluster.replay import ReplayResult, replay_profile
from repro.cluster.system import (
    ClusterError,
    ClusterSpec,
    SystemPoint,
    evaluate_system,
    place_instances,
    simulate_instance,
)
from repro.cluster.workload import LoadProfile, spiky_profile, utilization_sweep

__all__ = [
    "ClusterSpec",
    "SystemPoint",
    "place_instances",
    "evaluate_system",
    "simulate_instance",
    "ClusterError",
    "LoadProfile",
    "spiky_profile",
    "utilization_sweep",
    "ReplayResult",
    "replay_profile",
    "RequestRecord",
    "LatencyStats",
    "QueueResult",
    "poisson_arrivals",
    "simulate_queue",
    "QueueingError",
]
