"""Single-server request queueing with dynamic-knob control (Section 3).

The paper's server scenario (swish++ "run as a server -- all queries
originate from a remote location") motivates PowerDial with latency:
power capping "may violate latency service level agreements".  This
module makes that argument executable: a discrete-event FIFO queue whose
service rate is the product of the platform's delivered capacity (which
a power cap reduces) and the application's knob speedup (which PowerDial
raises to compensate).  A heartbeat is one completed request; the
controller observes the completion rate each control period and commands
a speedup; the actuator-style mapping onto a calibrated knob table
charges the corresponding QoS loss.

Time here is continuous virtual seconds (not control steps), so capacity
profiles are ``float -> float`` functions of the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.actuator import ActuationPolicy, Actuator
from repro.core.knobs import KnobTable

__all__ = [
    "QueueingError",
    "RequestRecord",
    "LatencyStats",
    "QueueResult",
    "poisson_arrivals",
    "simulate_queue",
]


class QueueingError(ValueError):
    """Raised for invalid queueing-simulation inputs."""


@dataclass(frozen=True)
class RequestRecord:
    """One served request.

    Attributes:
        arrival: Arrival time (seconds).
        start: Service start (>= arrival; equals it when the queue was
            empty).
        finish: Completion time.
        speedup: Knob speedup in force while it was served.
        qos_loss: QoS loss of the setting that served it (0 = baseline).
    """

    arrival: float
    start: float
    finish: float
    speedup: float
    qos_loss: float

    @property
    def waiting(self) -> float:
        """Queueing delay before service began."""
        return self.start - self.arrival

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.finish - self.arrival


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary of one run.

    Attributes:
        mean: Mean response time.
        p50: Median response time.
        p95: 95th percentile.
        p99: 99th percentile.
        worst: Maximum response time.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    worst: float


@dataclass
class QueueResult:
    """Everything observed during one queueing run."""

    records: list[RequestRecord]

    def latency_stats(self) -> LatencyStats:
        """Summarize the response-time distribution."""
        if not self.records:
            raise QueueingError("no requests were served")
        latencies = np.array([r.latency for r in self.records])
        return LatencyStats(
            mean=float(latencies.mean()),
            p50=float(np.percentile(latencies, 50)),
            p95=float(np.percentile(latencies, 95)),
            p99=float(np.percentile(latencies, 99)),
            worst=float(latencies.max()),
        )

    def sla_violation_fraction(self, threshold: float) -> float:
        """Fraction of requests whose latency exceeded ``threshold``."""
        if threshold <= 0:
            raise QueueingError(f"SLA threshold must be positive, got {threshold!r}")
        if not self.records:
            raise QueueingError("no requests were served")
        violations = sum(1 for r in self.records if r.latency > threshold)
        return violations / len(self.records)

    def mean_qos_loss(self) -> float:
        """Mean QoS loss over served requests (the price of the SLA)."""
        if not self.records:
            raise QueueingError("no requests were served")
        return sum(r.qos_loss for r in self.records) / len(self.records)

    def throughput(self) -> float:
        """Completions per second over the span of the run."""
        if len(self.records) < 2:
            raise QueueingError("throughput needs at least two requests")
        span = self.records[-1].finish - self.records[0].arrival
        if span <= 0:  # pragma: no cover - spans are positive by FIFO order
            raise QueueingError("degenerate time span")
        return len(self.records) / span


def poisson_arrivals(
    rate: float, duration: float, seed: int = 0
) -> list[float]:
    """Poisson arrival times at ``rate`` per second over ``duration``.

    The open arrival process of a remote query stream (the swish++
    server setup); exponential inter-arrival gaps, seeded.
    """
    if rate <= 0:
        raise QueueingError(f"arrival rate must be positive, got {rate!r}")
    if duration <= 0:
        raise QueueingError(f"duration must be positive, got {duration!r}")
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / rate))
        if clock >= duration:
            return arrivals
        arrivals.append(clock)


def _speedup_to_loss(table: KnobTable | None) -> Callable[[float], tuple[float, float]]:
    """Map a commanded speedup to (realized speedup, QoS loss).

    Without a table the server has no knobs: realized speedup is 1 and
    loss 0.  With a table, the command goes through the paper's Eq. 9-11
    actuator under the minimal-speedup policy: over a control period the
    server blends the slowest sufficient setting with the baseline so
    the *average* speedup equals the command (avoiding the quantization
    limit cycle a round-up-to-a-setting policy induces), and the QoS
    charged is the plan's work-weighted expected loss.  Commands beyond
    ``s_max`` saturate at the fastest setting.
    """
    if table is None:
        return lambda commanded: (1.0, 0.0)
    actuator = Actuator(table, ActuationPolicy.MINIMAL_SPEEDUP)

    def lookup(commanded: float) -> tuple[float, float]:
        plan = actuator.plan(max(commanded, 1e-6))
        return plan.achieved_speedup, plan.expected_qos_loss()

    return lookup


def simulate_queue(
    arrivals: Sequence[float],
    base_service_time: float,
    capacity: Callable[[float], float],
    controller=None,
    table: KnobTable | None = None,
    control_period: float = 1.0,
) -> QueueResult:
    """Serve ``arrivals`` through a FIFO queue under knob control.

    The service time of a request starting at time ``t`` is
    ``base_service_time / (capacity(t) * speedup)`` where ``speedup``
    is the knob setting selected for the controller's latest command.
    Every ``control_period`` seconds the controller observes the heart
    rate over the period just ended and issues a new command.

    A beat is a completed request, and -- as in the paper, where the
    heart rate is the inverse of the time *between* beats while the
    application processes items -- the rate is normalized by the
    server's busy time in the period, not by wall time.  An open
    system's wall-clock completion rate saturates at the offered load
    and fluctuates with the arrival process; the busy-normalized rate
    measures the service capability itself (``capacity * speedup /
    base_service_time``), which is the plant the Eq. 2 model describes.
    Idle periods carry no performance signal and leave the command
    unchanged.

    Args:
        arrivals: Sorted arrival times (seconds).
        base_service_time: Service time at the baseline knobs on an
            uncapped platform.
        capacity: Delivered platform capacity as a function of the
            simulation clock (1.0 = uncapped; a power cap is e.g.
            ``lambda t: 1.6 / 2.4 if 100 <= t < 300 else 1.0``).
        controller: Optional SpeedupController (``update``/``reset``/
            ``speedup``).  Its target should be the baseline *service*
            rate, ``1 / base_service_time`` (the busy-normalized heart
            rate at default knobs on an uncapped platform).  Without a
            controller the server never adapts.
        table: Calibrated knob table mapping commands to realizable
            (speedup, QoS loss) pairs.  Without one, knob speedup is
            pinned to 1 (the "without dynamic knobs" series).
        control_period: Seconds between controller updates.
    """
    if base_service_time <= 0:
        raise QueueingError(
            f"service time must be positive, got {base_service_time!r}"
        )
    if control_period <= 0:
        raise QueueingError(
            f"control period must be positive, got {control_period!r}"
        )
    if any(b < a for a, b in zip(arrivals, list(arrivals)[1:])):
        raise QueueingError("arrival times must be sorted")
    if controller is not None:
        controller.reset()

    lookup = _speedup_to_loss(table)
    speedup, qos_loss = lookup(1.0 if controller is None else controller.speedup)
    records: list[RequestRecord] = []
    server_free = 0.0
    next_control = control_period
    scan_from = 0  # first record possibly overlapping the next window

    def window_signal(window_start: float, window_end: float) -> float | None:
        """Busy-normalized heart rate over a window, or None when idle."""
        nonlocal scan_from
        while (
            scan_from < len(records)
            and records[scan_from].finish <= window_start
        ):
            scan_from += 1
        beats = 0
        busy = 0.0
        for record in records[scan_from:]:
            if record.start >= window_end:
                break
            overlap = min(record.finish, window_end) - max(
                record.start, window_start
            )
            busy += max(0.0, overlap)
            if window_start < record.finish <= window_end:
                beats += 1
        if busy <= 1e-12 or beats == 0:
            return None
        return beats / busy

    for arrival in arrivals:
        start = max(arrival, server_free)
        # Controller updates due before this request starts take effect
        # now; each observes its own period's heart rate.
        while controller is not None and next_control <= start:
            rate = window_signal(next_control - control_period, next_control)
            if rate is not None:
                commanded = controller.update(rate)
                speedup, qos_loss = lookup(commanded)
            next_control += control_period
        level = capacity(start)
        if level <= 0:
            raise QueueingError(
                f"capacity must stay positive, got {level!r} at t={start!r}"
            )
        finish = start + base_service_time / (level * speedup)
        records.append(
            RequestRecord(
                arrival=arrival,
                start=start,
                finish=finish,
                speedup=speedup,
                qos_loss=qos_loss,
            )
        )
        server_free = finish
    return QueueResult(records=records)
