"""Heath-Jarrow-Morton Monte-Carlo swaption pricing (paper Section 4.1).

The PARSEC ``swaptions`` benchmark prices a portfolio of European payer
swaptions by Monte-Carlo simulation of the HJM forward-rate curve.  This
module implements a two-factor discrete HJM model:

* the forward curve ``F(t, T)`` lives on a tenor grid with spacing
  ``DELTA`` years;
* each step evolves the curve under the risk-neutral drift (the discrete
  no-arbitrage HJM drift ``sigma(T) * integral_0^T sigma(s) ds`` per
  factor) plus two Brownian shocks — a level factor and an exponentially
  damped slope factor;
* at the option maturity the payoff ``max(swap_value, 0)`` is discounted
  along the simulated money-market account.

Accuracy improves like ``1/sqrt(trials)`` while cost grows linearly — the
trade-off the ``-sm`` dynamic knob navigates.  Trials are generated from a
per-swaption seeded stream in row-major order, so pricing with ``n``
trials uses exactly the first ``n`` trials of the stream: knob settings
share common random numbers, as rerunning the binary with a different
``-sm`` value would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Swaption", "price_swaption", "simulation_work", "DELTA", "FACTORS"]

DELTA = 0.25
"""Tenor grid spacing in years."""

FACTORS = 2
"""Number of Brownian factors driving the forward curve."""

_DAMPING = 0.5
"""Mean-reversion-style damping of the slope factor's maturity profile."""


@dataclass(frozen=True)
class Swaption:
    """One European payer swaption.

    Attributes:
        identifier: Stable id; seeds the simulation stream.
        maturity_years: Option expiry (start of the underlying swap).
        tenor_years: Length of the underlying swap after expiry.
        strike: Fixed rate of the underlying swap.
        initial_rate: Flat initial forward-rate level.
        curve_slope: Linear slope of the initial forward curve per year.
        volatility: Level-factor volatility of forward rates.
    """

    identifier: int
    maturity_years: float = 1.0
    tenor_years: float = 2.0
    strike: float = 0.04
    initial_rate: float = 0.04
    curve_slope: float = 0.002
    volatility: float = 0.012

    def __post_init__(self) -> None:
        if self.maturity_years <= 0 or self.tenor_years <= 0:
            raise ValueError("maturity and tenor must be positive")
        if self.volatility < 0:
            raise ValueError("volatility must be non-negative")

    @property
    def maturity_steps(self) -> int:
        """Simulation steps to option expiry."""
        return max(1, round(self.maturity_years / DELTA))

    @property
    def tenor_steps(self) -> int:
        """Fixed-leg payment count of the underlying swap."""
        return max(1, round(self.tenor_years / DELTA))

    @property
    def grid_points(self) -> int:
        """Forward-curve grid length needed for this contract."""
        return self.maturity_steps + self.tenor_steps + 1


def _volatility_profile(swaption: Swaption, grid: int) -> np.ndarray:
    """Per-factor volatility as a function of time-to-maturity, (FACTORS, grid)."""
    maturities = np.arange(grid) * DELTA
    level = np.full(grid, swaption.volatility)
    slope = 0.6 * swaption.volatility * np.exp(-_DAMPING * maturities)
    return np.stack([level, slope])


def _hjm_drift(vol: np.ndarray) -> np.ndarray:
    """Discrete no-arbitrage drift, summed over factors, shape (grid,).

    For each factor ``mu(T) = sigma(T) * sum_{s<=T} sigma(s) * DELTA``.
    """
    cumulative = np.cumsum(vol, axis=1) * DELTA
    return np.sum(vol * cumulative, axis=0)


def price_swaption(
    swaption: Swaption, trials: int, seed_offset: int = 0
) -> tuple[float, float]:
    """Monte-Carlo price of ``swaption`` using ``trials`` paths.

    Args:
        swaption: The contract to price.
        trials: Number of Monte-Carlo paths (the ``-sm`` knob value).
        seed_offset: Extra seed entropy (distinct experiment repetitions).

    Returns:
        ``(price, standard_error)`` of the discounted payoff estimate.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    grid = swaption.grid_points
    steps = swaption.maturity_steps
    vol = _volatility_profile(swaption, grid)
    drift = _hjm_drift(vol)
    sqrt_dt = np.sqrt(DELTA)

    rng = np.random.default_rng(1_000_003 * swaption.identifier + seed_offset)
    # Row-major generation: trial i consumes draws [i*steps*FACTORS, ...),
    # independent of the total trial count (common random numbers).
    shocks = rng.standard_normal((trials, steps, FACTORS))

    # Forward curve per trial, shape (trials, grid).
    curve = np.empty((trials, grid))
    curve[:] = swaption.initial_rate + swaption.curve_slope * np.arange(grid) * DELTA
    discount_log = np.zeros(trials)

    for step in range(steps):
        discount_log -= curve[:, 0] * DELTA
        shock = shocks[:, step, :] @ vol  # (trials, grid)
        evolved = curve + drift * DELTA + shock * sqrt_dt
        # Musiela shift: tomorrow's curve point k is today's k+1 evolved.
        curve[:, :-1] = evolved[:, 1:]
        curve[:, -1] = evolved[:, -1]

    # Swap value at expiry: fixed leg vs par, from the expiry-time curve.
    tenor = swaption.tenor_steps
    forwards = curve[:, :tenor]
    discounts = np.exp(-np.cumsum(forwards * DELTA, axis=1))
    annuity = DELTA * np.sum(discounts, axis=1)
    floating_leg = 1.0 - discounts[:, -1]
    swap_value = floating_leg - swaption.strike * annuity
    payoff = np.maximum(swap_value, 0.0) * np.exp(discount_log)

    price = float(np.mean(payoff))
    if trials > 1:
        stderr = float(np.std(payoff, ddof=1) / np.sqrt(trials))
    else:
        stderr = float("inf")
    return price, stderr


def simulation_work(swaption: Swaption, trials: int) -> float:
    """Abstract work units for pricing with ``trials`` paths.

    Work is dominated by the per-step curve updates: ``trials * steps *
    grid`` elementwise operations, times a constant reflecting the
    arithmetic per element (drift, two factor shocks, discounting).
    """
    per_element_ops = 8.0
    return float(trials) * swaption.maturity_steps * swaption.grid_points * per_element_ops
