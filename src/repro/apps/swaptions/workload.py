"""Swaption workload generation (paper Section 4.1 and Table 1).

The PARSEC native input repeats one swaption; the paper augments it with
randomly generated swaption parameters so the application prices a range
of contracts.  We generate the same kind of randomized portfolios: mixed
maturities, tenors, strikes around the money, and volatilities, from a
seeded generator (training and production sets use disjoint seeds).
"""

from __future__ import annotations

import numpy as np

from repro.apps.swaptions.hjm import Swaption

__all__ = ["generate_swaptions", "training_portfolios", "production_portfolios"]


def generate_swaptions(
    count: int, seed: int, uniform_contract: bool = False
) -> list[Swaption]:
    """Generate ``count`` randomized swaptions from ``seed``.

    Args:
        count: Portfolio size.
        seed: Generator seed.
        uniform_contract: Fix maturity and tenor across the portfolio
            (strikes, rates, and volatilities still vary).  The PARSEC
            native input repeats one contract, so per-item work is
            uniform; the dynamic-control experiments use this mode while
            calibration uses fully randomized contracts.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = np.random.default_rng(seed)
    swaptions = []
    for index in range(count):
        if uniform_contract:
            maturity, tenor = 1.0, 2.0
        else:
            maturity = float(rng.choice([0.5, 1.0, 1.5, 2.0]))
            tenor = float(rng.choice([1.0, 2.0, 3.0]))
        rate = float(rng.uniform(0.02, 0.06))
        swaptions.append(
            Swaption(
                identifier=seed * 100_000 + index,
                maturity_years=maturity,
                tenor_years=tenor,
                strike=float(rate * rng.uniform(0.9, 1.1)),
                initial_rate=rate,
                curve_slope=float(rng.uniform(0.0, 0.004)),
                volatility=float(rng.uniform(0.008, 0.02)),
            )
        )
    return swaptions


def training_portfolios(
    jobs: int = 4, swaptions_per_job: int = 16, seed: int = 11
) -> list[list[Swaption]]:
    """Training inputs (paper: 64 swaptions; default scaled to 4 x 16)."""
    return [
        generate_swaptions(swaptions_per_job, seed=seed + job)
        for job in range(jobs)
    ]


def production_portfolios(
    jobs: int = 8, swaptions_per_job: int = 16, seed: int = 211
) -> list[list[Swaption]]:
    """Production inputs, disjoint from training (paper: 512 swaptions)."""
    return [
        generate_swaptions(swaptions_per_job, seed=seed + job)
        for job in range(jobs)
    ]
