"""The swaptions application (paper Section 4.1).

Knob: the single command-line parameter ``sm`` — the number of Monte-Carlo
simulations per swaption.  The paper sweeps 10,000 to 1,000,000 in
increments of 10,000 with 1,000,000 as the default; we keep the same
structure (100 settings, default = the most accurate) at 1/50 scale: 200
to 20,000 in increments of 200.  QoS is the distortion of the computed
swaption prices with equal weights.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.apps.swaptions.hjm import Swaption, price_swaption, simulation_work
from repro.core.knobs import Parameter
from repro.core.qos import DistortionMetric, QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["SwaptionsApp", "TRIAL_VALUES", "DEFAULT_TRIALS"]

DEFAULT_TRIALS = 20_000
TRIAL_VALUES = tuple(range(200, DEFAULT_TRIALS + 1, 200))


class SwaptionsApp(Application):
    """Prices a portfolio of swaptions; one heartbeat per swaption."""

    name = "swaptions"

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (Parameter("sm", TRIAL_VALUES, default=DEFAULT_TRIALS),)

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        # The -sm argument becomes the num_trials control variable.
        space.write("num_trials", config["sm"] + 0)

    def prepare(self, job: Sequence[Swaption]) -> Sequence[Swaption]:
        return list(job)

    def process_item(
        self, item: Swaption, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        trials = int(space.read("num_trials"))
        price, _ = price_swaption(item, trials)
        work = simulation_work(item, trials)
        tracker.add("main/simulate", work)
        return ItemResult(output=price, work=work)

    def qos_metric(self) -> QoSMetric:
        """Distortion of the swaption prices, weighted equally."""
        return DistortionMetric(
            lambda outputs: np.asarray(outputs, dtype=float), name="price-distortion"
        )

    def threads(self) -> int:
        return 8
