"""swaptions — HJM Monte-Carlo swaption portfolio pricing (Section 4.1)."""

from repro.apps.swaptions.app import DEFAULT_TRIALS, TRIAL_VALUES, SwaptionsApp
from repro.apps.swaptions.hjm import (
    DELTA,
    FACTORS,
    Swaption,
    price_swaption,
    simulation_work,
)
from repro.apps.swaptions.workload import (
    generate_swaptions,
    production_portfolios,
    training_portfolios,
)

__all__ = [
    "SwaptionsApp",
    "TRIAL_VALUES",
    "DEFAULT_TRIALS",
    "Swaption",
    "price_swaption",
    "simulation_work",
    "DELTA",
    "FACTORS",
    "generate_swaptions",
    "training_portfolios",
    "production_portfolios",
]
