"""Synthetic document corpus (paper Section 4.4 and Table 1).

The paper indexes 2000 public-domain Project Gutenberg books.  Offline, we
generate the statistical equivalent: documents whose tokens are sampled
from a Zipf-distributed vocabulary (natural-language word frequencies are
famously Zipfian), with per-document topic bias so that documents differ
in which mid-frequency words they favor — giving queries realistically
varied result-set sizes.  The most frequent words double as the stop-word
list, as in swish++'s default configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Document", "Corpus", "generate_corpus"]


@dataclass(frozen=True)
class Document:
    """One indexed document.

    Attributes:
        doc_id: Stable integer id.
        tokens: The document's token sequence (vocabulary indices).
    """

    doc_id: int
    tokens: np.ndarray

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class Corpus:
    """A generated corpus plus its vocabulary statistics.

    Attributes:
        documents: All documents.
        vocabulary_size: Number of distinct words in the vocabulary.
        stop_words: Indices of the most frequent words (excluded from
            queries, per Middleton & Baeza-Yates).
    """

    documents: tuple[Document, ...]
    vocabulary_size: int
    stop_words: frozenset[int]

    def __len__(self) -> int:
        return len(self.documents)


def _zipf_weights(vocabulary_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def generate_corpus(
    documents: int = 400,
    tokens_per_document: int = 600,
    vocabulary_size: int = 8000,
    zipf_exponent: float = 1.1,
    stop_word_count: int = 50,
    seed: int = 42,
) -> Corpus:
    """Generate a Zipf-vocabulary corpus.

    Args:
        documents: Number of documents ("books").
        tokens_per_document: Mean document length (lengths vary ±30%%).
        vocabulary_size: Distinct words available.
        zipf_exponent: Zipf law exponent (English text is near 1.0–1.2).
        stop_word_count: The top-k most frequent words become stop words.
        seed: Generator seed.
    """
    if documents < 1 or tokens_per_document < 1:
        raise ValueError("corpus needs at least one document and one token")
    if stop_word_count >= vocabulary_size:
        raise ValueError("stop words would consume the whole vocabulary")
    rng = np.random.default_rng(seed)
    base_weights = _zipf_weights(vocabulary_size, zipf_exponent)
    docs = []
    for doc_id in range(documents):
        length = int(tokens_per_document * rng.uniform(0.7, 1.3))
        # Topic bias: boost a random slice of the mid-frequency band so
        # different documents favor different content words.
        weights = base_weights.copy()
        topic_start = rng.integers(stop_word_count, vocabulary_size // 2)
        topic_width = int(vocabulary_size * 0.02) + 1
        weights[topic_start : topic_start + topic_width] *= 8.0
        weights /= weights.sum()
        tokens = rng.choice(vocabulary_size, size=length, p=weights)
        docs.append(Document(doc_id=doc_id, tokens=tokens))
    return Corpus(
        documents=tuple(docs),
        vocabulary_size=vocabulary_size,
        stop_words=frozenset(range(stop_word_count)),
    )
