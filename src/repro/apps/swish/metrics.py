"""Information-retrieval QoS metrics (paper Section 4.4).

The paper uses F-measure — the harmonic mean of precision and recall — at
cutoff values ``P@N``.  Relevance is defined against the baseline engine
configuration (``max-results = 100``): truncating the result list cannot
add relevant documents, only drop them, so precision of the returned
prefix stays perfect while recall falls — exactly the paper's observation
that "the majority of the QoS loss for swish++ is due to a reduction in
recall".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["precision_recall_f", "f_measure_at", "mean_f_measure_loss"]


@dataclass(frozen=True)
class PRF:
    """Precision, recall, and their harmonic mean."""

    precision: float
    recall: float
    f_measure: float


def precision_recall_f(
    returned: Sequence[int], relevant: Sequence[int]
) -> PRF:
    """Classic set-based precision/recall/F against a relevance set."""
    returned_set = set(returned)
    relevant_set = set(relevant)
    if not returned_set and not relevant_set:
        return PRF(1.0, 1.0, 1.0)
    hits = len(returned_set & relevant_set)
    precision = hits / len(returned_set) if returned_set else 0.0
    recall = hits / len(relevant_set) if relevant_set else 1.0
    if precision + recall == 0.0:
        return PRF(precision, recall, 0.0)
    f = 2.0 * precision * recall / (precision + recall)
    return PRF(precision, recall, f)


def f_measure_at(
    observed_ranking: Sequence[int],
    baseline_ranking: Sequence[int],
    cutoff: int,
) -> PRF:
    """F-measure at cutoff ``N`` (the paper's ``P@N`` evaluation).

    The relevance set is the baseline configuration's top-``N``; the
    observed system is judged on its own top-``N`` prefix.
    """
    if cutoff < 1:
        raise ValueError(f"cutoff must be >= 1, got {cutoff!r}")
    relevant = list(baseline_ranking)[:cutoff]
    returned = list(observed_ranking)[:cutoff]
    return precision_recall_f(returned, relevant)


def mean_f_measure_loss(
    observed_rankings: Sequence[Sequence[int]],
    baseline_rankings: Sequence[Sequence[int]],
    cutoff: int,
) -> float:
    """Mean ``1 - F@N`` over a query batch (0 = baseline quality)."""
    if len(observed_rankings) != len(baseline_rankings):
        raise ValueError(
            f"ranking batch sizes differ: {len(observed_rankings)} vs "
            f"{len(baseline_rankings)}"
        )
    if not observed_rankings:
        raise ValueError("need at least one query")
    total = 0.0
    for observed, baseline in zip(observed_rankings, baseline_rankings):
        total += 1.0 - f_measure_at(observed, baseline, cutoff).f_measure
    return total / len(observed_rankings)
