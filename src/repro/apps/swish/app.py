"""The swish++ application (paper Section 4.4).

Configured as a server: each main-loop item is one incoming query, and
the returned rank list is the output.  Knob: the ``max-results`` (``-m``)
command-line parameter with the paper's exact values {5, 10, 25, 50, 75,
100}, default 100.  QoS is F-measure at a cutoff (P@10 by default; the
experiment harness also evaluates P@100, as in Figures 5d and 8d).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.apps.swish.corpus import Corpus, generate_corpus
from repro.apps.swish.index import InvertedIndex
from repro.apps.swish.metrics import mean_f_measure_loss
from repro.apps.swish.queries import Query
from repro.core.knobs import Parameter
from repro.core.qos import QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["SwishApp", "MAX_RESULTS_VALUES", "DEFAULT_MAX_RESULTS"]

MAX_RESULTS_VALUES = (5, 10, 25, 50, 75, 100)
DEFAULT_MAX_RESULTS = 100

_INDEX_CACHE: dict[int, InvertedIndex] = {}


def shared_index(seed: int = 42, **corpus_kwargs: Any) -> InvertedIndex:
    """A process-wide index per corpus seed (indexing is expensive and the
    server indexes once, at startup, for its whole lifetime)."""
    key = hash((seed, tuple(sorted(corpus_kwargs.items()))))
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = InvertedIndex(generate_corpus(seed=seed, **corpus_kwargs))
    return _INDEX_CACHE[key]


class SwishApp(Application):
    """Serves ranked search queries; one heartbeat per query.

    Args:
        index: The inverted index to serve from (default: the shared
            2000-document corpus of the experiments, built on first use).
        qos_cutoff: The ``N`` of the P@N QoS metric (default 10).
    """

    name = "swish++"

    def __init__(
        self, index: InvertedIndex | None = None, qos_cutoff: int = 10
    ) -> None:
        self._index = index
        self.qos_cutoff = qos_cutoff

    @property
    def index(self) -> InvertedIndex:
        """The engine's index (built lazily for the default corpus)."""
        if self._index is None:
            self._index = shared_index()
        return self._index

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (
            Parameter("max_results", MAX_RESULTS_VALUES, default=DEFAULT_MAX_RESULTS),
        )

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        # The -m / --max-results option becomes the control variable.
        space.write("max_results", config["max_results"] + 0)

    def prepare(self, job: Sequence[Query]) -> Sequence[Query]:
        return list(job)

    def process_item(
        self, item: Query, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        max_results = int(space.read("max_results"))
        results, work = self.index.search(list(item), max_results)
        tracker.add("main/query", work)
        ranking = tuple(result.doc_id for result in results)
        return ItemResult(output=ranking, work=work)

    def qos_metric(self) -> QoSMetric:
        """QoS loss = mean (1 - F@cutoff) against the baseline rankings."""
        cutoff = self.qos_cutoff

        def loss(baseline_outputs: object, observed_outputs: object) -> float:
            return mean_f_measure_loss(
                observed_outputs, baseline_outputs, cutoff  # type: ignore[arg-type]
            )

        return QoSMetric(name=f"f-measure@{cutoff}", loss=loss)

    def threads(self) -> int:
        return 8
