"""Query generation (paper Section 4.4).

"We construct a dictionary of all words present in the documents,
excluding stop words, and select words at random following a power law
distribution" — the Middleton & Baeza-Yates methodology.  Queries have
one to three terms, biased toward shorter queries as in real logs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.swish.corpus import Corpus

__all__ = ["Query", "generate_queries"]

Query = tuple[int, ...]


def generate_queries(
    corpus: Corpus,
    count: int,
    seed: int,
    power_law_exponent: float = 1.0,
    max_terms: int = 3,
) -> list[Query]:
    """Generate ``count`` queries over ``corpus``'s indexed vocabulary."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    rng = np.random.default_rng(seed)
    # Dictionary of words actually present, excluding stop words.
    present: set[int] = set()
    for document in corpus.documents:
        present.update(np.unique(document.tokens).tolist())
    candidates = np.array(
        sorted(word for word in present if word not in corpus.stop_words)
    )
    if candidates.size == 0:
        raise ValueError("corpus has no non-stop-word vocabulary")
    ranks = np.arange(1, candidates.size + 1, dtype=float)
    weights = ranks**-power_law_exponent
    weights /= weights.sum()
    lengths = rng.choice(
        np.arange(1, max_terms + 1), size=count, p=_length_distribution(max_terms)
    )
    queries: list[Query] = []
    for length in lengths:
        terms = rng.choice(candidates, size=int(length), replace=False, p=weights)
        queries.append(tuple(int(t) for t in terms))
    return queries


def _length_distribution(max_terms: int) -> np.ndarray:
    """Short queries dominate: geometric-ish length distribution."""
    weights = np.array([2.0**-k for k in range(max_terms)])
    return weights / weights.sum()
