"""Inverted index with tf-idf ranking (the swish++ engine core).

swish++ builds an on-disk inverted index over files and ranks matching
documents.  We implement the in-memory equivalent: postings lists of
``(doc_id, term_frequency)`` per word, document lengths, idf statistics,
and a top-k ranked query evaluator whose *work accounting* mirrors where
a search engine spends time: scoring postings and — crucially for the
``max-results`` knob — retrieving/formatting each returned result (file
metadata, rank, snippet), which is why returning fewer results makes
swish++ measurably faster (paper: ~1.5x at 5 results vs 100).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.apps.swish.corpus import Corpus

__all__ = [
    "SearchResult",
    "InvertedIndex",
    "POSTING_WORK",
    "RESULT_RETRIEVAL_WORK",
    "QUERY_OVERHEAD_WORK",
]

POSTING_WORK = 40.0
"""Work units to score one posting (decode, tf-idf accumulate)."""

RESULT_RETRIEVAL_WORK = 3_200.0
"""Work units to retrieve one returned result (swish++ fetches file
metadata and formats the result line for every hit it returns).  Sized so
the max-results knob spans the paper's ~1.5x speedup at 5 results."""

QUERY_OVERHEAD_WORK = 450_000.0
"""Knob-independent per-query work: request parsing, index open/seek, and
the response envelope.  Sized so the fastest knob setting (5 results vs
100) yields the paper's ~1.5x speedup rather than an unrealistically
retrieval-dominated profile."""


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit.

    Attributes:
        doc_id: The matching document.
        score: tf-idf relevance score (higher is better).
    """

    doc_id: int
    score: float


@dataclass
class InvertedIndex:
    """In-memory inverted index over a :class:`Corpus`."""

    corpus: Corpus
    _postings: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    _doc_lengths: dict[int, int] = field(default_factory=dict)
    _idf: dict[int, float] = field(default_factory=dict)
    build_work: float = 0.0

    def __post_init__(self) -> None:
        self._build()

    def _build(self) -> None:
        """Index every document (one pass, counted as build work)."""
        doc_count = len(self.corpus)
        for document in self.corpus.documents:
            terms, counts = np.unique(document.tokens, return_counts=True)
            self._doc_lengths[document.doc_id] = len(document.tokens)
            for term, count in zip(terms.tolist(), counts.tolist()):
                self._postings.setdefault(term, []).append(
                    (document.doc_id, count)
                )
            self.build_work += len(document.tokens) * 2.0
        for term, postings in self._postings.items():
            self._idf[term] = float(np.log(1.0 + doc_count / len(postings)))

    # ------------------------------------------------------------------
    def postings(self, term: int) -> list[tuple[int, int]]:
        """The postings list of ``term`` (empty when unindexed)."""
        return list(self._postings.get(term, ()))

    def document_frequency(self, term: int) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def matching_documents(self, terms: list[int]) -> set[int]:
        """All documents containing at least one query term (OR semantics,
        swish++'s default)."""
        matches: set[int] = set()
        for term in terms:
            matches.update(doc for doc, _ in self._postings.get(term, ()))
        return matches

    def search(
        self, terms: list[int], max_results: int
    ) -> tuple[list[SearchResult], float]:
        """Rank documents for a query and return the top ``max_results``.

        Returns:
            ``(results, work)`` — ranked hits (best first, ties broken by
            doc id for determinism) and the abstract work spent: scoring
            every posting of every query term, top-k selection, and
            retrieval of each returned result.
        """
        if max_results < 1:
            raise ValueError(f"max_results must be >= 1, got {max_results!r}")
        scores: dict[int, float] = {}
        work = QUERY_OVERHEAD_WORK
        for term in terms:
            postings = self._postings.get(term, ())
            idf = self._idf.get(term, 0.0)
            for doc_id, tf in postings:
                weight = (1.0 + np.log(tf)) * idf / np.sqrt(
                    self._doc_lengths[doc_id]
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + float(weight)
            work += len(postings) * POSTING_WORK

        top = heapq.nsmallest(
            max_results, scores.items(), key=lambda kv: (-kv[1], kv[0])
        )
        work += len(scores) * 2.0  # heap maintenance over candidates
        results = [SearchResult(doc_id=d, score=s) for d, s in top]
        work += len(results) * RESULT_RETRIEVAL_WORK
        return results, work
