"""swish++ — inverted-index search engine (Section 4.4)."""

from repro.apps.swish.app import (
    DEFAULT_MAX_RESULTS,
    MAX_RESULTS_VALUES,
    SwishApp,
    shared_index,
)
from repro.apps.swish.corpus import Corpus, Document, generate_corpus
from repro.apps.swish.index import (
    POSTING_WORK,
    RESULT_RETRIEVAL_WORK,
    InvertedIndex,
    SearchResult,
)
from repro.apps.swish.metrics import (
    f_measure_at,
    mean_f_measure_loss,
    precision_recall_f,
)
from repro.apps.swish.queries import Query, generate_queries

__all__ = [
    "SwishApp",
    "shared_index",
    "MAX_RESULTS_VALUES",
    "DEFAULT_MAX_RESULTS",
    "Corpus",
    "Document",
    "generate_corpus",
    "InvertedIndex",
    "SearchResult",
    "POSTING_WORK",
    "RESULT_RETRIEVAL_WORK",
    "precision_recall_f",
    "f_measure_at",
    "mean_f_measure_loss",
    "Query",
    "generate_queries",
]
