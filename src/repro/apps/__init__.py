"""Benchmark applications (paper Section 4).

Python reimplementations of the paper's four benchmarks, each a real
algorithm with the same knob structure and QoS metric:

* :mod:`repro.apps.swaptions` — HJM Monte-Carlo swaption portfolio pricing.
* :mod:`repro.apps.x264` — block-based H.264-style video encoding.
* :mod:`repro.apps.bodytrack` — annealed-particle-filter body tracking.
* :mod:`repro.apps.swish` — the swish++ search engine.
"""

from repro.apps.base import Application, ApplicationError, ItemResult, WorkTracker, run_job

__all__ = [
    "Application",
    "ApplicationError",
    "ItemResult",
    "WorkTracker",
    "run_job",
]
