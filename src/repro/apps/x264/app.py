"""The x264 application (paper Section 4.2).

Knobs (the paper's exact three): ``subme`` (sub-pixel motion estimation
effort, 1–7, default 7), ``merange`` (motion search range, default 16 in
the paper — scaled to {1, 2, 4, 8} here with default 8), and ``ref``
(reference frames searched, 1–5 in the paper — scaled to {1, 2, 3} with
default 3).  Higher values always mean better encodes and longer encode
times.  QoS is the distortion of [PSNR, bitrate] with equal weights —
"the two most important attributes of encoded video: image quality and
compression."
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.apps.x264.encoder import Encoder
from repro.apps.x264.frames import Video
from repro.core.knobs import Parameter
from repro.core.qos import DistortionMetric, QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["X264App", "SUBME_VALUES", "MERANGE_VALUES", "REF_VALUES"]

SUBME_VALUES = (1, 2, 3, 4, 5, 6, 7)
MERANGE_VALUES = (1, 2, 4, 8)
REF_VALUES = (1, 2, 3)
DEFAULT_SUBME = 7
DEFAULT_MERANGE = 8
DEFAULT_REF = 3


class X264App(Application):
    """Encodes a video; one heartbeat per frame, as x264 emits them."""

    name = "x264"

    def __init__(self, qstep: float = 6.0) -> None:
        self._encoder = Encoder(qstep=qstep, max_references=max(REF_VALUES))

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (
            Parameter("subme", SUBME_VALUES, default=DEFAULT_SUBME),
            Parameter("merange", MERANGE_VALUES, default=DEFAULT_MERANGE),
            Parameter("ref", REF_VALUES, default=DEFAULT_REF),
        )

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        # The x264 parameter-struct fields the knobs map onto.
        space.write("subme_level", config["subme"] + 0)
        space.write("me_range", config["merange"] + 0)
        space.write("ref_frames", config["ref"] + 0)

    def prepare(self, job: Video) -> Sequence[np.ndarray]:
        self._encoder.reset()
        return [job.frames[t] for t in range(job.frame_count)]

    def process_item(
        self, item: np.ndarray, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        subme = int(space.read("subme_level"))
        merange = int(space.read("me_range"))
        ref = int(space.read("ref_frames"))
        stats = self._encoder.encode_frame(item, subme=subme, merange=merange, ref=ref)
        tracker.add("main/encode", stats.work)
        return ItemResult(output=(stats.psnr_db, stats.bits), work=stats.work)

    def qos_metric(self) -> QoSMetric:
        """Distortion of [mean PSNR, total bitrate], equal weights."""

        def abstraction(outputs: Sequence[tuple[float, int]]) -> np.ndarray:
            psnrs = np.array([out[0] for out in outputs], dtype=float)
            bits = np.array([out[1] for out in outputs], dtype=float)
            return np.array([float(np.mean(psnrs)), float(np.sum(bits))])

        return DistortionMetric(abstraction, name="psnr-bitrate-distortion")

    def reset(self) -> None:
        self._encoder.reset()

    def threads(self) -> int:
        return 8
