"""Synthetic video generation (paper Section 4.2 and Table 1).

The paper encodes 1080p sequences from PARSEC and xiph.org.  Offline we
synthesize sequences with the properties motion estimation cares about:
textured moving objects over a detailed background, global camera pan,
and sensor noise.  Resolution is scaled down (the encoder is pure
Python), but the encode pipeline — motion search, transform, quantization,
entropy size, reconstruction — is the real algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Video", "synthesize_video"]


@dataclass(frozen=True)
class Video:
    """A raw (uncompressed) grayscale video.

    Attributes:
        name: Identifier for reports.
        frames: ``(T, H, W)`` float32 luma in [0, 255].
    """

    name: str
    frames: np.ndarray

    @property
    def frame_count(self) -> int:
        """Number of frames."""
        return self.frames.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width) of each frame."""
        return self.frames.shape[1], self.frames.shape[2]


def _texture(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    """Band-limited texture: smoothed noise with visible structure."""
    noise = rng.normal(0.0, 1.0, size=(height, width))
    kernel = np.ones(5) / 5.0
    for axis in (0, 1):
        noise = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), axis, noise
        )
    noise -= noise.min()
    peak = noise.max()
    if peak > 0:
        noise /= peak
    return noise


def synthesize_video(
    name: str,
    frames: int = 16,
    height: int = 48,
    width: int = 48,
    objects: int = 2,
    noise_sigma: float = 1.5,
    seed: int = 0,
) -> Video:
    """Generate a moving-object sequence with camera pan and noise.

    Args:
        name: Video identifier.
        frames: Frame count.
        height: Frame height (multiple of 8 recommended).
        width: Frame width (multiple of 8 recommended).
        objects: Number of independently moving textured rectangles.
        noise_sigma: Per-pixel Gaussian sensor noise.
        seed: Generator seed.
    """
    if frames < 2:
        raise ValueError(f"video needs >= 2 frames, got {frames!r}")
    rng = np.random.default_rng(seed)
    margin = 16
    canvas_h, canvas_w = height + 2 * margin, width + 2 * margin
    background = 60.0 + 120.0 * _texture(rng, canvas_h, canvas_w)
    gradient = np.linspace(0.0, 40.0, canvas_w)[None, :]
    background = np.clip(background * 0.7 + gradient, 0.0, 255.0)

    object_specs = []
    for _ in range(objects):
        size = int(rng.integers(10, 18))
        object_specs.append(
            {
                "texture": 40.0 + 180.0 * _texture(rng, size, size),
                "position": np.array(
                    [
                        float(rng.integers(margin, margin + height - size)),
                        float(rng.integers(margin, margin + width - size)),
                    ]
                ),
                "velocity": rng.uniform(-2.5, 2.5, size=2),
                "size": size,
            }
        )

    pan_velocity = rng.uniform(-1.2, 1.2, size=2)
    sequence = np.empty((frames, height, width), dtype=np.float32)
    for t in range(frames):
        canvas = background.copy()
        for spec in object_specs:
            pos = spec["position"] + spec["velocity"] * t
            size = spec["size"]
            y = int(np.clip(round(pos[0]), 0, canvas_h - size))
            x = int(np.clip(round(pos[1]), 0, canvas_w - size))
            canvas[y : y + size, x : x + size] = spec["texture"]
        pan = pan_velocity * t
        top = int(np.clip(round(margin + pan[0]), 0, 2 * margin - 1))
        left = int(np.clip(round(margin + pan[1]), 0, 2 * margin - 1))
        window = canvas[top : top + height, left : left + width]
        noisy = window + rng.normal(0.0, noise_sigma, size=window.shape)
        sequence[t] = np.clip(noisy, 0.0, 255.0)
    return Video(name=name, frames=sequence)
