"""x264 — block-based H.264-style video encoding (Section 4.2)."""

from repro.apps.x264.app import (
    MERANGE_VALUES,
    REF_VALUES,
    SUBME_VALUES,
    X264App,
)
from repro.apps.x264.encoder import Encoder, FrameStats, psnr
from repro.apps.x264.frames import Video, synthesize_video
from repro.apps.x264.motion import (
    SUBME_PROFILES,
    MotionEstimate,
    SubmeProfile,
    estimate_motion,
)
from repro.apps.x264.transform import (
    BLOCK,
    ZIGZAG,
    block_bits,
    dequantize,
    encode_block,
    forward_transform,
    golomb_bits,
    inverse_transform,
    quantize,
)

__all__ = [
    "X264App",
    "SUBME_VALUES",
    "MERANGE_VALUES",
    "REF_VALUES",
    "Encoder",
    "FrameStats",
    "psnr",
    "Video",
    "synthesize_video",
    "estimate_motion",
    "MotionEstimate",
    "SubmeProfile",
    "SUBME_PROFILES",
    "BLOCK",
    "ZIGZAG",
    "forward_transform",
    "inverse_transform",
    "quantize",
    "dequantize",
    "golomb_bits",
    "block_bits",
    "encode_block",
]
