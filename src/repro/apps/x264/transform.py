"""Transform, quantization, and entropy-size model (H.264-style).

The residual path of the encoder: 8x8 orthonormal DCT, uniform
quantization with a dead zone, zigzag run-length scanning with
exponential-Golomb size accounting (the bit count an entropy coder of
the CAVLC family would produce, without materializing the bitstream),
and exact reconstruction (dequantize + inverse DCT) so the encoder's
reference frames contain true coding error.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

__all__ = [
    "BLOCK",
    "ZIGZAG",
    "forward_transform",
    "inverse_transform",
    "quantize",
    "dequantize",
    "golomb_bits",
    "block_bits",
    "encode_block",
]

BLOCK = 8
"""Transform block size."""


def _zigzag_order(n: int) -> np.ndarray:
    """Indices visiting an n x n block in zigzag (anti-diagonal) order."""
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 else ij[0]),
    )
    return np.array([i * n + j for i, j in order])


ZIGZAG = _zigzag_order(BLOCK)
"""Zigzag scan order for an 8x8 block."""


def forward_transform(block: np.ndarray) -> np.ndarray:
    """Orthonormal 2D DCT-II of one 8x8 block."""
    return dctn(block, norm="ortho")


def inverse_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_transform`."""
    return idctn(coefficients, norm="ortho")


def quantize(coefficients: np.ndarray, qstep: float) -> np.ndarray:
    """Uniform dead-zone quantizer: levels = round(coef / qstep)."""
    if qstep <= 0:
        raise ValueError(f"quantizer step must be positive, got {qstep!r}")
    return np.round(coefficients / qstep).astype(np.int32)


def dequantize(levels: np.ndarray, qstep: float) -> np.ndarray:
    """Reconstruction: coef = level * qstep."""
    return levels.astype(np.float64) * qstep


def golomb_bits(value: int) -> int:
    """Bits to code ``value`` with signed exponential-Golomb.

    Signed mapping: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, ... then the
    unsigned Exp-Golomb length ``2 * floor(log2(v + 1)) + 1``.
    """
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return 2 * int(np.floor(np.log2(mapped + 1))) + 1


def block_bits(levels: np.ndarray) -> int:
    """Entropy-size estimate of one quantized 8x8 block.

    Zigzag run-length coding: each nonzero level costs the Golomb length
    of the preceding zero-run plus the Golomb length of the level; a
    terminator closes the block.
    """
    scanned = levels.ravel()[ZIGZAG]
    bits = 0
    run = 0
    for level in scanned.tolist():
        if level == 0:
            run += 1
            continue
        bits += golomb_bits(run) + golomb_bits(int(level))
        run = 0
    bits += golomb_bits(0) + 1  # end-of-block marker
    return bits


def encode_block(
    residual: np.ndarray, qstep: float
) -> tuple[np.ndarray, int, float]:
    """Transform-code one residual block.

    Returns:
        ``(reconstructed_residual, bits, work)`` — the decoded residual
        the reference frame will contain, the entropy-size estimate, and
        the abstract work units of the transform/quantize/entropy stage.
    """
    coefficients = forward_transform(residual)
    levels = quantize(coefficients, qstep)
    bits = block_bits(levels)
    reconstructed = inverse_transform(dequantize(levels, qstep))
    # 2 transforms (~6 ops per point each) + quantizer + scan per point.
    work = residual.size * (2 * 6.0 + 2.0)
    return reconstructed, bits, work
