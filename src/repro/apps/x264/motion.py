"""Motion estimation (paper Section 4.2).

The three x264 dynamic knobs live here:

* ``merange`` — the integer full-search radius around the block position;
* ``ref`` — how many previous reconstructed frames are searched;
* ``subme`` — the sub-pixel refinement effort: higher levels run more
  half-pel and quarter-pel refinement iterations and (at 6+) switch the
  refinement cost metric from SAD to the more faithful (and costlier)
  Hadamard SATD.

Every candidate evaluation is counted as work (``block pixels`` units per
SAD, double for SATD), which is what makes the knobs performance knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.apps.x264.transform import BLOCK

__all__ = ["SubmeProfile", "SUBME_PROFILES", "MotionEstimate", "estimate_motion"]


@dataclass(frozen=True)
class SubmeProfile:
    """Refinement schedule implied by one subme level.

    Attributes:
        half_pel_iterations: Half-pel refinement rounds (8 candidates each).
        quarter_pel_iterations: Quarter-pel rounds after half-pel.
        use_satd: Use Hadamard SATD for sub-pel costs (2x work per
            candidate, better decisions).
    """

    half_pel_iterations: int
    quarter_pel_iterations: int
    use_satd: bool


SUBME_PROFILES: dict[int, SubmeProfile] = {
    1: SubmeProfile(0, 0, False),
    2: SubmeProfile(1, 0, False),
    3: SubmeProfile(2, 0, False),
    4: SubmeProfile(2, 1, False),
    5: SubmeProfile(2, 2, False),
    6: SubmeProfile(2, 2, True),
    7: SubmeProfile(3, 3, True),
}
"""x264's subme 1-7, mapped to concrete refinement schedules."""


@dataclass(frozen=True)
class MotionEstimate:
    """Result of motion search for one block.

    Attributes:
        mv_y: Vertical motion (pixels; quarter-pel resolution).
        mv_x: Horizontal motion.
        ref_index: Which reference frame won.
        cost: Matching cost of the winner (SAD or SATD units).
        work: Work units spent searching.
        prediction: The winning predicted block.
    """

    mv_y: float
    mv_x: float
    ref_index: int
    cost: float
    work: float
    prediction: np.ndarray


def _sad(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.sum(np.abs(a - b)))


_HADAMARD = np.array(
    [
        [1, 1, 1, 1, 1, 1, 1, 1],
        [1, -1, 1, -1, 1, -1, 1, -1],
        [1, 1, -1, -1, 1, 1, -1, -1],
        [1, -1, -1, 1, 1, -1, -1, 1],
        [1, 1, 1, 1, -1, -1, -1, -1],
        [1, -1, 1, -1, -1, 1, -1, 1],
        [1, 1, -1, -1, -1, -1, 1, 1],
        [1, -1, -1, 1, -1, 1, 1, -1],
    ],
    dtype=np.float64,
)


def _satd(a: np.ndarray, b: np.ndarray) -> float:
    difference = a - b
    transformed = _HADAMARD @ difference @ _HADAMARD.T
    return float(np.sum(np.abs(transformed)) / 8.0)


def _sample_patch(frame: np.ndarray, y: float, x: float, size: int) -> np.ndarray:
    """Bilinearly sample a ``size x size`` patch at fractional (y, x)."""
    height, width = frame.shape
    y = float(np.clip(y, 0.0, height - size))
    x = float(np.clip(x, 0.0, width - size))
    y0, x0 = int(np.floor(y)), int(np.floor(x))
    fy, fx = y - y0, x - x0
    y1 = min(y0 + 1, height - size)
    x1 = min(x0 + 1, width - size)
    p00 = frame[y0 : y0 + size, x0 : x0 + size]
    if fy == 0.0 and fx == 0.0:
        return p00
    p01 = frame[y0 : y0 + size, x1 : x1 + size]
    p10 = frame[y1 : y1 + size, x0 : x0 + size]
    p11 = frame[y1 : y1 + size, x1 : x1 + size]
    return (
        (1 - fy) * (1 - fx) * p00
        + (1 - fy) * fx * p01
        + fy * (1 - fx) * p10
        + fy * fx * p11
    )


def _integer_search(
    block: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    merange: int,
) -> tuple[int, int, float, float]:
    """Exhaustive integer-pel search; returns (mv_y, mv_x, sad, work)."""
    size = block.shape[0]
    height, width = reference.shape
    top = max(0, block_y - merange)
    left = max(0, block_x - merange)
    bottom = min(height, block_y + merange + size)
    right = min(width, block_x + merange + size)
    window = reference[top:bottom, left:right]
    candidates = sliding_window_view(window, (size, size))
    sads = np.sum(
        np.abs(candidates - block[None, None, :, :]), axis=(2, 3)
    )
    best_flat = int(np.argmin(sads))
    rows = sads.shape[1]
    best_y, best_x = divmod(best_flat, rows)
    mv_y = (top + best_y) - block_y
    mv_x = (left + best_x) - block_x
    work = float(sads.size * block.size)
    return mv_y, mv_x, float(sads[best_y, best_x]), work


def _refine(
    block: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    mv_y: float,
    mv_x: float,
    cost: float,
    step: float,
    iterations: int,
    use_satd: bool,
) -> tuple[float, float, float, float]:
    """Iterative 8-neighbour sub-pel refinement at the given step size."""
    metric = _satd if use_satd else _sad
    work = 0.0
    work_per_eval = block.size * (2.0 if use_satd else 1.0)
    if use_satd:
        # Re-evaluate the incumbent under the refinement metric.
        cost = metric(
            block, _sample_patch(reference, block_y + mv_y, block_x + mv_x, block.shape[0])
        )
        work += work_per_eval
    for _ in range(iterations):
        improved = False
        for dy in (-step, 0.0, step):
            for dx in (-step, 0.0, step):
                if dy == 0.0 and dx == 0.0:
                    continue
                candidate = _sample_patch(
                    reference,
                    block_y + mv_y + dy,
                    block_x + mv_x + dx,
                    block.shape[0],
                )
                candidate_cost = metric(block, candidate)
                work += work_per_eval
                if candidate_cost < cost:
                    cost = candidate_cost
                    mv_y += dy
                    mv_x += dx
                    improved = True
        if not improved:
            break
    return mv_y, mv_x, cost, work


def estimate_motion(
    block: np.ndarray,
    references: list[np.ndarray],
    block_y: int,
    block_x: int,
    merange: int,
    subme: int,
    ref_count: int,
) -> MotionEstimate:
    """Search ``ref_count`` references for the best prediction of ``block``.

    Args:
        block: The 8x8 source block.
        references: Reconstructed reference frames, most recent first.
        block_y: Block's top row in the frame.
        block_x: Block's left column.
        merange: Integer search radius (knob).
        subme: Sub-pixel effort level 1-7 (knob).
        ref_count: Maximum reference frames to search (knob).
    """
    if merange < 1:
        raise ValueError(f"merange must be >= 1, got {merange!r}")
    if subme not in SUBME_PROFILES:
        raise ValueError(f"subme must be in 1..7, got {subme!r}")
    if ref_count < 1:
        raise ValueError(f"ref must be >= 1, got {ref_count!r}")
    if not references:
        raise ValueError("motion estimation needs at least one reference frame")
    profile = SUBME_PROFILES[subme]
    best: MotionEstimate | None = None
    total_work = 0.0
    for ref_index, reference in enumerate(references[:ref_count]):
        mv_y, mv_x, cost, work = _integer_search(
            block, reference, block_y, block_x, merange
        )
        total_work += work
        if profile.half_pel_iterations:
            mv_y, mv_x, cost, extra = _refine(
                block, reference, block_y, block_x,
                float(mv_y), float(mv_x), cost,
                step=0.5,
                iterations=profile.half_pel_iterations,
                use_satd=profile.use_satd,
            )
            total_work += extra
        if profile.quarter_pel_iterations:
            mv_y, mv_x, cost, extra = _refine(
                block, reference, block_y, block_x,
                float(mv_y), float(mv_x), cost,
                step=0.25,
                iterations=profile.quarter_pel_iterations,
                use_satd=profile.use_satd,
            )
            total_work += extra
        if best is None or cost < best.cost:
            prediction = _sample_patch(
                reference, block_y + mv_y, block_x + mv_x, block.shape[0]
            )
            best = MotionEstimate(
                mv_y=float(mv_y),
                mv_x=float(mv_x),
                ref_index=ref_index,
                cost=cost,
                work=0.0,
                prediction=np.asarray(prediction, dtype=np.float64),
            )
    assert best is not None
    return MotionEstimate(
        mv_y=best.mv_y,
        mv_x=best.mv_x,
        ref_index=best.ref_index,
        cost=best.cost,
        work=total_work,
        prediction=best.prediction,
    )
