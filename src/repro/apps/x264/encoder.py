"""The block-based video encoder (paper Section 4.2).

A real (if compact) H.264-style encoder: intra frames use per-block DC
prediction; inter frames motion-compensate each 8x8 block from up to
``ref`` reconstructed reference frames found by the knob-controlled
motion search, transform-code the residual, count entropy bits, and
reconstruct the frame into the reference list so coding error propagates
exactly as in a closed-loop encoder.  PSNR is measured against the source
(the job of the paper's H.264 reference decoder) and bitrate is the total
entropy-size estimate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.apps.x264.motion import estimate_motion
from repro.apps.x264.transform import BLOCK, encode_block, golomb_bits

__all__ = ["FrameStats", "Encoder", "psnr"]

_HEADER_BITS_PER_BLOCK = 6
_FRAME_OVERHEAD_WORK = 20_000.0
"""Per-frame knob-independent work: bitstream headers, deblocking,
rate-control bookkeeping, frame I/O."""

_BLOCK_PIPELINE_WORK = 14_000.0
"""Per-block knob-independent work: prediction assembly, entropy coding,
reconstruction, and deblocking.  Together with the frame overhead this
keeps the maximum ME-knob speedup near the paper's ~4.5x (Figure 5b)
rather than an ME-only ratio."""


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = 255)."""
    mse = float(np.mean((original.astype(np.float64) - reconstructed) ** 2))
    if mse == 0.0:
        return 100.0
    return 10.0 * np.log10(255.0**2 / mse)


@dataclass(frozen=True)
class FrameStats:
    """Per-frame encode result.

    Attributes:
        psnr_db: Reconstruction quality versus the source frame.
        bits: Entropy-size estimate of the coded frame.
        work: Abstract work units spent encoding.
        frame_type: ``"I"`` or ``"P"``.
    """

    psnr_db: float
    bits: int
    work: float
    frame_type: str


class Encoder:
    """Closed-loop encoder holding the reconstructed reference list.

    Args:
        qstep: Quantizer step (fixed; rate/quality knobs are the ME
            parameters, as in the paper).
        max_references: Capacity of the reference list (the ``ref`` knob
            selects how many of these each search may use).
    """

    def __init__(self, qstep: float = 6.0, max_references: int = 5) -> None:
        if qstep <= 0:
            raise ValueError(f"qstep must be positive, got {qstep!r}")
        self.qstep = qstep
        self._references: deque[np.ndarray] = deque(maxlen=max_references)

    @property
    def reference_count(self) -> int:
        """Reconstructed frames currently available for prediction."""
        return len(self._references)

    def reset(self) -> None:
        """Drop all reference frames (start of a new sequence)."""
        self._references.clear()

    # ------------------------------------------------------------------
    def encode_frame(
        self, frame: np.ndarray, subme: int, merange: int, ref: int
    ) -> FrameStats:
        """Encode one frame with the given knob values."""
        frame = np.asarray(frame, dtype=np.float64)
        height, width = frame.shape
        if height % BLOCK or width % BLOCK:
            raise ValueError(
                f"frame dimensions must be multiples of {BLOCK}, got {frame.shape}"
            )
        intra = not self._references
        reconstructed = np.empty_like(frame)
        total_bits = 0
        total_work = _FRAME_OVERHEAD_WORK
        references = list(self._references)

        for block_y in range(0, height, BLOCK):
            for block_x in range(0, width, BLOCK):
                block = frame[block_y : block_y + BLOCK, block_x : block_x + BLOCK]
                if intra:
                    prediction = np.full_like(block, float(np.mean(block)))
                    mv_bits = golomb_bits(0) * 2
                else:
                    estimate = estimate_motion(
                        block,
                        references,
                        block_y,
                        block_x,
                        merange=merange,
                        subme=subme,
                        ref_count=ref,
                    )
                    prediction = estimate.prediction
                    total_work += estimate.work
                    mv_bits = (
                        golomb_bits(int(round(4 * estimate.mv_y)))
                        + golomb_bits(int(round(4 * estimate.mv_x)))
                        + golomb_bits(estimate.ref_index)
                    )
                residual = block - prediction
                decoded_residual, bits, work = encode_block(residual, self.qstep)
                total_work += work + _BLOCK_PIPELINE_WORK
                total_bits += bits + mv_bits + _HEADER_BITS_PER_BLOCK
                reconstructed[
                    block_y : block_y + BLOCK, block_x : block_x + BLOCK
                ] = np.clip(prediction + decoded_residual, 0.0, 255.0)

        self._references.appendleft(reconstructed)
        return FrameStats(
            psnr_db=psnr(frame, reconstructed),
            bits=total_bits,
            work=total_work,
            frame_type="I" if intra else "P",
        )
