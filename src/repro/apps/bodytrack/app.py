"""The bodytrack application (paper Section 4.3).

Knobs: two positional parameters — ``particles`` (argv[4], 100–4000 in
increments of 100, PARSEC default 4000) and ``layers`` (argv[5], 1–5,
default 5).  We keep the same ranges at half scale for particles (100–2000
with a denser low end) and the full 1–5 layer range.  QoS is the
distortion of the body-part position vectors with weights proportional to
component magnitude.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.apps.bodytrack.body import pose_vector_weights
from repro.apps.bodytrack.particle_filter import AnnealedParticleFilter
from repro.apps.bodytrack.synth import TrackingSequence
from repro.core.knobs import Parameter
from repro.core.qos import DistortionMetric, QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["BodytrackApp", "PARTICLE_VALUES", "LAYER_VALUES", "FRAME_PROCESSING_WORK"]

PARTICLE_VALUES = (100, 200, 300, 400, 500, 600, 800, 1000, 1500, 2000)
LAYER_VALUES = (1, 2, 3, 4, 5)
DEFAULT_PARTICLES = 2000
DEFAULT_LAYERS = 5

FRAME_PROCESSING_WORK = 900_000.0
"""Knob-independent per-frame work: bodytrack computes foreground masks
and edge maps for every camera image before the filter runs, so even the
cheapest knob setting pays this cost.  Sized so the maximum achievable
speedup lands near the paper's ~7x (Figure 5c)."""


class _FrameItem:
    """One main-loop item: a frame index bound to its sequence."""

    __slots__ = ("sequence", "index")

    def __init__(self, sequence: TrackingSequence, index: int) -> None:
        self.sequence = sequence
        self.index = index


class BodytrackApp(Application):
    """Tracks a body through a sequence; one heartbeat per frame."""

    name = "bodytrack"

    def __init__(self) -> None:
        self._filter: AnnealedParticleFilter | None = None
        self._active_sequence: TrackingSequence | None = None
        self._active_knobs: tuple[int, int] | None = None

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (
            Parameter("particles", PARTICLE_VALUES, default=DEFAULT_PARTICLES),
            Parameter("layers", LAYER_VALUES, default=DEFAULT_LAYERS),
        )

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        # argv[4] -> particle-set size, argv[5] -> annealing layers.
        space.write("n_particles", config["particles"] + 0)
        space.write("n_layers", config["layers"] + 0)

    def prepare(self, job: TrackingSequence) -> Sequence[_FrameItem]:
        self._active_sequence = job
        self._filter = None
        self._active_knobs = None
        return [_FrameItem(job, index) for index in range(job.frame_count)]

    def _ensure_filter(
        self, item: _FrameItem, particles: int, layers: int
    ) -> AnnealedParticleFilter:
        """(Re)build the filter when knobs move; the particle cloud is
        re-seeded from its current mean so tracking state carries over."""
        knobs = (particles, layers)
        if self._filter is None:
            self._filter = AnnealedParticleFilter(
                cameras=item.sequence.cameras,
                particles=particles,
                layers=layers,
                seed=17,
            )
            self._filter.reset(item.sequence.initial_pose)
            self._active_knobs = knobs
        elif knobs != self._active_knobs:
            previous = self._filter
            mean_pose = np.mean(previous._swarm, axis=0)
            self._filter = AnnealedParticleFilter(
                cameras=item.sequence.cameras,
                particles=particles,
                layers=layers,
                seed=17,
            )
            self._filter.reset(mean_pose)
            self._filter._frame_index = previous._frame_index
            self._active_knobs = knobs
        return self._filter

    def process_item(
        self, item: _FrameItem, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        particles = int(space.read("n_particles"))
        layers = int(space.read("n_layers"))
        tracking_filter = self._ensure_filter(item, particles, layers)
        observation = item.sequence.observations[item.index]
        tracker.add("main/image_processing", FRAME_PROCESSING_WORK)
        estimate, filter_work = tracking_filter.step(observation)
        tracker.add("main/anneal", filter_work)
        work = FRAME_PROCESSING_WORK + filter_work
        return ItemResult(output=estimate, work=work)

    def qos_metric(self) -> QoSMetric:
        """Distortion of the pose vectors, magnitude-weighted."""

        def abstraction(outputs: Sequence[np.ndarray]) -> np.ndarray:
            return np.concatenate([np.asarray(o, dtype=float) for o in outputs])

        return DistortionMetric(
            abstraction, weights=pose_vector_weights, name="pose-distortion"
        )

    def reset(self) -> None:
        self._filter = None
        self._active_sequence = None
        self._active_knobs = None

    def threads(self) -> int:
        return 8
