"""Annealed particle filter (Deutscher & Reid), paper Section 4.3.

bodytrack's core algorithm: per frame, the filter runs several *annealing
layers*.  Each layer diffuses the particle set, evaluates an observation
energy per particle, weights particles by ``exp(-beta_layer * energy)``
with ``beta`` increasing layer by layer (sharpening the distribution
toward the energy minimum), and resamples.  More particles explore the
pose space more densely; more layers anneal more gradually — both improve
accuracy and both cost time, which is exactly the trade-off the two
dynamic knobs (argv[4] particles, argv[5] layers) expose.

Randomness is drawn from per-(frame, layer) seeded streams in row-major
order so that runs with different particle counts share common random
numbers for their common prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.bodytrack.body import POSE_DIMENSIONS, joint_positions
from repro.apps.bodytrack.synth import Camera

__all__ = ["AnnealedParticleFilter", "EVAL_WORK_UNITS"]

EVAL_WORK_UNITS = 26 * 2 * 12.0
"""Work units per particle-layer evaluation: forward kinematics plus
projection and residual over 13 joints x 2 coordinates x cameras, with a
constant reflecting the arithmetic per coordinate."""

_DIFFUSION_BASE = np.array(
    [2.0, 2.0] + [0.08] * (POSE_DIMENSIONS - 2), dtype=float
)
"""Per-dimension diffusion at the first layer (positions in scene units,
angles in radians)."""


@dataclass
class AnnealedParticleFilter:
    """Tracks one body through a sequence of observations.

    Args:
        cameras: The calibrated camera models.
        particles: Particle-set size (dynamic knob argv[4]).
        layers: Annealing layers per frame (dynamic knob argv[5]).
        beta_start: Inverse-temperature of the first layer.
        beta_growth: Multiplicative beta increase per layer.
        observation_sigma: Expected observation noise (pixels).
        seed: Base seed for the filter's random streams.
    """

    cameras: tuple[Camera, ...]
    particles: int
    layers: int
    beta_start: float = 0.05
    beta_growth: float = 2.0
    observation_sigma: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.particles < 1:
            raise ValueError(f"particles must be >= 1, got {self.particles!r}")
        if self.layers < 1:
            raise ValueError(f"layers must be >= 1, got {self.layers!r}")
        self._swarm: np.ndarray | None = None
        self._frame_index = 0

    def reset(self, initial_pose: np.ndarray) -> None:
        """Initialize the particle set around a known starting pose."""
        pose = np.asarray(initial_pose, dtype=float)
        if pose.shape != (POSE_DIMENSIONS,):
            raise ValueError(f"initial pose must have shape ({POSE_DIMENSIONS},)")
        rng = np.random.default_rng((self.seed, 0xBEEF))
        noise = rng.standard_normal((self.particles, POSE_DIMENSIONS))
        self._swarm = pose + 0.25 * _DIFFUSION_BASE * noise
        self._frame_index = 0

    # ------------------------------------------------------------------
    def _energy(self, swarm: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """Observation energy per particle: camera-space squared error."""
        joints = joint_positions(swarm)  # (N, J, 2)
        total = np.zeros(swarm.shape[0])
        for cam_index, camera in enumerate(self.cameras):
            projected = camera.project(joints)
            residual = projected - observation[cam_index]
            total += np.sum(residual**2, axis=(1, 2))
        denom = 2.0 * self.observation_sigma**2 * joints.shape[1] * len(self.cameras)
        return total / denom

    @staticmethod
    def _systematic_resample(
        weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Systematic (low-variance) resampling indices."""
        n = weights.shape[0]
        positions = (rng.uniform() + np.arange(n)) / n
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0
        return np.searchsorted(cumulative, positions)

    def step(self, observation: np.ndarray) -> tuple[np.ndarray, float]:
        """Process one frame of observations.

        Args:
            observation: ``(cameras, joints, 2)`` array for this frame.

        Returns:
            ``(estimate, work)`` — the estimated pose's joint positions
            flattened to a 26-vector... (13 joints x 2), and the abstract
            work units spent (particles x layers x EVAL_WORK_UNITS x
            cameras/2 normalization).
        """
        if self._swarm is None:
            raise RuntimeError("filter must be reset() with an initial pose first")
        swarm = self._swarm
        weights = np.full(self.particles, 1.0 / self.particles)
        beta = self.beta_start
        evaluations = 0
        for layer in range(self.layers):
            rng = np.random.default_rng(
                (self.seed, self._frame_index + 1, layer + 1)
            )
            scale = _DIFFUSION_BASE * (0.6**layer)
            swarm = swarm + scale * rng.standard_normal(
                (self.particles, POSE_DIMENSIONS)
            )
            energy = self._energy(swarm, observation)
            evaluations += self.particles
            log_w = -beta * energy
            log_w -= np.max(log_w)
            weights = np.exp(log_w)
            weights /= np.sum(weights)
            if layer < self.layers - 1:
                indices = self._systematic_resample(weights, rng)
                swarm = swarm[indices]
                weights = np.full(self.particles, 1.0 / self.particles)
            beta *= self.beta_growth
        estimate_pose = np.sum(swarm * weights[:, None], axis=0)
        self._swarm = swarm[
            self._systematic_resample(
                weights,
                np.random.default_rng((self.seed, self._frame_index + 1, 0)),
            )
        ]
        self._frame_index += 1
        estimate_joints = joint_positions(estimate_pose[None, :])[0].ravel()
        work = evaluations * EVAL_WORK_UNITS * (len(self.cameras) / 2.0)
        return estimate_joints, float(work)
