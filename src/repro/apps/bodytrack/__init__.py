"""bodytrack — annealed-particle-filter body tracking (Section 4.3)."""

from repro.apps.bodytrack.app import (
    BodytrackApp,
    LAYER_VALUES,
    PARTICLE_VALUES,
)
from repro.apps.bodytrack.body import (
    BodyGeometry,
    JOINT_NAMES,
    POSE_DIMENSIONS,
    joint_positions,
    pose_vector_weights,
)
from repro.apps.bodytrack.particle_filter import (
    EVAL_WORK_UNITS,
    AnnealedParticleFilter,
)
from repro.apps.bodytrack.synth import Camera, TrackingSequence, generate_sequence

__all__ = [
    "BodytrackApp",
    "PARTICLE_VALUES",
    "LAYER_VALUES",
    "BodyGeometry",
    "JOINT_NAMES",
    "POSE_DIMENSIONS",
    "joint_positions",
    "pose_vector_weights",
    "AnnealedParticleFilter",
    "EVAL_WORK_UNITS",
    "Camera",
    "TrackingSequence",
    "generate_sequence",
]
