"""Articulated body model and forward kinematics (paper Section 4.3).

The PARSEC ``bodytrack`` benchmark tracks a 3D kinematic tree from four
cameras.  We model a 2D kinematic tree (pelvis-rooted torso, head, two
two-segment arms, two two-segment legs) observed by multiple virtual
cameras; the state is a 14-dimensional pose vector and the output is the
13-joint skeleton the QoS metric compares (the paper's "series of vectors
representing the positions of body components").

Forward kinematics is vectorized over particles: ``joint_positions`` maps
an ``(N, 14)`` pose array to ``(N, 13, 2)`` joint coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "POSE_DIMENSIONS",
    "JOINT_NAMES",
    "BodyGeometry",
    "joint_positions",
    "pose_vector_weights",
]

POSE_DIMENSIONS = 14
"""Pose vector: [x, y, torso, neck, l_sho, l_elb, r_sho, r_elb,
l_hip, l_knee, r_hip, r_knee, lean, stride]."""

JOINT_NAMES = (
    "pelvis",
    "chest",
    "head",
    "l_shoulder",
    "l_elbow",
    "l_hand",
    "r_shoulder",
    "r_elbow",
    "r_hand",
    "l_knee",
    "l_foot",
    "r_knee",
    "r_foot",
)


@dataclass(frozen=True)
class BodyGeometry:
    """Segment lengths of the articulated body, in scene units."""

    torso: float = 50.0
    head: float = 18.0
    upper_arm: float = 28.0
    forearm: float = 24.0
    thigh: float = 40.0
    shin: float = 38.0
    shoulder_offset: float = 16.0
    hip_offset: float = 10.0


def joint_positions(
    poses: np.ndarray, geometry: BodyGeometry | None = None
) -> np.ndarray:
    """Forward kinematics: ``(N, 14)`` poses to ``(N, 13, 2)`` joints.

    Angles are absolute scene angles (radians); ``lean`` tilts the torso
    relative to vertical and ``stride`` phase-offsets the legs, so every
    pose dimension genuinely moves some joint.
    """
    geometry = geometry or BodyGeometry()
    poses = np.atleast_2d(np.asarray(poses, dtype=float))
    if poses.shape[1] != POSE_DIMENSIONS:
        raise ValueError(
            f"pose vectors must have {POSE_DIMENSIONS} dimensions, "
            f"got {poses.shape[1]}"
        )
    n = poses.shape[0]
    x, y = poses[:, 0], poses[:, 1]
    torso_angle = poses[:, 2] + 0.25 * poses[:, 12]
    neck_angle = poses[:, 3]
    lean = poses[:, 12]
    stride = poses[:, 13]

    def offset(angle: float | np.ndarray, length: float) -> np.ndarray:
        return np.stack([length * np.sin(angle), length * np.cos(angle)], axis=-1)

    joints = np.empty((n, len(JOINT_NAMES), 2))
    pelvis = np.stack([x, y], axis=-1)
    chest = pelvis + offset(torso_angle, geometry.torso)
    head = chest + offset(torso_angle + neck_angle, geometry.head)
    joints[:, 0], joints[:, 1], joints[:, 2] = pelvis, chest, head

    shoulder_dir = offset(torso_angle + np.pi / 2, geometry.shoulder_offset)
    for side, sign, sho_i, elb_i in (("l", -1.0, 3, 4), ("r", 1.0, 6, 7)):
        base = 4 if side == "l" else 6
        shoulder = chest + sign * shoulder_dir
        upper = poses[:, base] + lean * 0.3
        fore = poses[:, base + 1]
        elbow = shoulder + offset(np.pi + upper, geometry.upper_arm)
        hand = elbow + offset(np.pi + upper + fore, geometry.forearm)
        joints[:, sho_i], joints[:, elb_i] = shoulder, elbow
        joints[:, elb_i + 1] = hand

    hip_dir = offset(torso_angle + np.pi / 2, geometry.hip_offset)
    for side, sign, knee_i in (("l", -1.0, 9), ("r", 1.0, 11)):
        base = 8 if side == "l" else 10
        hip = pelvis + sign * hip_dir
        thigh = poses[:, base] + sign * 0.5 * stride
        shin = poses[:, base + 1]
        knee = hip + offset(np.pi + thigh, geometry.thigh)
        foot = knee + offset(np.pi + thigh + shin, geometry.shin)
        joints[:, knee_i] = knee
        joints[:, knee_i + 1] = foot

    return joints


def pose_vector_weights(flattened_joints: np.ndarray) -> np.ndarray:
    """QoS weights proportional to component magnitude (paper Section 4.3).

    "The weight of each vector component is proportional to its magnitude"
    — larger body components (torso positions) dominate smaller ones
    (forearms).  Weights are normalized to mean 1 so losses stay on the
    Equation-1 scale.
    """
    magnitudes = np.abs(np.asarray(flattened_joints, dtype=float))
    mean = float(np.mean(magnitudes))
    if mean == 0.0:
        return np.ones_like(magnitudes)
    return magnitudes / mean
