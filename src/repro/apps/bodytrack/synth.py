"""Synthetic body-tracking workload (paper Section 4.3 and Table 1).

The paper's inputs are video sequences from four carefully calibrated
cameras (PARSEC data we cannot redistribute).  Per the substitution rule
we generate the equivalent stimulus: a walking-gait pose trajectory and,
per frame, the body's joint positions as seen by ``cameras`` noisy virtual
cameras (each a rotation + scale + offset of the scene, the 2D analogue of
a calibrated camera, with Gaussian pixel noise).  The tracker never sees
the true poses — only the observations — exactly as bodytrack only sees
images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.bodytrack.body import POSE_DIMENSIONS, joint_positions

__all__ = ["Camera", "TrackingSequence", "generate_sequence"]


@dataclass(frozen=True)
class Camera:
    """A calibrated virtual camera: 2D similarity transform + noise."""

    angle: float
    scale: float
    offset_x: float
    offset_y: float
    noise_sigma: float = 2.0

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project scene points ``(..., 2)`` into this camera's image."""
        c, s = np.cos(self.angle), np.sin(self.angle)
        rotation = np.array([[c, -s], [s, c]])
        projected = points @ rotation.T * self.scale
        projected = projected + np.array([self.offset_x, self.offset_y])
        return projected


@dataclass(frozen=True)
class TrackingSequence:
    """One tracking job: observations plus the initial pose.

    Attributes:
        observations: ``(frames, cameras, joints, 2)`` noisy projections.
        cameras: The camera models (known to the tracker, as calibration
            data is known to bodytrack).
        initial_pose: The true pose of frame 0 (trackers are initialized).
        true_poses: Ground-truth poses, for diagnostics only.
    """

    observations: np.ndarray
    cameras: tuple[Camera, ...]
    initial_pose: np.ndarray
    true_poses: np.ndarray

    @property
    def frame_count(self) -> int:
        """Number of frames in the sequence."""
        return self.observations.shape[0]


def _gait_poses(frames: int, rng: np.random.Generator) -> np.ndarray:
    """A walking-gait pose trajectory with smooth random perturbations."""
    t = np.arange(frames, dtype=float)
    poses = np.zeros((frames, POSE_DIMENSIONS))
    poses[:, 0] = 10.0 + 2.2 * t  # forward walk
    poses[:, 1] = 80.0 + 1.5 * np.sin(0.7 * t)  # bob
    poses[:, 2] = 0.06 * np.sin(0.25 * t)  # torso sway
    poses[:, 3] = 0.05 * np.sin(0.4 * t + 1.0)  # neck
    swing = 0.5 * np.sin(0.6 * t)
    poses[:, 4] = swing + 0.1  # left shoulder
    poses[:, 5] = 0.4 + 0.25 * np.sin(0.6 * t + 0.8)  # left elbow
    poses[:, 6] = -swing + 0.1  # right shoulder (anti-phase)
    poses[:, 7] = 0.4 + 0.25 * np.sin(0.6 * t + np.pi + 0.8)
    poses[:, 8] = 0.45 * np.sin(0.6 * t + np.pi)  # left hip
    poses[:, 9] = 0.3 + 0.3 * np.clip(np.sin(0.6 * t + np.pi), 0, None)
    poses[:, 10] = 0.45 * np.sin(0.6 * t)  # right hip
    poses[:, 11] = 0.3 + 0.3 * np.clip(np.sin(0.6 * t), 0, None)
    poses[:, 12] = 0.04 * np.sin(0.15 * t)  # lean
    poses[:, 13] = 0.2 * np.sin(0.6 * t + 0.3)  # stride phase
    # Smooth random perturbation so sequences differ beyond phase.
    drift = rng.normal(0.0, 0.02, size=(frames, POSE_DIMENSIONS))
    poses += np.cumsum(drift, axis=0) * 0.5
    return poses


def _default_cameras(count: int) -> tuple[Camera, ...]:
    cameras = []
    for index in range(count):
        cameras.append(
            Camera(
                angle=0.35 * index,
                scale=1.0 + 0.1 * index,
                offset_x=20.0 * index,
                offset_y=-10.0 * index,
            )
        )
    return tuple(cameras)


def generate_sequence(
    frames: int, seed: int, cameras: int = 2, noise_sigma: float = 2.0
) -> TrackingSequence:
    """Generate one tracking sequence of ``frames`` frames."""
    if frames < 2:
        raise ValueError(f"sequence needs >= 2 frames, got {frames!r}")
    rng = np.random.default_rng(seed)
    poses = _gait_poses(frames, rng)
    camera_models = tuple(
        Camera(c.angle, c.scale, c.offset_x, c.offset_y, noise_sigma)
        for c in _default_cameras(cameras)
    )
    joints = joint_positions(poses)  # (frames, joints, 2)
    observations = np.empty((frames, cameras, joints.shape[1], 2))
    for cam_index, camera in enumerate(camera_models):
        clean = camera.project(joints)
        noise = rng.normal(0.0, noise_sigma, size=clean.shape)
        observations[:, cam_index] = clean + noise
    return TrackingSequence(
        observations=observations,
        cameras=camera_models,
        initial_pose=poses[0].copy(),
        true_poses=poses,
    )
