"""The application protocol all benchmarks implement (paper Section 2).

PowerDial targets applications with the paper's computational pattern:

* **Initialization** parses configuration parameters and derives *control
  variables* into the address space.
* A **main control loop** emits a heartbeat, reads one unit of input,
  processes it (reading — never writing — the control variables), and
  produces output.

:class:`Application` captures exactly that shape.  Work is attributed
through a :class:`WorkTracker` in abstract work units (see
``repro.hardware.cpu``) and to named sections, which the heartbeat
instrumenter uses to locate the main control loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Mapping, Sequence

from repro.core.knobs import KnobConfiguration, KnobSpace, Parameter
from repro.core.qos import QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["WorkTracker", "ItemResult", "Application", "ApplicationError"]


class ApplicationError(RuntimeError):
    """Raised for protocol violations by applications."""


@dataclass
class WorkTracker:
    """Accumulates work units, attributed to named sections.

    Attributes:
        events: Raw ``(section, units)`` events in emission order, kept for
            heartbeat-site profiling.
    """

    events: list[tuple[str, float]] = field(default_factory=list)
    _total: float = 0.0

    def add(self, section: str, units: float) -> None:
        """Attribute ``units`` of work to ``section``."""
        if units < 0:
            raise ApplicationError(
                f"negative work {units!r} attributed to {section!r}"
            )
        self.events.append((section, units))
        self._total += units

    @property
    def total(self) -> float:
        """Total work units recorded so far."""
        return self._total

    def take(self) -> float:
        """Return the total and reset the tracker (per-item accounting)."""
        total = self._total
        self._total = 0.0
        self.events.clear()
        return total


@dataclass(frozen=True)
class ItemResult:
    """Result of processing one main-loop item.

    Attributes:
        output: The item's output (application-specific).
        work: Work units spent on this item.
    """

    output: Any
    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ApplicationError(f"item work must be >= 0, got {self.work!r}")


class Application(abc.ABC):
    """Abstract base class for PowerDial-managed applications.

    Subclasses define their knobbable parameters, derive control variables
    during :meth:`initialize`, and process main-loop items while *reading*
    control variables from the address space.  The paper's checks verify at
    trace time that subclasses honor the read-only contract.
    """

    name: ClassVar[str] = "application"

    # -- configuration surface -------------------------------------------
    @classmethod
    @abc.abstractmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        """The configuration parameters to transform into dynamic knobs."""

    @classmethod
    def knob_space(cls) -> KnobSpace:
        """The cartesian knob space over :meth:`parameters`."""
        return KnobSpace(cls.parameters())

    @classmethod
    def default_configuration(cls) -> KnobConfiguration:
        """The highest-QoS (baseline) parameter combination."""
        return cls.knob_space().default_configuration()

    # -- lifecycle ----------------------------------------------------------
    @abc.abstractmethod
    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        """Parse ``config`` and store derived control variables in ``space``.

        Runs before the first heartbeat.  During tracing the knob
        parameters arrive as traced values; derivations must therefore be
        arithmetic on the parameter values (the tracer does not follow
        control-flow or array-index influence).
        """

    @abc.abstractmethod
    def prepare(self, job: Any) -> Sequence[Any]:
        """Split one input job into main-control-loop items."""

    @abc.abstractmethod
    def process_item(
        self, item: Any, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        """Process one item: read control variables, compute, return output."""

    # -- QoS surface ----------------------------------------------------------
    @abc.abstractmethod
    def qos_metric(self) -> QoSMetric:
        """The application's QoS-loss metric over full-job output lists."""

    # -- optional hooks ---------------------------------------------------------
    def reset(self) -> None:
        """Clear inter-item state (e.g. reference frames) between jobs."""

    def threads(self) -> int:
        """Worker threads the application runs with (paper: app-appropriate)."""
        return 8


def run_job(
    app: Application,
    config: Mapping[str, Any],
    job: Any,
    space: AddressSpace | None = None,
) -> tuple[list[Any], float, WorkTracker]:
    """Execute one job at a fixed configuration (no dynamic control).

    This is the calibration-time execution path: initialize, then run the
    whole main loop at the given static configuration.

    Returns:
        ``(outputs, total_work, tracker)`` where ``outputs`` has one entry
        per item and ``tracker`` retains the section events of the run.
    """
    if space is None:
        space = AddressSpace(log_accesses=False)
    app.reset()
    app.initialize(config, space)
    tracker = WorkTracker()
    outputs: list[Any] = []
    total_work = 0.0
    for item in app.prepare(job):
        space.mark_first_heartbeat()
        result = app.process_item(item, space, tracker)
        outputs.append(result.output)
        total_work += result.work
    return outputs, total_work, tracker
