"""Experiment E-SLA: latency SLAs under power capping (Section 3).

Section 3 motivates PowerDial with service-level agreements: power
capping throttles servers, and "this increased latency may violate
latency service level agreements."  This experiment runs the swish++
server scenario as a queueing system: Poisson query arrivals at high
utilization, a power cap over the middle half of the run, and three
deployments -- an uncapped reference, the capped server without knobs,
and the capped server under PowerDial control with the benchmark's
calibrated knob table.  Without knobs the capped queue diverges and the
SLA collapses; with knobs the latency distribution matches the uncapped
reference and the cap is paid for in (bounded) QoS instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.queueing import (
    LatencyStats,
    QueueResult,
    poisson_arrivals,
    simulate_queue,
)
from repro.core.controller import HeartRateController
from repro.experiments.common import Scale, format_table
from repro.experiments.registry import built_system

__all__ = ["SlaSeries", "SlaExperiment", "run_sla", "format_sla"]

POWER_CAP_FACTOR = 1.6 / 2.4
"""Delivered capacity under the paper's power cap (CPU-bound)."""


@dataclass(frozen=True)
class SlaSeries:
    """One deployment's latency accounting.

    Attributes:
        label: Deployment name.
        stats: Latency distribution summary.
        violation_fraction: Fraction of requests over the SLA threshold.
        mean_qos_loss: Mean QoS loss paid (0 without knobs).
        throughput: Completions per second over the run.
    """

    label: str
    stats: LatencyStats
    violation_fraction: float
    mean_qos_loss: float
    throughput: float


@dataclass
class SlaExperiment:
    """All three deployments plus the scenario parameters."""

    name: str
    offered_rate: float
    base_service_time: float
    sla_seconds: float
    cap_start: float
    cap_end: float
    series: list[SlaSeries]

    def series_by_label(self, label: str) -> SlaSeries:
        """Look up one deployment's accounting."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no series labelled {label!r}")


def _summarize(label: str, result: QueueResult, sla: float) -> SlaSeries:
    return SlaSeries(
        label=label,
        stats=result.latency_stats(),
        violation_fraction=result.sla_violation_fraction(sla),
        mean_qos_loss=result.mean_qos_loss(),
        throughput=result.throughput(),
    )


def run_sla(
    name: str = "swish++",
    scale: Scale = Scale.PAPER,
    duration: float = 600.0,
    utilization: float = 0.85,
    base_service_time: float = 0.05,
    sla_seconds: float = 1.0,
    seed: int = 11,
) -> SlaExperiment:
    """Run the SLA scenario against one benchmark's calibrated table.

    Args:
        name: Benchmark whose knob table maps speedups to QoS losses
            (the paper's server benchmark is swish++).
        scale: Calibration scale.
        duration: Run length in seconds; the cap spans the middle half.
        utilization: Offered load as a fraction of the uncapped service
            rate.  Must exceed the capped capacity (else the cap merely
            stretches latency without diverging) and the required
            speedup ``1 / cap`` must be within the table's range.
        base_service_time: Seconds per request at baseline knobs,
            uncapped.
        sla_seconds: The latency SLA threshold.
        seed: Arrival-process seed.
    """
    system = built_system(name, scale)
    table = system.table
    service_rate = 1.0 / base_service_time
    offered = utilization * service_rate
    arrivals = poisson_arrivals(offered, duration, seed=seed)
    cap_start, cap_end = duration / 4.0, 3.0 * duration / 4.0

    def capped(t: float) -> float:
        return POWER_CAP_FACTOR if cap_start <= t < cap_end else 1.0

    reference = simulate_queue(
        arrivals, base_service_time, capacity=lambda t: 1.0
    )
    no_knobs = simulate_queue(arrivals, base_service_time, capacity=capped)
    controller = HeartRateController(
        target_rate=service_rate,
        baseline_rate=service_rate,
        max_speedup=table.max_speedup,
    )
    knobs = simulate_queue(
        arrivals,
        base_service_time,
        capacity=capped,
        controller=controller,
        table=table,
        control_period=2.0,
    )
    return SlaExperiment(
        name=name,
        offered_rate=offered,
        base_service_time=base_service_time,
        sla_seconds=sla_seconds,
        cap_start=cap_start,
        cap_end=cap_end,
        series=[
            _summarize("uncapped reference", reference, sla_seconds),
            _summarize("capped, no knobs", no_knobs, sla_seconds),
            _summarize("capped, dynamic knobs", knobs, sla_seconds),
        ],
    )


def format_sla(experiment: SlaExperiment) -> str:
    """The experiment as a paper-style table."""
    rows = [
        [
            series.label,
            f"{series.stats.p50:.3f}",
            f"{series.stats.p95:.3f}",
            f"{series.stats.p99:.3f}",
            f"{100 * series.violation_fraction:.1f}",
            f"{100 * series.mean_qos_loss:.2f}",
            f"{series.throughput:.1f}",
        ]
        for series in experiment.series
    ]
    header = (
        f"Latency SLA under a power cap ({experiment.name} table): "
        f"{experiment.offered_rate:.1f} req/s offered, "
        f"{1000 * experiment.base_service_time:.0f} ms base service, "
        f"SLA {experiment.sla_seconds:.1f} s, cap over "
        f"[{experiment.cap_start:.0f}, {experiment.cap_end:.0f}) s"
    )
    return f"{header}\n" + format_table(
        [
            "deployment",
            "p50 s",
            "p95 s",
            "p99 s",
            "SLA violations %",
            "qos loss %",
            "throughput/s",
        ],
        rows,
    )
