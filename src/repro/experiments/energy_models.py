"""Experiment E-F3/F4: the Section 3 energy accounting (Figures 3-4).

Figures 3 and 4 are schematic, but Equations 12-19 behind them are fully
quantitative.  This experiment evaluates them with the paper platform's
measured power levels (220 W busy at 2.4 GHz, ~176 W busy at 1.6 GHz
under our power model, 90 W idle) across knob speedups and slack levels,
reporting when race-to-idle (Figure 4a) versus DVFS-stretch (Figure 4b)
wins and how much energy dynamic knobs add over DVFS alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.hardware.cpu import XEON_E5530_PSTATES
from repro.hardware.power import PowerModel
from repro.models.dvfs import KnobDvfsEnergy, dvfs_energy_savings, knob_dvfs_energy

__all__ = ["EnergyScenario", "run_energy_models", "format_fig34"]


@dataclass(frozen=True)
class EnergyScenario:
    """One evaluated (speedup, slack) cell.

    Attributes:
        speedup: Knob speedup ``S(QoS)``.
        slack_fraction: ``t_delay / t1``.
        result: The Eq. 13-19 energy breakdown.
        dvfs_only_savings: Eq. 12 savings without knobs.
        best_strategy: Which Figure 4 case won ("race-to-idle" or
            "dvfs-stretch").
    """

    speedup: float
    slack_fraction: float
    result: KnobDvfsEnergy
    dvfs_only_savings: float
    best_strategy: str


def _platform_powers() -> tuple[float, float, float]:
    model = PowerModel()
    fastest, slowest = XEON_E5530_PSTATES[0], XEON_E5530_PSTATES[-1]
    p_nodvfs = model.power(1.0, fastest, fastest.frequency_ghz)
    p_dvfs = model.power(1.0, slowest, fastest.frequency_ghz)
    return p_nodvfs, p_dvfs, model.idle_watts


def run_energy_models(
    task_seconds: float = 100.0,
    speedups: tuple[float, ...] = (1.0, 1.5, 2.0, 4.0),
    slack_fractions: tuple[float, ...] = (0.0, 0.25, 0.5),
) -> list[EnergyScenario]:
    """Evaluate the Section 3 models over a (speedup x slack) grid."""
    p_nodvfs, p_dvfs, p_idle = _platform_powers()
    scenarios = []
    for slack in slack_fractions:
        t_delay = slack * task_seconds
        dvfs_only = dvfs_energy_savings(
            p_nodvfs, p_dvfs, p_idle, task_seconds, t_delay
        )
        for speedup in speedups:
            result = knob_dvfs_energy(
                p_nodvfs, p_dvfs, p_idle, task_seconds, t_delay, speedup
            )
            strategy = "race-to-idle" if result.e1 <= result.e2 else "dvfs-stretch"
            scenarios.append(
                EnergyScenario(
                    speedup=speedup,
                    slack_fraction=slack,
                    result=result,
                    dvfs_only_savings=dvfs_only,
                    best_strategy=strategy,
                )
            )
    return scenarios


def format_fig34(scenarios: list[EnergyScenario]) -> str:
    """The Eq. 12-19 energy table."""
    rows = [
        [
            f"{s.slack_fraction:.2f}",
            f"{s.speedup:.1f}",
            f"{s.result.e1 / 1000:.2f}",
            f"{s.result.e2 / 1000:.2f}",
            f"{s.result.e_elastic / 1000:.2f}",
            f"{s.result.e_dvfs / 1000:.2f}",
            f"{s.result.savings / 1000:.2f}",
            s.best_strategy,
        ]
        for s in scenarios
    ]
    return (
        "Figures 3-4 / Equations 12-19: energy (kJ) for a 100 s task on the "
        "paper platform\n"
        + format_table(
            [
                "slack",
                "S(QoS)",
                "E1 race",
                "E2 dvfs",
                "E elastic",
                "E dvfs-only",
                "savings",
                "best",
            ],
            rows,
        )
    )
