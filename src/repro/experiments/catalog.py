"""The single source of truth for the experiment CLI's subcommands.

Each :class:`Artifact` entry names one ``python -m repro.experiments``
subcommand, its one-line help string, and the paper artifact it
reproduces.  The CLI driver builds its subparsers from this table, and
``docs/SCENARIOS.md`` quotes the same help lines recipe by recipe — a
drift test (``tests/test_docs.py``) asserts every entry appears in the
cookbook verbatim, so the CLI and the docs cannot disagree about what a
subcommand does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Artifact", "ARTIFACTS", "PER_APP_ARTIFACTS"]


@dataclass(frozen=True)
class Artifact:
    """One experiment CLI subcommand.

    Attributes:
        name: Subcommand name (``python -m repro.experiments <name>``).
        help: One-line description shown in ``--help`` and quoted by
            ``docs/SCENARIOS.md``.
        paper_ref: The paper table/figure/section it reproduces (or the
            repo extension it exercises).
        per_app: Whether the subcommand takes ``--app``.
    """

    name: str
    help: str
    paper_ref: str
    per_app: bool = False


_ENTRIES = (
    Artifact(
        "table1",
        "summarize the benchmark applications, inputs, and knobs",
        "Table 1",
    ),
    Artifact(
        "table2",
        "speedup/QoS trade-off statistics across all four benchmarks",
        "Table 2",
    ),
    Artifact(
        "fig34",
        "analytic energy models for idle and consolidation savings",
        "Figures 3-4 (Equations 12-19)",
    ),
    Artifact(
        "fig5",
        "the calibrated speedup vs QoS-loss trade-off space of one app",
        "Figure 5",
        per_app=True,
    ),
    Artifact(
        "fig6",
        "system power and QoS across P-states with and without knobs",
        "Figure 6",
        per_app=True,
    ),
    Artifact(
        "fig7",
        "the dynamic response timeline to a power cap and its removal",
        "Figure 7",
        per_app=True,
    ),
    Artifact(
        "fig8",
        "server-consolidation energy savings at constant capacity",
        "Figure 8",
        per_app=True,
    ),
    Artifact(
        "overhead",
        "runtime overhead of the control loop on each benchmark",
        "Section 5.2",
    ),
    Artifact(
        "sla",
        "latency-SLA attainment with and without dynamic knobs",
        "Section 5.4 extension",
        per_app=True,
    ),
    Artifact(
        "ablation-controllers",
        "the paper's integral controller against alternative policies",
        "controller ablation",
        per_app=True,
    ),
    Artifact(
        "ablation-quantum",
        "sensitivity of control quality to the quantum length",
        "quantum ablation",
        per_app=True,
    ),
    Artifact(
        "datacenter",
        "multi-tenant serving under one arbitrated facility power budget",
        "Sections 5.4-5.5 extension",
    ),
    Artifact(
        "replay",
        "re-execute a journaled datacenter run byte-exactly from its journal",
        "run-journal extension",
    ),
)

ARTIFACTS: dict[str, Artifact] = {entry.name: entry for entry in _ENTRIES}
"""Every CLI subcommand, keyed by name, in help-listing order."""

PER_APP_ARTIFACTS = frozenset(
    entry.name for entry in _ENTRIES if entry.per_app
)
"""Subcommands that accept ``--app``."""
