"""Experiment E-F6: power versus QoS across DVFS states (Figure 6, §5.3).

For each of the platform's seven power states: configure the application
at its highest-QoS point, instruct PowerDial to maintain the heart rate
observed at 2.4 GHz, drop the clock, run the production inputs, and
record mean power, QoS loss, and whether performance stayed within 5% of
the target — the paper verifies all three.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import run_job
from repro.core.powerdial import measure_baseline_rate
from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.registry import built_system, get_spec
from repro.hardware.cpu import XEON_E5530_PSTATES

__all__ = ["PowerQosPoint", "PowerQosExperiment", "run_power_qos", "format_fig6"]


@dataclass(frozen=True)
class PowerQosPoint:
    """One frequency's measurements (one x-position of Figure 6).

    Attributes:
        frequency_ghz: The P-state.
        mean_power: Mean of the 1 Hz power samples over the run.
        qos_loss: QoS loss against the default-configuration output.
        normalized_performance: Delivered/target heart rate, measured as
            the whole-run (global) rate so variable per-item work does not
            bias the ratio.
    """

    frequency_ghz: float
    mean_power: float
    qos_loss: float
    normalized_performance: float

    @property
    def within_target(self) -> bool:
        """Paper check: performance within 5% of the target."""
        return abs(self.normalized_performance - 1.0) <= 0.05


@dataclass
class PowerQosExperiment:
    """Figure 6 data for one benchmark."""

    name: str
    points: list[PowerQosPoint]

    def power_reduction(self) -> float:
        """Fractional system-power reduction from 2.4 GHz to 1.6 GHz."""
        first, last = self.points[0], self.points[-1]
        return (first.mean_power - last.mean_power) / first.mean_power


def run_power_qos(name: str, scale: Scale = Scale.PAPER) -> PowerQosExperiment:
    """Run the frequency sweep for one benchmark."""
    spec = get_spec(name)
    system = built_system(name, scale)
    app_factory = spec.app_factory(scale)
    jobs = spec.control_jobs(scale)

    reference = experiment_machine(2.4)
    target = measure_baseline_rate(
        app_factory,
        jobs[0],
        reference,
        configuration=system.table.baseline.configuration.as_dict(),
    )

    # Baseline outputs for QoS comparison, at the highest-QoS setting of
    # the explored space (the knob table's baseline).
    probe = app_factory()
    metric = probe.qos_metric()
    baseline_config = system.table.baseline.configuration.as_dict()
    baseline_outputs = [
        run_job(app_factory(), baseline_config, job)[0] for job in jobs
    ]

    points = []
    for pstate in XEON_E5530_PSTATES:
        machine = experiment_machine(pstate.frequency_ghz)
        runtime = system.runtime(machine, target_rate=target)
        result = runtime.run(jobs)
        losses = [
            metric(base, observed)
            for base, observed in zip(baseline_outputs, result.outputs_by_job)
        ]
        # Steady-state rate: exclude the first two control quanta (the
        # paper verifies maintained performance, not the initial step).
        skip = min(2 * runtime.actuator.quantum_beats, len(result.samples) // 3)
        steady = result.samples[skip:]
        steady_rate = (len(steady) - 1) / (steady[-1].time - steady[0].time)
        points.append(
            PowerQosPoint(
                frequency_ghz=pstate.frequency_ghz,
                mean_power=result.mean_power if result.mean_power else 0.0,
                qos_loss=sum(losses) / len(losses),
                normalized_performance=steady_rate / target,
            )
        )
    return PowerQosExperiment(name=name, points=points)


def format_fig6(experiment: PowerQosExperiment) -> str:
    """Figure 6 panel as text: power and QoS loss per frequency."""
    rows = [
        [
            f"{p.frequency_ghz:.2f}",
            f"{p.mean_power:.1f}",
            f"{100 * p.qos_loss:.3f}",
            f"{p.normalized_performance:.3f}",
            "yes" if p.within_target else "NO",
        ]
        for p in experiment.points
    ]
    header = (
        f"Figure 6 ({experiment.name}): "
        f"{100 * experiment.power_reduction():.1f}% system power reduction "
        f"at 1.6 GHz"
    )
    return f"{header}\n" + format_table(
        ["freq GHz", "power W", "qos loss %", "norm. perf", "within 5%"], rows
    )
