"""Ablation A-QUANT: sensitivity to the actuator's time quantum.

Section 2.3.3 fixes the time quantum "heuristically ... as the time
required to process twenty heartbeats".  This ablation reruns the
Section 5.4 power-cap scenario with shorter and longer quanta to expose
the trade the heuristic balances: a short quantum reacts faster but
derives its heart-rate sample from fewer beats (noisier commands, more
setting churn); a long quantum smooths the measurement but delays both
the reaction to the cap and the return to baseline QoS afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import RunResult, RuntimeEvent
from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.registry import built_system, get_spec

__all__ = [
    "QuantumResult",
    "QuantumAblation",
    "run_quantum_ablation",
    "format_quantum_ablation",
]

DEFAULT_QUANTA = (5, 20, 80)
"""Quanta swept by default: fast, the paper's choice, slow."""


@dataclass(frozen=True)
class QuantumResult:
    """The power-cap run's summary for one quantum length.

    Attributes:
        quantum_beats: Heartbeats per control quantum.
        capped_performance: Mean normalized performance while capped
            (post-transient); 1.0 is the target.
        recovery_beats: Beats from the first post-cap dip (performance
            more than 10% under target) back to within 10% of target
            (0 when the cap never dents the window, -1 when performance
            never recovers).
        performance_deviation: RMS of (normalized performance - 1) over
            the whole run -- total tracking error including transients.
        setting_switches: Times the active knob setting changed -- the
            actuation churn a too-short quantum induces.
    """

    quantum_beats: int
    capped_performance: float
    recovery_beats: int
    performance_deviation: float
    setting_switches: int


@dataclass
class QuantumAblation:
    """Quantum sweep results for one benchmark."""

    name: str
    cap_beat: int
    lift_beat: int
    results: list[QuantumResult]

    def result(self, quantum_beats: int) -> QuantumResult:
        """Look up one quantum's summary."""
        for candidate in self.results:
            if candidate.quantum_beats == quantum_beats:
                return candidate
        raise KeyError(f"no result for quantum {quantum_beats!r}")


def _summarize(
    run: RunResult, quantum: int, cap_beat: int, lift_beat: int
) -> QuantumResult:
    """Reduce one controlled run to the ablation's metrics."""
    capped = [
        s.normalized_performance
        for s in run.samples[cap_beat + 40 : lift_beat]
        if s.normalized_performance is not None
    ]
    capped_mean = sum(capped) / len(capped) if capped else float("nan")

    dip_beat = None
    for sample in run.samples[cap_beat:lift_beat]:
        perf = sample.normalized_performance
        if perf is not None and perf < 0.90:
            dip_beat = sample.beat
            break
    recovery = 0
    if dip_beat is not None:
        recovery = -1
        for sample in run.samples[dip_beat - run.samples[0].beat :]:
            perf = sample.normalized_performance
            if perf is not None and abs(perf - 1.0) <= 0.10:
                recovery = sample.beat - dip_beat
                break

    deviations = [
        (s.normalized_performance - 1.0) ** 2
        for s in run.samples
        if s.normalized_performance is not None
    ]
    rms = (sum(deviations) / len(deviations)) ** 0.5 if deviations else float("nan")

    switches = sum(
        1
        for previous, current in zip(run.settings_used, run.settings_used[1:])
        if current is not previous
    )
    return QuantumResult(
        quantum_beats=quantum,
        capped_performance=capped_mean,
        recovery_beats=recovery,
        performance_deviation=rms,
        setting_switches=switches,
    )


def run_quantum_ablation(
    name: str,
    scale: Scale = Scale.PAPER,
    quanta: tuple[int, ...] = DEFAULT_QUANTA,
) -> QuantumAblation:
    """Rerun the power-cap scenario once per quantum length."""
    if not quanta:
        raise ValueError("need at least one quantum length")
    spec = get_spec(name)
    system = built_system(name, scale)
    app_factory = spec.app_factory(scale)
    jobs = spec.control_jobs(scale)
    total_beats = sum(len(app_factory().prepare(job)) for job in jobs)
    cap_beat, lift_beat = total_beats // 4, 3 * total_beats // 4

    target = measure_baseline_rate(
        app_factory,
        jobs[0],
        experiment_machine(2.4),
        configuration=system.table.baseline.configuration.as_dict(),
    )

    results = []
    for quantum in quanta:
        events = [
            RuntimeEvent(cap_beat, lambda m: m.set_frequency(1.6), "power cap"),
            RuntimeEvent(lift_beat, lambda m: m.set_frequency(2.4), "cap lifted"),
        ]
        run = system.runtime(
            experiment_machine(2.4), target_rate=target, quantum_beats=quantum
        ).run(jobs, events=events)
        results.append(_summarize(run, quantum, cap_beat, lift_beat))
    return QuantumAblation(
        name=name, cap_beat=cap_beat, lift_beat=lift_beat, results=results
    )


def format_quantum_ablation(ablation: QuantumAblation) -> str:
    """The ablation as a paper-style table."""
    rows = [
        [
            str(r.quantum_beats),
            f"{r.capped_performance:.3f}",
            str(r.recovery_beats),
            f"{100 * r.performance_deviation:.2f}",
            str(r.setting_switches),
        ]
        for r in ablation.results
    ]
    header = (
        f"Ablation: time quantum on {ablation.name} "
        f"(cap at beat {ablation.cap_beat}, lift at {ablation.lift_beat})"
    )
    return f"{header}\n" + format_table(
        [
            "quantum (beats)",
            "capped perf",
            "recovery (beats)",
            "RMS error %",
            "setting switches",
        ],
        rows,
    )
