"""Experiment E-S51: control-system overhead (§5.1).

"We measure the overhead of the PowerDial control system by comparing the
performance of the benchmarks with and without the control system.  The
overhead ... is insignificant."

Two measurements per benchmark:

* **modeled overhead** — extra virtual *time* the controlled run takes
  versus the static run on identical inputs.  PowerDial adds no
  application work (it only pokes control variables), so this can only
  deviate from zero when measurement noise makes the controller nudge a
  knob — and a nudge speeds the run up, so overhead is never positive.
* **harness overhead** — wall-clock cost of the controller/actuator
  bookkeeping per heartbeat, reported as a fraction of item processing
  time, analogous to the paper's run-to-run comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.apps.base import run_job
from repro.core.powerdial import measure_baseline_rate
from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.registry import built_system, get_spec

__all__ = ["OverheadResult", "run_overhead", "format_overhead"]


@dataclass(frozen=True)
class OverheadResult:
    """Overhead measurements for one benchmark.

    Attributes:
        name: Benchmark name.
        static_seconds: Virtual duration of the uncontrolled run.
        controlled_seconds: Virtual duration of the PowerDial-controlled
            run on the same inputs, uncapped.
        modeled_overhead: Relative extra virtual time (<= 0 by mechanism;
            0 exactly when the controller never moves a knob).
        wall_static: Wall-clock seconds of the static run.
        wall_controlled: Wall-clock seconds of the controlled run.
    """

    name: str
    static_seconds: float
    controlled_seconds: float
    modeled_overhead: float
    wall_static: float
    wall_controlled: float

    @property
    def wall_overhead(self) -> float:
        """Relative wall-clock overhead of the control harness."""
        if self.wall_static == 0.0:
            return 0.0
        return (self.wall_controlled - self.wall_static) / self.wall_static


def run_overhead(name: str, scale: Scale = Scale.TINY) -> OverheadResult:
    """Measure control-system overhead for one benchmark."""
    spec = get_spec(name)
    system = built_system(name, scale)
    app_factory = spec.app_factory(scale)
    jobs = spec.control_jobs(scale)

    start = time.perf_counter()
    static_work = 0.0
    default = system.table.baseline.configuration.as_dict()
    probe = app_factory()
    for job in jobs:
        _, work, _ = run_job(app_factory(), default, job)
        static_work += work
    wall_static = time.perf_counter() - start

    reference = experiment_machine(2.4)
    static_seconds = reference.processor.seconds_for_work(
        static_work, threads=probe.threads()
    )

    machine = experiment_machine(2.4)
    target = measure_baseline_rate(
        app_factory,
        jobs[0],
        machine,
        configuration=system.table.baseline.configuration.as_dict(),
    )
    runtime = system.runtime(machine, target_rate=target)
    start = time.perf_counter()
    result = runtime.run(jobs)
    wall_controlled = time.perf_counter() - start
    controlled_seconds = machine.now

    modeled = (controlled_seconds - static_seconds) / static_seconds
    return OverheadResult(
        name=name,
        static_seconds=static_seconds,
        controlled_seconds=controlled_seconds,
        modeled_overhead=modeled,
        wall_static=wall_static,
        wall_controlled=wall_controlled,
    )


def format_overhead(results: list[OverheadResult]) -> str:
    """The §5.1 overhead table."""
    rows = [
        [
            r.name,
            f"{r.modeled_overhead * 100:+.3f}%",
            f"{r.wall_static:.2f}s",
            f"{r.wall_controlled:.2f}s",
            f"{r.wall_overhead * 100:+.1f}%",
        ]
        for r in results
    ]
    return (
        "Section 5.1: PowerDial control-system overhead\n"
        + format_table(
            ["Benchmark", "modeled time overhead", "static wall", "controlled wall", "harness wall overhead"],
            rows,
        )
    )
