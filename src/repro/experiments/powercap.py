"""Experiment E-F7: elastic response to power capping (Figure 7, §5.4).

Starts the application uncapped at 2.4 GHz with the target set to the
observed baseline heart rate; about one quarter of the way through, a
power cap drops the machine to 1.6 GHz; about three quarters through, the
cap lifts.  Three variants are run, matching the figure's three series:

* **dynamic knobs** — the PowerDial-controlled application (circles);
* **no knobs** — the same controller loop but a baseline-only knob table,
  so nothing can adapt (the x series);
* **baseline** — no power cap at all (black points).

Each run yields the Figure 7 time series (sliding-window performance
normalized to target, and knob gain) plus summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knobs import KnobTable
from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime, RunResult, RuntimeEvent
from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.registry import built_system, get_spec

__all__ = ["PowerCapExperiment", "run_powercap", "format_fig7"]


@dataclass
class PowerCapExperiment:
    """Figure 7 data for one benchmark.

    Attributes:
        name: Benchmark name.
        knobs: The PowerDial run under the cap.
        no_knobs: The uncontrollable run under the cap.
        baseline: The uncapped run.
        cap_beat: Beat at which the cap was imposed.
        lift_beat: Beat at which the cap was lifted.
    """

    name: str
    knobs: RunResult
    no_knobs: RunResult
    baseline: RunResult
    cap_beat: int
    lift_beat: int

    # -- summary statistics ------------------------------------------------
    def _mean_perf(self, result: RunResult, start: int, end: int) -> float:
        values = [
            s.normalized_performance
            for s in result.samples[start:end]
            if s.normalized_performance is not None
        ]
        return sum(values) / len(values) if values else float("nan")

    def capped_performance(self) -> tuple[float, float]:
        """Mean normalized performance during the cap, (knobs, no knobs).

        The first 40 capped beats are excluded as convergence transient.
        """
        start, end = self.cap_beat + 40, self.lift_beat
        return (
            self._mean_perf(self.knobs, start, end),
            self._mean_perf(self.no_knobs, start, end),
        )

    def mean_gain_during_cap(self) -> float:
        """Average knob gain while capped (the Figure 7 gain plateau)."""
        gains = [
            s.knob_gain for s in self.knobs.samples[self.cap_beat + 40 : self.lift_beat]
        ]
        return sum(gains) / len(gains) if gains else float("nan")

    def recovery_beats(self, tolerance: float = 0.10) -> int:
        """Beats after the cap until knobs restore performance to within
        ``tolerance`` of the target."""
        for sample in self.knobs.samples[self.cap_beat :]:
            perf = sample.normalized_performance
            if perf is not None and abs(perf - 1.0) <= tolerance:
                return sample.beat - self.cap_beat
        return -1

    def tail_gain(self) -> float:
        """Mean knob gain after the cap lifts (should return to ~1)."""
        total = len(self.knobs.samples)
        skip = min(20, max(0, (total - self.lift_beat) // 3))
        gains = [s.knob_gain for s in self.knobs.samples[self.lift_beat + skip :]]
        return sum(gains) / len(gains) if gains else float("nan")


def run_powercap(name: str, scale: Scale = Scale.PAPER) -> PowerCapExperiment:
    """Run the power-cap scenario for one benchmark."""
    spec = get_spec(name)
    system = built_system(name, scale)
    app_factory = spec.app_factory(scale)
    jobs = spec.control_jobs(scale)
    total_beats = sum(len(app_factory().prepare(job)) for job in jobs)
    cap_beat = total_beats // 4
    lift_beat = 3 * total_beats // 4

    reference = experiment_machine(2.4)
    target = measure_baseline_rate(
        app_factory,
        jobs[0],
        reference,
        configuration=system.table.baseline.configuration.as_dict(),
    )
    events = [
        RuntimeEvent(cap_beat, lambda m: m.set_frequency(1.6), "power cap"),
        RuntimeEvent(lift_beat, lambda m: m.set_frequency(2.4), "cap lifted"),
    ]

    knobs_run = system.runtime(experiment_machine(2.4), target_rate=target).run(
        jobs, events=events
    )

    baseline_table = KnobTable([system.table.baseline])
    no_knobs_runtime = PowerDialRuntime(
        app=app_factory(),
        table=baseline_table,
        machine=experiment_machine(2.4),
        target_rate=target,
    )
    no_knobs_run = no_knobs_runtime.run(jobs, events=events)

    baseline_runtime = PowerDialRuntime(
        app=app_factory(),
        table=baseline_table,
        machine=experiment_machine(2.4),
        target_rate=target,
    )
    baseline_run = baseline_runtime.run(jobs)

    return PowerCapExperiment(
        name=name,
        knobs=knobs_run,
        no_knobs=no_knobs_run,
        baseline=baseline_run,
        cap_beat=cap_beat,
        lift_beat=lift_beat,
    )


def format_fig7(experiment: PowerCapExperiment, series_points: int = 12) -> str:
    """Figure 7 panel as text: downsampled series plus summary lines."""
    samples = experiment.knobs.samples
    stride = max(1, len(samples) // series_points)
    rows = []
    for sample in samples[::stride]:
        perf = sample.normalized_performance
        rows.append(
            [
                sample.beat,
                f"{sample.time:.1f}",
                "-" if perf is None else f"{perf:.2f}",
                f"{sample.knob_gain:.2f}",
                f"{sample.frequency_ghz:.2f}",
            ]
        )
    knobs_perf, no_knobs_perf = experiment.capped_performance()
    summary = (
        f"Figure 7 ({experiment.name}): cap at beat {experiment.cap_beat}, "
        f"lift at beat {experiment.lift_beat}\n"
        f"  capped performance with knobs:    {knobs_perf:.3f} of target\n"
        f"  capped performance without knobs: {no_knobs_perf:.3f} of target\n"
        f"  mean knob gain during cap:        {experiment.mean_gain_during_cap():.2f}\n"
        f"  recovery after cap:               {experiment.recovery_beats()} beats\n"
        f"  knob gain after cap lifts:        {experiment.tail_gain():.2f}"
    )
    table = format_table(
        ["beat", "time s", "norm. perf", "knob gain", "freq GHz"], rows
    )
    return f"{summary}\n{table}"
