"""Experiment E-T1: training and production inputs (Table 1, §4).

Summarizes the generated workloads per benchmark: how many training and
production units each split holds and where they come from (synthetic
generators standing in for PARSEC / xiph.org / Project Gutenberg data —
see DESIGN.md substitution 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Scale, format_table
from repro.experiments.registry import APP_SPECS

__all__ = ["InputSummary", "summarize_inputs", "format_table1"]

_SOURCES = {
    "swaptions": "seeded generator (PARSEC-style randomized swaptions)",
    "x264": "seeded synthetic video (objects + pan + noise)",
    "bodytrack": "seeded gait sequences, 2 virtual cameras",
    "swish++": "Zipf corpus + power-law queries (Middleton & Baeza-Yates)",
}

_UNITS = {
    "swaptions": "swaptions",
    "x264": "frames",
    "bodytrack": "frames",
    "swish++": "queries",
}


@dataclass(frozen=True)
class InputSummary:
    """Table 1 row for one benchmark."""

    name: str
    training_units: int
    production_units: int
    unit: str
    source: str


def _count_units(name: str, jobs: list) -> int:
    spec = APP_SPECS[name]
    total = 0
    for job in jobs:
        app = spec.app_factory(Scale.TINY)()
        total += len(app.prepare(job))
    return total


def summarize_inputs(scale: Scale = Scale.PAPER) -> list[InputSummary]:
    """Build the Table 1 rows by generating each benchmark's splits."""
    rows = []
    for name, spec in APP_SPECS.items():
        rows.append(
            InputSummary(
                name=name,
                training_units=_count_units(name, spec.training_jobs(scale)),
                production_units=_count_units(name, spec.production_jobs(scale)),
                unit=_UNITS[name],
                source=_SOURCES[name],
            )
        )
    return rows


def format_table1(summaries: list[InputSummary]) -> str:
    """Table 1 as text."""
    rows = [
        [
            s.name,
            f"{s.training_units} {s.unit}",
            f"{s.production_units} {s.unit}",
            s.source,
        ]
        for s in summaries
    ]
    return "Table 1: training and production inputs\n" + format_table(
        ["Benchmark", "Training Inputs", "Production Inputs", "Source"], rows
    )
