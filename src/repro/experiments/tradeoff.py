"""Experiment E-F5 / E-T2: the trade-off space (Figure 5, Table 2, §5.2).

Calibrates each benchmark over its knob space on the training inputs
(the gray dots of Figure 5), extracts the Pareto frontier (black
squares), re-measures the frontier configurations on the production
inputs (white squares), and computes the Table 2 correlation
coefficients between training and production behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import TradeoffPoint, evaluate_points
from repro.experiments.common import Scale, format_table
from repro.experiments.registry import built_system, get_spec

__all__ = [
    "TradeoffExperiment",
    "run_tradeoff",
    "correlation",
    "format_fig5",
    "format_table2",
]


def correlation(training: list[float], production: list[float]) -> float:
    """Correlation coefficient of the training-to-production fit (Table 2).

    Degenerate (zero-variance) series correlate perfectly when they agree
    and not at all when they differ — the right reading of "behavior on
    training inputs predicts behavior on production inputs".
    """
    train = np.asarray(training, dtype=float)
    prod = np.asarray(production, dtype=float)
    if train.shape != prod.shape or train.size < 2:
        raise ValueError("correlation needs two same-length series (n >= 2)")
    if np.std(train) < 1e-12 or np.std(prod) < 1e-12:
        return 1.0 if np.allclose(train, prod, atol=1e-9) else 0.0
    return float(np.corrcoef(train, prod)[0, 1])


@dataclass
class TradeoffExperiment:
    """Results of the Figure 5 / Table 2 experiment for one benchmark.

    Attributes:
        name: Benchmark name.
        training_points: Every explored combination (gray dots).
        pareto_training: Pareto-optimal combinations (black squares).
        pareto_production: The same combinations re-measured on the
            production inputs (white squares).
        speedup_correlation: Table 2 speedup column.
        qos_correlation: Table 2 QoS-loss column.
    """

    name: str
    training_points: list[TradeoffPoint]
    pareto_training: list[TradeoffPoint]
    pareto_production: list[TradeoffPoint]
    speedup_correlation: float
    qos_correlation: float

    @property
    def max_speedup(self) -> float:
        """Largest Pareto speedup (the §5.2 headline number)."""
        return max(point.speedup for point in self.pareto_training)


def run_tradeoff(name: str, scale: Scale = Scale.PAPER) -> TradeoffExperiment:
    """Run the trade-off exploration for one benchmark."""
    spec = get_spec(name)
    system = built_system(name, scale)
    calibration = system.calibration
    pareto = calibration.pareto_points()
    production = evaluate_points(
        spec.app_factory(scale),
        [point.configuration for point in pareto],
        spec.production_jobs(scale),
    )
    return TradeoffExperiment(
        name=name,
        training_points=list(calibration.points),
        pareto_training=pareto,
        pareto_production=production,
        speedup_correlation=correlation(
            [p.speedup for p in pareto], [p.speedup for p in production]
        ),
        qos_correlation=correlation(
            [p.qos_loss for p in pareto], [p.qos_loss for p in production]
        ),
    )


def format_fig5(experiment: TradeoffExperiment) -> str:
    """Figure 5 panel as text: the Pareto series, training vs production."""
    rows = []
    for train, prod in zip(
        experiment.pareto_training, experiment.pareto_production
    ):
        rows.append(
            [
                dict(train.configuration),
                f"{train.speedup:.3f}",
                f"{100 * train.qos_loss:.3f}",
                f"{prod.speedup:.3f}",
                f"{100 * prod.qos_loss:.3f}",
            ]
        )
    table = format_table(
        [
            "pareto knob setting",
            "speedup (train)",
            "qos loss % (train)",
            "speedup (prod)",
            "qos loss % (prod)",
        ],
        rows,
    )
    header = (
        f"Figure 5 ({experiment.name}): {len(experiment.training_points)} "
        f"explored settings, {len(experiment.pareto_training)} Pareto-optimal, "
        f"max speedup {experiment.max_speedup:.1f}x"
    )
    return f"{header}\n{table}"


def format_table2(experiments: list[TradeoffExperiment]) -> str:
    """Table 2: correlation of training and production behavior."""
    rows = [
        [e.name, f"{e.speedup_correlation:.3f}", f"{e.qos_correlation:.3f}"]
        for e in experiments
    ]
    return "Table 2: training-vs-production correlation\n" + format_table(
        ["Benchmark", "Speedup", "QoS Loss"], rows
    )
