"""Experiment E-F8: peak-load provisioning (Figure 8, §5.5).

Provisions a baseline system for peak load (4 machines for the PARSEC
benchmarks, 3 for swish++), uses Equation 21 with the benchmark's QoS
bound to provision the consolidated system (1 machine PARSEC, 2 swish++),
then sweeps utilization from 0 to 100% of the original system's peak,
recording the power of both systems and the consolidated system's QoS
loss — the three series of each Figure 8 panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.system import ClusterSpec, evaluate_system
from repro.cluster.workload import utilization_sweep
from repro.experiments.common import Scale, format_table
from repro.experiments.registry import built_system, get_spec
from repro.models.consolidation import machines_required
from repro.models.costs import CostModel, deployment_cost

__all__ = [
    "ConsolidationPoint",
    "ConsolidationExperiment",
    "run_consolidation",
    "format_fig8",
]


@dataclass(frozen=True)
class ConsolidationPoint:
    """One utilization level's measurements (one x of Figure 8).

    Attributes:
        utilization: Offered load relative to the original system's peak.
        original_power: Baseline pool power (circles).
        consolidated_power: Knob-augmented pool power (black dots).
        qos_loss: Consolidated system's mean QoS loss (solid line).
        performance_factor: Consolidated delivered/target performance.
    """

    utilization: float
    original_power: float
    consolidated_power: float
    qos_loss: float
    performance_factor: float


@dataclass
class ConsolidationExperiment:
    """Figure 8 data for one benchmark."""

    name: str
    original_machines: int
    consolidated_machines: int
    qos_bound: float
    bounded_speedup: float
    points: list[ConsolidationPoint]

    def savings_at(self, utilization: float) -> tuple[float, float]:
        """(watts saved, fraction saved) at the nearest swept level."""
        point = min(self.points, key=lambda p: abs(p.utilization - utilization))
        saved = point.original_power - point.consolidated_power
        return saved, saved / point.original_power

    def peak_qos_loss(self) -> float:
        """QoS loss needed to absorb the full peak on the small system."""
        return max(point.qos_loss for point in self.points)

    def lifetime_costs(
        self,
        typical_utilization: float = 0.25,
        peak_power_per_machine: float = 220.0,
        model: CostModel | None = None,
    ) -> tuple[float, float]:
        """Lifetime TCO of (original, consolidated) at a typical load.

        Section 3: data centers run at 20-30% average utilization, and
        over the facility lifetime capital costs can exceed energy.  The
        mean draw comes from the measured sweep point nearest
        ``typical_utilization``; provisioning is sized for each pool's
        peak.
        """
        point = min(
            self.points, key=lambda p: abs(p.utilization - typical_utilization)
        )
        model = model or CostModel()
        original = deployment_cost(
            self.original_machines,
            point.original_power,
            self.original_machines * peak_power_per_machine,
            model,
        )
        consolidated = deployment_cost(
            self.consolidated_machines,
            point.consolidated_power,
            self.consolidated_machines * peak_power_per_machine,
            model,
        )
        return original.total, consolidated.total


def run_consolidation(
    name: str, scale: Scale = Scale.PAPER, sweep_points: int = 11
) -> ConsolidationExperiment:
    """Run the Figure 8 sweep for one benchmark."""
    spec = get_spec(name)
    system = built_system(name, scale)
    # Equation 21 provisioning under the QoS bound.
    bounded = system.table.with_qos_cap(spec.qos_bound)
    speedup = bounded.max_speedup
    n_new = machines_required(spec.cluster_machines, speedup)

    original = ClusterSpec(
        machines=spec.cluster_machines, slots_per_machine=spec.cluster_slots
    )
    consolidated = ClusterSpec(
        machines=n_new, slots_per_machine=spec.cluster_slots
    )
    peak_instances = original.peak_instances

    points = []
    for utilization in utilization_sweep(sweep_points):
        load = utilization * peak_instances
        base_point = evaluate_system(original, load)
        cons_point = evaluate_system(consolidated, load, table=bounded)
        points.append(
            ConsolidationPoint(
                utilization=utilization,
                original_power=base_point.power_watts,
                consolidated_power=cons_point.power_watts,
                qos_loss=cons_point.qos_loss,
                performance_factor=cons_point.performance_factor,
            )
        )
    return ConsolidationExperiment(
        name=name,
        original_machines=spec.cluster_machines,
        consolidated_machines=n_new,
        qos_bound=spec.qos_bound,
        bounded_speedup=speedup,
        points=points,
    )


def format_fig8(experiment: ConsolidationExperiment) -> str:
    """Figure 8 panel as text."""
    rows = [
        [
            f"{p.utilization:.1f}",
            f"{p.original_power:.0f}",
            f"{p.consolidated_power:.0f}",
            f"{100 * p.qos_loss:.2f}",
            f"{p.performance_factor:.3f}",
        ]
        for p in experiment.points
    ]
    saved_quarter, frac_quarter = experiment.savings_at(0.25)
    saved_peak, frac_peak = experiment.savings_at(1.0)
    tco_original, tco_consolidated = experiment.lifetime_costs()
    header = (
        f"Figure 8 ({experiment.name}): {experiment.original_machines} -> "
        f"{experiment.consolidated_machines} machines "
        f"(S={experiment.bounded_speedup:.2f} at QoS bound "
        f"{100 * experiment.qos_bound:.0f}%)\n"
        f"  at 25% utilization: {saved_quarter:.0f} W saved "
        f"({100 * frac_quarter:.0f}%)\n"
        f"  at peak: {saved_peak:.0f} W saved ({100 * frac_peak:.0f}%), "
        f"QoS loss {100 * experiment.peak_qos_loss():.2f}%\n"
        f"  lifetime TCO at 25% utilization (Section 3 cost model): "
        f"${tco_original:,.0f} -> ${tco_consolidated:,.0f} "
        f"({100 * (1 - tco_consolidated / tco_original):.0f}% saved)"
    )
    return f"{header}\n" + format_table(
        ["util", "orig W", "consol W", "qos loss %", "perf"], rows
    )
