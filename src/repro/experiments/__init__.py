"""Experiment harness: one module per paper table/figure (Section 5).

See DESIGN.md's per-experiment index for the mapping from paper artifact
to module and bench target.
"""

from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.controllers import (
    ControllerAblation,
    ControllerResult,
    format_controller_ablation,
    run_controller_ablation,
)
from repro.experiments.consolidation import (
    ConsolidationExperiment,
    ConsolidationPoint,
    format_fig8,
    run_consolidation,
)
from repro.experiments.catalog import ARTIFACTS, Artifact, PER_APP_ARTIFACTS
from repro.experiments.datacenter import (
    DatacenterExperiment,
    TenantScenario,
    billing_payload,
    default_tenant_mix,
    format_datacenter,
    format_datacenter_bills,
    format_replay,
    format_replay_bills,
    replay_billing_payload,
    run_datacenter,
)
from repro.experiments.energy_models import (
    EnergyScenario,
    format_fig34,
    run_energy_models,
)
from repro.experiments.inputs import InputSummary, format_table1, summarize_inputs
from repro.experiments.overhead import OverheadResult, format_overhead, run_overhead
from repro.experiments.power_qos import (
    PowerQosExperiment,
    PowerQosPoint,
    format_fig6,
    run_power_qos,
)
from repro.experiments.powercap import (
    PowerCapExperiment,
    format_fig7,
    run_powercap,
)
from repro.experiments.quantum import (
    QuantumAblation,
    QuantumResult,
    format_quantum_ablation,
    run_quantum_ablation,
)
from repro.experiments.registry import (
    APP_SPECS,
    AppSpec,
    built_service_system,
    built_system,
    get_spec,
)
from repro.experiments.sla import (
    SlaExperiment,
    SlaSeries,
    format_sla,
    run_sla,
)
from repro.experiments.tradeoff import (
    TradeoffExperiment,
    correlation,
    format_fig5,
    format_table2,
    run_tradeoff,
)

__all__ = [
    "Scale",
    "experiment_machine",
    "format_table",
    "AppSpec",
    "APP_SPECS",
    "get_spec",
    "built_system",
    "TradeoffExperiment",
    "run_tradeoff",
    "correlation",
    "format_fig5",
    "format_table2",
    "PowerQosExperiment",
    "PowerQosPoint",
    "run_power_qos",
    "format_fig6",
    "PowerCapExperiment",
    "run_powercap",
    "format_fig7",
    "ConsolidationExperiment",
    "ConsolidationPoint",
    "run_consolidation",
    "format_fig8",
    "DatacenterExperiment",
    "TenantScenario",
    "default_tenant_mix",
    "run_datacenter",
    "format_datacenter",
    "format_datacenter_bills",
    "format_replay",
    "format_replay_bills",
    "billing_payload",
    "replay_billing_payload",
    "ARTIFACTS",
    "Artifact",
    "PER_APP_ARTIFACTS",
    "built_service_system",
    "InputSummary",
    "summarize_inputs",
    "format_table1",
    "EnergyScenario",
    "run_energy_models",
    "format_fig34",
    "OverheadResult",
    "run_overhead",
    "format_overhead",
    "ControllerAblation",
    "ControllerResult",
    "run_controller_ablation",
    "format_controller_ablation",
    "QuantumAblation",
    "QuantumResult",
    "run_quantum_ablation",
    "format_quantum_ablation",
    "SlaExperiment",
    "SlaSeries",
    "run_sla",
    "format_sla",
]
