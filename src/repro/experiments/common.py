"""Shared experiment infrastructure: machines, scales, formatting.

Experiments run on simulated machines whose throughput constant is chosen
so that one main-loop item takes tens to hundreds of milliseconds of
virtual time — the heartbeat granularity of the paper's benchmarks — so
the 1 Hz power meter and the 20-beat control quantum behave as they did
on the authors' testbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.hardware.cpu import Processor
from repro.hardware.machine import Machine

__all__ = [
    "Scale",
    "experiment_machine",
    "EXPERIMENT_THROUGHPUT",
    "format_table",
]

EXPERIMENT_THROUGHPUT = 1.0e6
"""Work units per GHz-second on experiment machines (see module doc)."""


class Scale(enum.Enum):
    """Experiment scale presets.

    TINY keeps unit tests fast; PAPER is the scale the benchmark harness
    regenerates the paper's tables and figures at.
    """

    TINY = "tiny"
    PAPER = "paper"


def experiment_machine(frequency_ghz: float = 2.4) -> Machine:
    """A fresh experiment server in the requested initial P-state."""
    machine = Machine(
        processor=Processor(work_units_per_ghz_second=EXPERIMENT_THROUGHPUT)
    )
    machine.set_frequency(frequency_ghz)
    return machine


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (the bench harness's output)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = [line(list(headers)), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)
