"""Experiment E-DC: multi-tenant serving under a global power budget.

The scenario the paper's §5.4 (power capping) and §5.5 (consolidation)
point at but never run: several live PowerDial instances, mixed traffic
shapes, one facility power budget.  The experiment executes the *same*
tenant mix — identical arrival traces, identical request contents —
twice through the event-driven engine:

* **static-equal** — the budget split evenly across machines, the
  baseline of a cluster without runtime knowledge;
* the chosen ``--policy`` — **sla-aware** (the hierarchical arbiter
  reallocating watts each period toward machines whose tenants are
  missing their latency SLAs; the default), **migrating** (SLA-aware
  caps plus cold instance migration off cap-ceiling-saturated
  machines), or **consolidating** (SLA-aware caps plus warm
  pack/spread placement: demand troughs pack tenants onto fewer
  machines with live migrations and park the emptied machines at
  their cap floor; returning load spreads them back out).

Either side can additionally run under a ``--budget-trace`` — a
timestamped schedule of fleet-wide budget levels (the §5.4 cap event
fleet-wide), applied identically to both runs.

The default mix stresses the interesting asymmetry: machine 0 hosts two
light, accuracy-tolerant tenants (a diurnal search front-end and a
bursty analytics stream) whose dynamic knobs absorb whatever frequency
they are given, while machine 1 hosts a heavily loaded *knob-poor*
billing tenant (exact service — baseline setting only) that can only be
helped with power, next to an accuracy-tolerant reports tenant.  The
SLA-aware arbiter finds that structure at runtime through the SLA
signal alone.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.core.powerdial import measure_baseline_rate
from repro.core.runtime import PowerDialRuntime
from repro.datacenter.controlplane import (
    BudgetSchedule,
    ChaosPolicy,
    ControlError,
    DegradedModePolicy,
    build_policy,
)
from repro.datacenter.engine import (
    DatacenterEngine,
    DatacenterResult,
    InstanceBinding,
)
from repro.datacenter.faults import FaultPlan
from repro.datacenter.journal import (
    CODEC_VERSION,
    JournalWriter,
    encode_bill,
    journaled_run,
    register_scenario_builder,
)
from repro.datacenter.service import ServiceApp, request_stream, service_training_jobs
from repro.datacenter.tenants import LatencySLA, TenantSpec
from repro.datacenter.traffic import (
    TrafficTrace,
    burst_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.experiments.common import Scale, experiment_machine, format_table
from repro.experiments.registry import built_service_system

__all__ = [
    "TenantScenario",
    "DatacenterExperiment",
    "default_tenant_mix",
    "build_engine",
    "build_engine_from_config",
    "scenario_config",
    "run_datacenter",
    "format_datacenter",
    "billing_payload",
    "format_datacenter_bills",
    "replay_billing_payload",
    "format_replay",
    "format_replay_bills",
]

DEFAULT_BUDGET_WATTS = 420.0
"""Default facility budget for two machines (floor ≈ 366 W, peak 440 W)."""


@dataclass(frozen=True)
class TenantScenario:
    """Declarative description of one tenant in a scenario.

    Attributes:
        name: Tenant identifier.
        machine_index: Placement in the machine pool.
        trace_kind: ``steady`` (Poisson), ``diurnal``, or ``burst``.
        rate: Mean rate for ``steady``; peak rate for the other shapes.
        qos_cap: Accuracy tolerance (None = full knob table; 0.0 =
            knob-poor exact service).
        latency_bound: SLA latency bound in seconds.
        attainment_target: Required fraction within the bound.
        weight: Arbitration priority.
        seed: Trace and request-content seed.
    """

    name: str
    machine_index: int
    trace_kind: str
    rate: float
    qos_cap: float | None = None
    latency_bound: float = 1.0
    attainment_target: float = 0.9
    weight: float = 1.0
    seed: int = 0

    def trace(self, horizon: float) -> TrafficTrace:
        """Materialize this tenant's arrival trace over ``horizon``."""
        if self.trace_kind == "steady":
            return poisson_trace(
                self.rate, horizon, seed=self.seed, name="steady"
            )
        if self.trace_kind == "diurnal":
            return diurnal_trace(
                self.rate, horizon, period=90.0, seed=self.seed
            )
        if self.trace_kind == "burst":
            return burst_trace(
                0.15 * self.rate, self.rate, horizon, seed=self.seed
            )
        raise ValueError(f"unknown trace kind {self.trace_kind!r}")


def default_tenant_mix() -> tuple[TenantScenario, ...]:
    """The four-tenant, two-machine mix described in the module doc."""
    return (
        TenantScenario(
            "search", 0, "diurnal", rate=1.5, qos_cap=None, seed=1
        ),
        TenantScenario(
            "analytics", 0, "burst", rate=2.0, qos_cap=None, seed=2
        ),
        TenantScenario(
            "billing", 1, "steady", rate=2.8, qos_cap=0.0, weight=3.0, seed=3
        ),
        TenantScenario(
            "reports", 1, "steady", rate=1.0, qos_cap=None, seed=4
        ),
    )


def build_engine(
    tenants: tuple[TenantScenario, ...],
    machines_count: int,
    horizon: float,
    budget_watts: float | None,
    policy: str,
    control_period: float = 10.0,
    attainment_window: float = 20.0,
    backend: str = "serial",
    workers: int | None = None,
    budget_trace: BudgetSchedule | None = None,
    journal: JournalWriter | None = None,
    chaos_kills: int = 0,
    chaos_seed: int = 0,
    faults: FaultPlan | None = None,
    step_mode: str = "scalar",
) -> DatacenterEngine:
    """Assemble machines, instances, and control policy for one run.

    ``policy`` is a :data:`~repro.datacenter.controlplane.policy.
    POLICY_NAMES` name; ``budget_trace`` (if given) drives the global
    budget through the scheduled watt levels.  Every binding carries a
    ``runtime_factory`` so the ``migrating`` policy can rebuild
    instances on their destination machines.  ``journal`` attaches a
    :class:`~repro.datacenter.journal.writer.JournalWriter` to the
    engine; ``chaos_kills`` > 0 wraps the policy in a
    :class:`~repro.datacenter.controlplane.policy.ChaosPolicy` that
    kills that many machines at ``chaos_seed``-derived barriers.

    ``faults`` attaches a :class:`~repro.datacenter.faults.FaultPlan`
    to the engine (gray-failure injection): its kill schedule is
    applied through a :class:`~repro.datacenter.controlplane.policy.
    ChaosPolicy` wrapper, and the whole policy stack is wrapped in a
    :class:`~repro.datacenter.controlplane.policy.DegradedModePolicy`
    so control degrades gracefully (hold stale, quarantine
    unresponsive, reintegrate with hysteresis) instead of acting on
    faulted observations.
    """
    system = built_service_system()
    machines = [experiment_machine() for _ in range(machines_count)]
    target = measure_baseline_rate(
        ServiceApp, service_training_jobs()[0], machines[0]
    )
    bindings = []
    for index, tenant in enumerate(tenants):
        table = (
            system.table
            if tenant.qos_cap is None
            else system.table.with_qos_cap(tenant.qos_cap)
        )

        def make_runtime(machine, table=table):
            return PowerDialRuntime(
                app=ServiceApp(),
                table=table,
                machine=machine,
                target_rate=target,
            )

        spec = TenantSpec(
            name=tenant.name,
            trace=tenant.trace(horizon),
            sla=LatencySLA(tenant.latency_bound, tenant.attainment_target),
            job_factory=request_stream(seed=100 + index),
            qos_cap=tenant.qos_cap,
            weight=tenant.weight,
        )
        bindings.append(
            InstanceBinding(
                tenant=spec,
                runtime=make_runtime(machines[tenant.machine_index]),
                machine_index=tenant.machine_index,
                runtime_factory=make_runtime,
            )
        )
    control_policy = None
    if budget_watts is not None:
        control_policy = build_policy(
            policy, budget_watts, machines, schedule=budget_trace
        )
    if chaos_kills > 0:
        if control_policy is None:
            raise ControlError(
                "chaos injection requires a control policy: "
                "pass a budget so a policy exists to wrap"
            )
        control_policy = ChaosPolicy(
            control_policy, kills=chaos_kills, seed=chaos_seed
        )
    if faults is not None:
        if control_policy is None:
            raise ControlError(
                "fault injection requires a control policy: "
                "pass a budget so a policy exists to wrap"
            )
        if faults.kills:
            control_policy = ChaosPolicy(
                control_policy,
                seed=faults.seed,
                kill_times=faults.kills,
            )
        control_policy = DegradedModePolicy(control_policy)
    return DatacenterEngine(
        machines,
        bindings,
        policy=control_policy,
        control_period=control_period,
        attainment_window=attainment_window,
        backend=backend,
        workers=workers,
        journal=journal,
        faults=faults,
        step_mode=step_mode,
    )


def scenario_config(
    tenants: tuple[TenantScenario, ...],
    machines: int,
    horizon: float,
    budget_watts: float,
    policy: str,
    control_period: float = 10.0,
    attainment_window: float = 20.0,
    budget_trace: BudgetSchedule | None = None,
    chaos: Mapping[str, int] | None = None,
    faults: FaultPlan | None = None,
) -> dict[str, Any]:
    """The plain-JSON scenario description a journal header embeds.

    Everything :func:`build_engine_from_config` needs to rebuild the
    arbitrated engine of a :func:`run_datacenter` invocation — tenant
    mix (seeds included), pool size, horizon, budget, policy name,
    control cadence, budget schedule, chaos parameters, and the full
    fault plan (:meth:`~repro.datacenter.faults.FaultPlan.to_config`)
    — as JSON-native types only.
    """
    return {
        "tenants": [asdict(tenant) for tenant in tenants],
        "machines": machines,
        "horizon": horizon,
        "budget_watts": budget_watts,
        "policy": policy,
        "control_period": control_period,
        "attainment_window": attainment_window,
        "budget_trace": (
            [[at, watts] for at, watts in budget_trace.entries]
            if budget_trace is not None
            else None
        ),
        "chaos": dict(chaos) if chaos else None,
        "faults": faults.to_config() if faults is not None else None,
    }


def build_engine_from_config(
    config: Mapping[str, Any],
    backend: str = "serial",
    workers: int | None = None,
    journal: JournalWriter | None = None,
    step_mode: str = "scalar",
) -> DatacenterEngine:
    """Rebuild an engine from a :func:`scenario_config` dict.

    The registered ``datacenter-experiment`` scenario builder: journal
    headers written by :func:`run_datacenter` point here so ``replay``
    and ``resume`` can reconstruct the engine from the journal alone.
    """
    tenants = tuple(
        TenantScenario(**tenant) for tenant in config["tenants"]
    )
    budget_trace = None
    if config.get("budget_trace") is not None:
        budget_trace = BudgetSchedule(
            tuple(
                (float(at), float(watts))
                for at, watts in config["budget_trace"]
            )
        )
    chaos = config.get("chaos") or {}
    faults = None
    if config.get("faults") is not None:
        faults = FaultPlan.from_config(config["faults"])
    return build_engine(
        tenants,
        config["machines"],
        config["horizon"],
        config["budget_watts"],
        config["policy"],
        control_period=config.get("control_period", 10.0),
        attainment_window=config.get("attainment_window", 20.0),
        backend=backend,
        workers=workers,
        budget_trace=budget_trace,
        journal=journal,
        chaos_kills=int(chaos.get("kills", 0)),
        chaos_seed=int(chaos.get("seed", 0)),
        faults=faults,
        step_mode=step_mode,
    )


register_scenario_builder("datacenter-experiment", build_engine_from_config)


@dataclass
class DatacenterExperiment:
    """Static-vs-arbitrated comparison on one tenant mix.

    ``policy`` names the control policy of the arbitrated side
    (``static-equal`` is always the baseline side); ``budget_trace``
    (when set) drove both runs' budgets through the same schedule.
    """

    tenants: tuple[TenantScenario, ...]
    machines: int
    budget_watts: float
    horizon: float
    static: DatacenterResult
    arbitrated: DatacenterResult
    policy: str = "sla-aware"
    budget_trace: BudgetSchedule | None = None

    def attainment_delta(self, name: str) -> float:
        """Arbitrated minus static SLA attainment for one tenant."""
        return (
            self.arbitrated.report_for(name).attainment
            - self.static.report_for(name).attainment
        )

    def best_improvement(self) -> tuple[str, float]:
        """The tenant the arbiter helped most, and by how much."""
        return max(
            ((t.name, self.attainment_delta(t.name)) for t in self.tenants),
            key=lambda pair: pair[1],
        )


def run_datacenter(
    scale: Scale = Scale.PAPER,
    budget_watts: float = DEFAULT_BUDGET_WATTS,
    tenants: tuple[TenantScenario, ...] | None = None,
    machines: int = 2,
    backend: str = "serial",
    workers: int | None = None,
    policy: str = "sla-aware",
    budget_trace: BudgetSchedule | None = None,
    journal: str | None = None,
    chaos: int = 0,
    chaos_seed: int = 0,
    faults: FaultPlan | None = None,
    step_mode: str = "scalar",
) -> DatacenterExperiment:
    """Run the tenant mix under static-equal and the chosen policy.

    ``backend``/``workers`` select the engine execution backend (the
    sharded backend produces identical results to serial, so the
    comparison is backend-invariant).  ``policy`` picks the arbitrated
    side (``sla-aware``, ``migrating``, or ``consolidating``);
    ``budget_trace`` applies the same budget schedule to both sides.

    ``journal`` (a path) records the *arbitrated* run — the baseline
    side is untouched — as a deterministic NDJSON journal that
    :func:`repro.datacenter.journal.replay` re-executes byte-exactly.
    ``chaos`` > 0 kills that many machines mid-run (seeded by
    ``chaos_seed``) on the arbitrated side only, rebuilding the
    victims' tenants on survivors from barrier checkpoints.
    ``faults`` injects a gray-failure plan (sensor, actuator,
    straggler, and kill windows) on the arbitrated side only; the
    plan is embedded in the journal header so replay reproduces the
    faulted run byte-exactly.
    """
    tenants = tenants if tenants is not None else default_tenant_mix()
    horizon = 40.0 if scale is Scale.TINY else 120.0
    writer = None
    if journal is not None:
        config = scenario_config(
            tenants,
            machines,
            horizon,
            budget_watts,
            policy,
            budget_trace=budget_trace,
            chaos=(
                {"kills": chaos, "seed": chaos_seed} if chaos > 0 else None
            ),
            faults=faults,
        )
        writer = JournalWriter(
            journal,
            {
                "scenario": {
                    "builder": "datacenter-experiment",
                    "module": "repro.experiments.datacenter",
                    "config": config,
                },
                "backend": backend,
                "workers": workers,
                "initial_budget_watts": budget_watts,
            },
        )
    static = build_engine(
        tenants,
        machines,
        horizon,
        budget_watts,
        "static-equal",
        backend=backend,
        workers=workers,
        budget_trace=budget_trace,
        step_mode=step_mode,
    ).run()
    arbitrated_engine = build_engine(
        tenants,
        machines,
        horizon,
        budget_watts,
        policy,
        backend=backend,
        workers=workers,
        budget_trace=budget_trace,
        journal=writer,
        chaos_kills=chaos,
        chaos_seed=chaos_seed,
        faults=faults,
        step_mode=step_mode,
    )
    if writer is not None:
        try:
            arbitrated = journaled_run(arbitrated_engine, writer)
        finally:
            writer.close()
    else:
        arbitrated = arbitrated_engine.run()
    return DatacenterExperiment(
        tenants=tenants,
        machines=machines,
        budget_watts=budget_watts,
        horizon=horizon,
        static=static,
        arbitrated=arbitrated,
        policy=policy,
        budget_trace=budget_trace,
    )


def _policy_billing(result: DatacenterResult) -> dict[str, Any]:
    """One policy's bills plus the energy-conservation accounting.

    Bills go through the journal codec's :func:`~repro.datacenter.
    journal.codec.encode_bill` — the one serialization shared with
    journal result records, so ``--bill`` output and journaled bills
    compare byte-for-byte.
    """
    return {
        "bills": [encode_bill(bill) for bill in result.bills],
        "idle_energy_joules_per_machine": list(result.idle_energy_joules),
        "energy_conservation": result.energy_conservation(),
    }


def billing_payload(experiment: DatacenterExperiment) -> dict[str, Any]:
    """The ``--bill`` JSON document: per-tenant bills for both policies.

    Floats are emitted untouched, so two runs of the same scenario on
    different backends (serial vs sharded) serialize to byte-identical
    JSON — the cross-backend billing contract, testable end to end from
    the CLI.
    """
    # `--policy static-equal` would collide with the baseline's key;
    # suffix the compared run so both sides stay in the document.
    compared = experiment.policy
    if compared == "static-equal":
        compared = "static-equal-rerun"
    return {
        "artifact": "datacenter-billing",
        "codec": CODEC_VERSION,
        "budget_watts": experiment.budget_watts,
        "machines": experiment.machines,
        "horizon_seconds": experiment.horizon,
        "tenants": [tenant.name for tenant in experiment.tenants],
        "policies": {
            "static-equal": _policy_billing(experiment.static),
            compared: _policy_billing(experiment.arbitrated),
        },
    }


def format_datacenter_bills(experiment: DatacenterExperiment) -> str:
    """Render :func:`billing_payload` as deterministic, indented JSON."""
    return json.dumps(billing_payload(experiment), indent=2, sort_keys=True)


def replay_billing_payload(result: DatacenterResult) -> dict[str, Any]:
    """The ``replay --bill`` JSON document: bills of the replayed run.

    Deliberately free of backend, worker-count, and path provenance,
    so replaying one journal on the serial and sharded backends emits
    byte-identical documents — the CI replay-parity check diffs them
    directly.
    """
    return {
        "artifact": "datacenter-replay-billing",
        "codec": CODEC_VERSION,
        **_policy_billing(result),
    }


def format_replay_bills(result: DatacenterResult) -> str:
    """Render :func:`replay_billing_payload` as deterministic JSON."""
    return json.dumps(
        replay_billing_payload(result), indent=2, sort_keys=True
    )


def format_replay(result: DatacenterResult, verb: str = "replayed") -> str:
    """Render a replayed (or resumed) run's outcome as text."""
    conservation = result.energy_conservation_rel_error()
    header = (
        f"Journal {verb}: {len(result.tenant_reports)} tenants, "
        f"mean pool power {result.total_mean_power:.1f} W, "
        f"billing conservation rel. error {conservation:.1e}"
    )
    if result.failures:
        deaths = ", ".join(
            f"m{f.machine_index}@{f.time:.0f}s"
            for f in result.failures
        )
        header += f"\n  machine failures reproduced: {deaths}"
    if result.migrations:
        moves = ", ".join(
            f"{m.tenant} m{m.source_machine_index}->m{m.dest_machine_index}"
            f"@{m.time:.0f}s"
            for m in result.migrations
        )
        header += f"\n  migrations reproduced: {moves}"
    if result.faults:
        header += (
            f"\n  gray faults reproduced: {len(result.faults)} "
            f"({len(result.retries)} applier retries)"
        )
    rows = [
        [
            report.name,
            f"{report.offered}",
            f"{report.rejected}",
            f"{report.p95_latency:.2f}",
            f"{report.attainment:.3f}",
            "yes" if report.sla_met else "no",
        ]
        for report in result.tenant_reports
    ]
    return f"{header}\n" + format_table(
        ["tenant", "offered", "rejected", "p95", "attainment", "SLA met"],
        rows,
    )


def format_datacenter(experiment: DatacenterExperiment) -> str:
    """Render the per-tenant SLA comparison as text."""
    rows = []
    for tenant in experiment.tenants:
        static = experiment.static.report_for(tenant.name)
        arbitrated = experiment.arbitrated.report_for(tenant.name)
        rows.append(
            [
                tenant.name,
                f"m{tenant.machine_index}",
                tenant.trace_kind,
                "exact" if tenant.qos_cap == 0.0 else "knobbed",
                f"{static.offered}",
                f"{static.rejected}/{arbitrated.rejected}",
                f"{static.p95_latency:.2f}/{arbitrated.p95_latency:.2f}",
                f"{static.attainment:.3f}",
                f"{arbitrated.attainment:.3f}",
                "yes" if arbitrated.sla_met else "no",
            ]
        )
    name, delta = experiment.best_improvement()
    policy = experiment.policy
    header = (
        f"Datacenter arbitration: {len(experiment.tenants)} tenants on "
        f"{experiment.machines} machines, {experiment.budget_watts:.0f} W "
        f"budget, {experiment.horizon:.0f} s horizon\n"
        f"  mean pool power: static-equal "
        f"{experiment.static.total_mean_power:.1f} W, {policy} "
        f"{experiment.arbitrated.total_mean_power:.1f} W "
        f"(budget {experiment.budget_watts:.0f} W)\n"
        f"  SLAs met: static-equal {experiment.static.slas_met()}/"
        f"{len(experiment.tenants)}, {policy} "
        f"{experiment.arbitrated.slas_met()}/{len(experiment.tenants)}\n"
        f"  largest arbiter gain: {name} "
        f"{experiment.static.report_for(name).attainment:.3f} -> "
        f"{experiment.arbitrated.report_for(name).attainment:.3f} "
        f"({delta:+.3f} attainment)"
    )
    if len(experiment.arbitrated.budget_history) > 1:
        levels = " -> ".join(
            f"{watts:.0f} W@{at:.0f}s"
            for at, watts in experiment.arbitrated.budget_history
        )
        header += f"\n  budget trace: {levels}"
    if experiment.arbitrated.migrations:
        moves = ", ".join(
            f"{m.tenant} m{m.source_machine_index}->m{m.dest_machine_index}"
            f"@{m.time:.0f}s"
            for m in experiment.arbitrated.migrations
        )
        header += f"\n  migrations ({policy}): {moves}"
    if experiment.arbitrated.failures:
        deaths = ", ".join(
            f"m{f.machine_index}@{f.time:.0f}s"
            f" ({len(f.replacements)} tenants re-placed)"
            for f in experiment.arbitrated.failures
        )
        header += f"\n  machine failures (chaos): {deaths}"
    if experiment.arbitrated.faults:
        kinds = {}
        for fault in experiment.arbitrated.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        summary = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        header += (
            f"\n  gray faults injected ({policy}): {summary}; "
            f"{len(experiment.arbitrated.retries)} applier retries"
        )
    return f"{header}\n" + format_table(
        [
            "tenant",
            "mach",
            "traffic",
            "service",
            "offered",
            "rej s/a",
            "p95 s/a",
            "att static",
            f"att {policy}",
            "SLA met",
        ],
        rows,
    )
