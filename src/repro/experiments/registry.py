"""Benchmark registry: everything an experiment needs per application.

One :class:`AppSpec` per paper benchmark, bundling factories for the
application, its training/production/control workloads at each scale, the
knob space the calibration sweeps, and the Section 5.5 cluster sizing.
Built PowerDial systems are cached per (application, scale) so the bench
harness calibrates each application once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.apps.base import Application
from repro.apps.bodytrack import BodytrackApp, generate_sequence
from repro.apps.swaptions import SwaptionsApp, generate_swaptions
from repro.apps.swish import (
    InvertedIndex,
    SwishApp,
    generate_corpus,
    generate_queries,
)
from repro.apps.x264 import X264App, synthesize_video
from repro.core.knobs import KnobSpace, Parameter
from repro.core.powerdial import PowerDialSystem, build_powerdial
from repro.datacenter.service import ServiceApp, service_training_jobs
from repro.experiments.common import Scale

__all__ = [
    "AppSpec",
    "APP_SPECS",
    "get_spec",
    "built_system",
    "built_service_system",
]


@dataclass(frozen=True)
class AppSpec:
    """Experiment-facing description of one benchmark.

    Attributes:
        name: Benchmark name as the paper spells it.
        app_factory: Builds application instances (per scale).
        training_jobs: Calibration inputs (per scale).
        production_jobs: Held-out evaluation inputs (per scale).
        control_jobs: Long job streams for the dynamic-control
            experiments (Figures 6 and 7).
        knob_space: Parameter combinations to sweep (per scale).
        qos_bound: The Section 5.5 QoS-loss bound (5%% PARSEC, 30%% swish).
        cluster_machines: Baseline provisioning (paper: 4 for PARSEC
            benchmarks, 3 for swish++).
        cluster_slots: Full-speed instances per machine (8 single-threaded
            PARSEC instances per 8-core box; 1 eight-thread swish server).
    """

    name: str
    app_factory: Callable[[Scale], Callable[[], Application]]
    training_jobs: Callable[[Scale], list[Any]]
    production_jobs: Callable[[Scale], list[Any]]
    control_jobs: Callable[[Scale], list[Any]]
    knob_space: Callable[[Scale], KnobSpace]
    qos_bound: float
    cluster_machines: int
    cluster_slots: int


# ----------------------------------------------------------------------
# swaptions
# ----------------------------------------------------------------------
def _swaptions_space(scale: Scale) -> KnobSpace:
    if scale is Scale.TINY:
        values = (1000, 4000, 20_000)
    else:
        values = tuple(range(400, 20_001, 400))  # 50 settings
    return KnobSpace((Parameter("sm", values, default=20_000),))


_SWAPTIONS = AppSpec(
    name="swaptions",
    app_factory=lambda scale: SwaptionsApp,
    training_jobs=lambda scale: (
        [generate_swaptions(4, seed=11)]
        if scale is Scale.TINY
        else [generate_swaptions(16, seed=11 + j) for j in range(4)]
    ),
    production_jobs=lambda scale: (
        [generate_swaptions(4, seed=211)]
        if scale is Scale.TINY
        else [generate_swaptions(16, seed=211 + j) for j in range(4)]
    ),
    control_jobs=lambda scale: (
        [generate_swaptions(200, seed=311, uniform_contract=True)]
        if scale is Scale.TINY
        else [
            generate_swaptions(220, seed=311, uniform_contract=True),
            generate_swaptions(220, seed=312, uniform_contract=True),
        ]
    ),
    knob_space=_swaptions_space,
    qos_bound=0.05,
    cluster_machines=4,
    cluster_slots=8,
)


# ----------------------------------------------------------------------
# x264
# ----------------------------------------------------------------------
def _x264_space(scale: Scale) -> KnobSpace:
    if scale is Scale.TINY:
        return KnobSpace(
            (
                Parameter("subme", (1, 7), 7),
                Parameter("merange", (1, 8), 8),
                Parameter("ref", (1,), 1),
            )
        )
    return KnobSpace(
        (
            Parameter("subme", (1, 3, 5, 7), 7),
            Parameter("merange", (1, 2, 4, 8), 8),
            Parameter("ref", (1, 2, 3), 3),
        )
    )


def _x264_videos(scale: Scale, base_seed: int, jobs: int, frames: int):
    size = 32 if scale is Scale.TINY else 48
    return [
        synthesize_video(
            f"synthetic-{base_seed + index}",
            frames=frames,
            height=size,
            width=size,
            seed=base_seed + index,
        )
        for index in range(jobs)
    ]


_X264 = AppSpec(
    name="x264",
    app_factory=lambda scale: X264App,
    training_jobs=lambda scale: (
        _x264_videos(scale, 21, jobs=1, frames=8)
        if scale is Scale.TINY
        else _x264_videos(scale, 21, jobs=2, frames=12)
    ),
    production_jobs=lambda scale: (
        _x264_videos(scale, 121, jobs=1, frames=8)
        if scale is Scale.TINY
        else _x264_videos(scale, 121, jobs=3, frames=12)
    ),
    control_jobs=lambda scale: (
        _x264_videos(scale, 221, jobs=1, frames=100)
        if scale is Scale.TINY
        else _x264_videos(scale, 221, jobs=2, frames=150)
    ),
    knob_space=_x264_space,
    qos_bound=0.05,
    cluster_machines=4,
    cluster_slots=8,
)


# ----------------------------------------------------------------------
# bodytrack
# ----------------------------------------------------------------------
def _bodytrack_space(scale: Scale) -> KnobSpace:
    if scale is Scale.TINY:
        return KnobSpace(
            (
                Parameter("particles", (100, 500, 2000), 2000),
                Parameter("layers", (1, 5), 5),
            )
        )
    return KnobSpace(
        (
            Parameter(
                "particles",
                (100, 200, 300, 400, 500, 600, 800, 1000, 1500, 2000),
                2000,
            ),
            Parameter("layers", (1, 2, 3, 4, 5), 5),
        )
    )


_BODYTRACK = AppSpec(
    name="bodytrack",
    app_factory=lambda scale: BodytrackApp,
    training_jobs=lambda scale: (
        [generate_sequence(frames=10, seed=31)]
        if scale is Scale.TINY
        else [generate_sequence(frames=25, seed=31)]
    ),
    production_jobs=lambda scale: (
        [generate_sequence(frames=10, seed=131)]
        if scale is Scale.TINY
        else [generate_sequence(frames=40, seed=131)]
    ),
    control_jobs=lambda scale: (
        [generate_sequence(frames=120, seed=231)]
        if scale is Scale.TINY
        else [generate_sequence(frames=200, seed=231), generate_sequence(frames=200, seed=232)]
    ),
    knob_space=_bodytrack_space,
    qos_bound=0.05,
    cluster_machines=4,
    cluster_slots=8,
)


# ----------------------------------------------------------------------
# swish++
# ----------------------------------------------------------------------
_INDICES: dict[Scale, InvertedIndex] = {}


def _swish_index(scale: Scale) -> InvertedIndex:
    if scale not in _INDICES:
        if scale is Scale.TINY:
            corpus = generate_corpus(
                documents=200, tokens_per_document=400, vocabulary_size=4000, seed=41
            )
        else:
            # Paper: 2000 Project Gutenberg books per split.
            corpus = generate_corpus(
                documents=2000,
                tokens_per_document=500,
                vocabulary_size=20_000,
                seed=41,
            )
        _INDICES[scale] = InvertedIndex(corpus)
    return _INDICES[scale]


def _swish_factory(scale: Scale) -> Callable[[], Application]:
    index = _swish_index(scale)
    return lambda: SwishApp(index=index, qos_cutoff=10)


def _swish_queries(scale: Scale, seed: int, count_tiny: int, count_paper: int):
    index = _swish_index(scale)
    count = count_tiny if scale is Scale.TINY else count_paper
    return generate_queries(index.corpus, count=count, seed=seed)


_SWISH = AppSpec(
    name="swish++",
    app_factory=_swish_factory,
    training_jobs=lambda scale: [_swish_queries(scale, 43, 30, 120)],
    production_jobs=lambda scale: [_swish_queries(scale, 143, 30, 120)],
    control_jobs=lambda scale: (
        [_swish_queries(scale, 243, 150, 150)]
        if scale is Scale.TINY
        else [_swish_queries(scale, 243, 150, 450)]
    ),
    knob_space=lambda scale: SwishApp.knob_space(),
    # The paper bounds swish++ at 30%; on our denser synthetic corpus the
    # mean query matches >= 10 documents, so the 5-result setting costs
    # exactly 1/3 under P@10 — the bound is calibrated just above it.
    qos_bound=0.35,
    cluster_machines=3,
    cluster_slots=1,
)


APP_SPECS: dict[str, AppSpec] = {
    spec.name: spec for spec in (_SWAPTIONS, _X264, _BODYTRACK, _SWISH)
}
"""All four paper benchmarks, keyed by name."""


def get_spec(name: str) -> AppSpec:
    """Look up a benchmark spec by paper name."""
    if name not in APP_SPECS:
        raise KeyError(f"unknown benchmark {name!r}; have {sorted(APP_SPECS)}")
    return APP_SPECS[name]


_SYSTEMS: dict[tuple[str, Scale, float | None], PowerDialSystem] = {}


def built_system(
    name: str, scale: Scale, qos_cap: float | None = None
) -> PowerDialSystem:
    """Build (and cache) the PowerDial system for one benchmark and scale."""
    key = (name, scale, qos_cap)
    if key not in _SYSTEMS:
        spec = get_spec(name)
        _SYSTEMS[key] = build_powerdial(
            spec.app_factory(scale),
            spec.training_jobs(scale),
            knob_space=spec.knob_space(scale),
            qos_cap=qos_cap,
            trace_iterations=2,
        )
    return _SYSTEMS[key]


_SERVICE_SYSTEM: list[PowerDialSystem] = []


def built_service_system() -> PowerDialSystem:
    """Build (and cache) the PowerDial system for the datacenter service.

    The datacenter scenarios host many instances of the lightweight
    :class:`~repro.datacenter.service.ServiceApp`; one calibration serves
    them all — tenants with accuracy tolerances restrict the shared table
    via :meth:`~repro.core.knobs.KnobTable.with_qos_cap`.
    """
    if not _SERVICE_SYSTEM:
        _SERVICE_SYSTEM.append(
            build_powerdial(
                ServiceApp, service_training_jobs(), trace_iterations=2
            )
        )
    return _SERVICE_SYSTEM[0]
