"""Ablation A-CTRL: controller families under the power-cap scenario.

The paper argues (Section 6) that its control-theoretic decision
mechanism has "provably good convergence and predictability properties"
that the heuristic controllers of Green, Eon, and Chang/Karamcheti lack.
This experiment makes the claim quantitative: it runs the paper's
integral controller, a PID variant, a Green/Eon-style multiplicative step
heuristic, and a bang-bang policy through the Section 5.4 power-cap
scenario on the plant model ``h(t+1) = c(t) b s(t)`` with the benchmark's
calibrated ``s_max``, then scores settling time, ITAE, residual
oscillation, and the QoS loss each controller's commands would incur
through the benchmark's actuator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
    SpeedupController,
)
from repro.control.comparison import (
    ClosedLoopScenario,
    ControllerEvaluation,
    evaluate_controller,
)
from repro.control.disturbances import MeasurementNoise, pulse_profile
from repro.core.actuator import ActuationPolicy, Actuator
from repro.core.controller import HeartRateController
from repro.experiments.common import Scale, format_table
from repro.experiments.registry import built_system

__all__ = [
    "POWER_CAP_FACTOR",
    "ControllerResult",
    "ControllerAblation",
    "run_controller_ablation",
    "format_controller_ablation",
]

POWER_CAP_FACTOR = 1.6 / 2.4
"""Capacity under the paper's power cap (2.4 GHz -> 1.6 GHz, CPU-bound)."""


@dataclass(frozen=True)
class ControllerResult:
    """One controller's scores on the power-cap scenario.

    Attributes:
        label: Controller family name.
        evaluation: Raw closed-loop evaluation (series + aggregates).
        settle_after_cap: Control periods from the cap to settled, or
            None when the loop never settles while capped.
        settle_after_lift: Periods from the lift to settled, or None.
        mean_qos_loss: Mean QoS loss the command series would incur via
            the benchmark's minimal-speedup actuator.
    """

    label: str
    evaluation: ControllerEvaluation
    settle_after_cap: int | None
    settle_after_lift: int | None
    mean_qos_loss: float


@dataclass
class ControllerAblation:
    """All controllers' scores for one benchmark's plant."""

    name: str
    cap_step: int
    lift_step: int
    max_speedup: float
    results: list[ControllerResult]

    def result(self, label: str) -> ControllerResult:
        """Look up one controller's scores by label."""
        for candidate in self.results:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no controller labelled {label!r}")


def _qos_of_commands(
    actuator: Actuator, speedups: list[float], s_max: float
) -> float:
    """Mean QoS loss of realizing a command series via the actuator."""
    losses = []
    for commanded in speedups:
        plan = actuator.plan(min(max(commanded, 1e-6), s_max))
        losses.append(plan.expected_qos_loss())
    return sum(losses) / len(losses)


def run_controller_ablation(
    name: str,
    scale: Scale = Scale.PAPER,
    steps: int = 400,
    noise_sigma: float = 0.0,
    settle_tolerance: float = 0.05,
) -> ControllerAblation:
    """Score the controller families on one benchmark's calibrated plant.

    Args:
        name: Benchmark name (the calibrated table supplies ``s_max`` and
            the QoS cost of every commanded speedup).
        scale: Calibration scale.
        steps: Control periods to simulate; the cap spans the middle half.
        noise_sigma: Relative heart-rate measurement noise.
        settle_tolerance: Error band that counts as settled.
    """
    system = built_system(name, scale)
    table = system.table  # already Pareto-restricted, baseline kept
    s_max = table.max_speedup
    cap_step, lift_step = steps // 4, 3 * steps // 4
    target = 10.0  # beats per control period; normalized plant
    scenario = ClosedLoopScenario(
        target_rate=target,
        baseline_rate=target,
        steps=steps,
        capacity=pulse_profile(cap_step, lift_step, POWER_CAP_FACTOR),
        noise=MeasurementNoise(sigma=noise_sigma, seed=17),
        max_speedup=s_max,
    )
    controllers: list[tuple[str, SpeedupController]] = [
        (
            "integral (paper)",
            HeartRateController(target, target, max_speedup=s_max),
        ),
        (
            "pid",
            PIDController(
                target, target, kp=0.2, ki=0.8, max_speedup=s_max
            ),
        ),
        (
            "heuristic step",
            HeuristicStepController(
                target, step_factor=1.25, tolerance=0.05, max_speedup=s_max
            ),
        ),
        ("bang-bang", BangBangController(target, high_speedup=s_max)),
    ]
    actuator = Actuator(table, ActuationPolicy.MINIMAL_SPEEDUP)

    results = []
    for label, controller in controllers:
        evaluation = evaluate_controller(controller, scenario)
        settle_cap = evaluation.settling_step(
            after=cap_step, tolerance=settle_tolerance
        )
        settle_lift = evaluation.settling_step(
            after=lift_step, tolerance=settle_tolerance
        )
        if settle_cap is not None and settle_cap >= lift_step:
            settle_cap = None  # only settled because the cap lifted
        results.append(
            ControllerResult(
                label=label,
                evaluation=evaluation,
                settle_after_cap=(
                    None if settle_cap is None else settle_cap - cap_step
                ),
                settle_after_lift=(
                    None if settle_lift is None else settle_lift - lift_step
                ),
                mean_qos_loss=_qos_of_commands(
                    actuator, evaluation.speedups, s_max
                ),
            )
        )
    return ControllerAblation(
        name=name,
        cap_step=cap_step,
        lift_step=lift_step,
        max_speedup=s_max,
        results=results,
    )


def format_controller_ablation(ablation: ControllerAblation) -> str:
    """The ablation as a paper-style table."""
    rows = []
    for result in ablation.results:
        rows.append(
            [
                result.label,
                "never" if result.settle_after_cap is None
                else str(result.settle_after_cap),
                "never" if result.settle_after_lift is None
                else str(result.settle_after_lift),
                f"{result.evaluation.itae:.1f}",
                f"{100 * result.evaluation.mean_abs_error:.2f}",
                str(result.evaluation.oscillation_crossings),
                f"{100 * result.mean_qos_loss:.3f}",
            ]
        )
    header = (
        f"Ablation: controllers on the {ablation.name} plant "
        f"(s_max={ablation.max_speedup:.2f}, cap over steps "
        f"[{ablation.cap_step}, {ablation.lift_step}))"
    )
    return f"{header}\n" + format_table(
        [
            "controller",
            "settle(cap)",
            "settle(lift)",
            "ITAE",
            "mean |e| %",
            "tail crossings",
            "qos loss %",
        ],
        rows,
    )
