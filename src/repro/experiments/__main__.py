"""Command-line entry point for the experiment harness.

Regenerate any paper artifact directly (one subcommand per artifact;
``python -m repro.experiments --help`` lists them all with the same
descriptions ``docs/SCENARIOS.md`` documents recipe by recipe)::

    python -m repro.experiments table1
    python -m repro.experiments table2
    python -m repro.experiments fig5 --app x264
    python -m repro.experiments fig6 --app swaptions --scale tiny
    python -m repro.experiments fig7 --app bodytrack
    python -m repro.experiments fig8 --app swish++
    python -m repro.experiments fig34
    python -m repro.experiments overhead
    python -m repro.experiments datacenter
    python -m repro.experiments datacenter --backend sharded --workers 4
    python -m repro.experiments datacenter --bill
    python -m repro.experiments datacenter --policy migrating
    python -m repro.experiments datacenter --policy consolidating
    python -m repro.experiments datacenter --budget-trace shock.trace
    python -m repro.experiments datacenter --journal run.ndjson
    python -m repro.experiments datacenter --journal run.ndjson --chaos 1
    python -m repro.experiments datacenter --faults gray.faults
    python -m repro.experiments replay --journal run.ndjson
    python -m repro.experiments replay --journal run.ndjson --resume
    python -m repro.experiments ablation-controllers --app bodytrack
    python -m repro.experiments ablation-quantum --app swaptions
"""

from __future__ import annotations

import argparse
import sys

from repro.datacenter.controlplane import (
    POLICY_NAMES,
    BudgetSchedule,
    BudgetTraceError,
    load_budget_trace,
)
from repro.datacenter.engine import ENGINE_BACKENDS
from repro.datacenter.faults import (
    FaultPlan,
    FaultPlanError,
    load_fault_plan,
)
from repro.datacenter.journal import (
    JournalError,
    prepare_journal_path,
)
from repro.datacenter.journal import replay as journal_replay
from repro.datacenter.journal import resume as journal_resume
from repro.experiments import (
    APP_SPECS,
    Scale,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_controller_ablation,
    format_datacenter,
    format_datacenter_bills,
    format_replay,
    format_replay_bills,
    format_fig34,
    format_overhead,
    format_quantum_ablation,
    format_sla,
    format_table1,
    format_table2,
    run_consolidation,
    run_controller_ablation,
    run_datacenter,
    run_energy_models,
    run_overhead,
    run_power_qos,
    run_powercap,
    run_quantum_ablation,
    run_sla,
    run_tradeoff,
    summarize_inputs,
)
from repro.experiments.catalog import ARTIFACTS, PER_APP_ARTIFACTS
from repro.experiments.datacenter import DEFAULT_BUDGET_WATTS


def _run(
    artifact: str,
    app: str,
    scale: Scale,
    backend: str = "serial",
    workers: int | None = None,
    bill: bool = False,
    policy: str = "sla-aware",
    budget_trace: BudgetSchedule | None = None,
    journal: str | None = None,
    chaos: int = 0,
    chaos_seed: int = 0,
    resume_run: bool = False,
    faults: FaultPlan | None = None,
    machines: int = 2,
) -> str:
    """Execute one artifact subcommand and return its rendered output."""
    if artifact == "table1":
        return format_table1(summarize_inputs(scale))
    if artifact == "table2":
        return format_table2(
            [run_tradeoff(name, scale) for name in APP_SPECS]
        )
    if artifact == "fig5":
        return format_fig5(run_tradeoff(app, scale))
    if artifact == "fig6":
        return format_fig6(run_power_qos(app, scale))
    if artifact == "fig7":
        return format_fig7(run_powercap(app, scale))
    if artifact == "fig8":
        return format_fig8(run_consolidation(app, scale))
    if artifact == "fig34":
        return format_fig34(run_energy_models())
    if artifact == "ablation-controllers":
        return format_controller_ablation(run_controller_ablation(app, scale))
    if artifact == "ablation-quantum":
        return format_quantum_ablation(run_quantum_ablation(app, scale))
    if artifact == "sla":
        return format_sla(run_sla(app, scale))
    if artifact == "datacenter":
        experiment = run_datacenter(
            scale,
            # The default budget covers the default 2-machine pool;
            # larger pools scale it linearly so the arbiters stay
            # feasible (every machine's cap floor covered).
            budget_watts=DEFAULT_BUDGET_WATTS * (machines / 2.0),
            machines=machines,
            backend=backend,
            workers=workers,
            policy=policy,
            budget_trace=budget_trace,
            journal=journal,
            chaos=chaos,
            chaos_seed=chaos_seed,
            faults=faults,
        )
        if bill:
            return format_datacenter_bills(experiment)
        return format_datacenter(experiment)
    if artifact == "replay":
        runner = journal_resume if resume_run else journal_replay
        result = runner(journal, backend=backend, workers=workers)
        if bill:
            return format_replay_bills(result)
        return format_replay(
            result, verb="resumed" if resume_run else "replayed"
        )
    if artifact == "overhead":
        return format_overhead(
            [run_overhead(name, Scale.TINY) for name in APP_SPECS]
        )
    raise ValueError(f"unknown artifact {artifact!r}")


def build_parser() -> argparse.ArgumentParser:
    """The experiment CLI: one documented subparser per catalog entry."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a PowerDial paper table or figure.",
    )
    subparsers = parser.add_subparsers(
        dest="artifact",
        metavar="artifact",
        required=True,
    )
    for name, info in ARTIFACTS.items():
        sub = subparsers.add_parser(
            name,
            help=info.help,
            description=f"{info.help} ({info.paper_ref}).",
        )
        sub.add_argument(
            "--scale",
            choices=[s.value for s in Scale],
            default=Scale.PAPER.value,
            help="experiment scale (default: paper)",
        )
        if name in PER_APP_ARTIFACTS:
            sub.add_argument(
                "--app",
                choices=sorted(APP_SPECS),
                default="swaptions",
                help="benchmark application (default: swaptions)",
            )
        if name in ("datacenter", "replay"):
            sub.add_argument(
                "--backend",
                choices=list(ENGINE_BACKENDS),
                default="serial",
                help="datacenter engine backend (default: serial)",
            )
            sub.add_argument(
                "--workers",
                type=int,
                default=None,
                help="worker processes for the sharded backend "
                "(default: usable CPU count)",
            )
            sub.add_argument(
                "--bill",
                action="store_true",
                help="emit per-tenant JSON bills (energy, QoS loss, "
                "rejections) instead of the SLA comparison table",
            )
        if name == "replay":
            sub.add_argument(
                "--journal",
                metavar="FILE",
                required=True,
                help="the NDJSON run journal to re-execute",
            )
            sub.add_argument(
                "--resume",
                action="store_true",
                help="finish an incomplete (crashed) journal instead of "
                "replaying a complete one: the recorded prefix is "
                "re-executed and attested barrier-by-barrier, then the "
                "run continues to completion",
            )
        if name == "datacenter":
            sub.add_argument(
                "--machines",
                type=int,
                default=2,
                metavar="N",
                help="machine-pool size (default: 2; the facility "
                "budget scales linearly with the pool so arbitration "
                "stays feasible — pair large pools with --policy "
                "hier-arbitrated and --backend sharded)",
            )
            sub.add_argument(
                "--policy",
                choices=list(POLICY_NAMES),
                default="sla-aware",
                help="control policy compared against static-equal "
                "(default: sla-aware; 'migrating' also cold-moves "
                "instances off cap-saturated machines; 'consolidating' "
                "warm-packs tenants onto fewer machines in demand "
                "troughs and spreads them back under load)",
            )
            sub.add_argument(
                "--budget-trace",
                metavar="FILE",
                default=None,
                help="drive the global budget from a trace file of "
                "'<seconds> <watts>' lines (fleet-wide budget shocks)",
            )
            sub.add_argument(
                "--journal",
                metavar="FILE",
                default=None,
                help="record the arbitrated run as a deterministic "
                "NDJSON journal that the 'replay' subcommand "
                "re-executes byte-exactly",
            )
            sub.add_argument(
                "--chaos",
                type=int,
                default=0,
                metavar="N",
                help="kill N machines mid-run at seeded instants on the "
                "arbitrated side, rebuilding their tenants on survivors "
                "from barrier checkpoints (default: 0)",
            )
            sub.add_argument(
                "--chaos-seed",
                type=int,
                default=0,
                metavar="SEED",
                help="seed for the chaos kill schedule and victim "
                "choice (default: 0)",
            )
            sub.add_argument(
                "--faults",
                metavar="FILE",
                default=None,
                help="inject a declarative gray-failure plan on the "
                "arbitrated side: a file of 'sensor|actuator|"
                "straggler|kill|config key=value ...' lines "
                "scheduling heartbeat dropout/delay/noise windows, "
                "cap-application failures, slow-clock stragglers, "
                "and fail-stop kills (see docs/SCENARIOS.md)",
            )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns a process exit code."""
    args = build_parser().parse_args(argv)
    budget_trace = None
    trace_path = getattr(args, "budget_trace", None)
    if trace_path is not None:
        try:
            budget_trace = load_budget_trace(trace_path)
        except BudgetTraceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    faults = None
    faults_path = getattr(args, "faults", None)
    if faults_path is not None:
        try:
            faults = load_fault_plan(faults_path)
        except FaultPlanError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    journal_path = getattr(args, "journal", None)
    if args.artifact == "datacenter" and journal_path is not None:
        # Fail fast — an unwritable destination or a schema-mismatched
        # existing journal should abort before the run burns any time.
        try:
            prepare_journal_path(journal_path)
        except JournalError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        text = _run(
            args.artifact,
            getattr(args, "app", "swaptions"),
            Scale(args.scale),
            getattr(args, "backend", "serial"),
            getattr(args, "workers", None),
            getattr(args, "bill", False),
            getattr(args, "policy", "sla-aware"),
            budget_trace,
            journal_path,
            getattr(args, "chaos", 0),
            getattr(args, "chaos_seed", 0),
            getattr(args, "resume", False),
            faults,
            getattr(args, "machines", 2),
        )
    except BudgetTraceError as error:
        # E.g. a trace level below the pool's enforceable cap floor,
        # detectable only once the machine pool is known.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except JournalError as error:
        # E.g. a corrupt or truncated journal handed to `replay`, or a
        # replay that failed its byte-exactness assertion.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
