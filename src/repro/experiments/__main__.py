"""Command-line entry point for the experiment harness.

Regenerate any paper artifact directly::

    python -m repro.experiments table1
    python -m repro.experiments table2
    python -m repro.experiments fig5 --app x264
    python -m repro.experiments fig6 --app swaptions --scale tiny
    python -m repro.experiments fig7 --app bodytrack
    python -m repro.experiments fig8 --app swish++
    python -m repro.experiments fig34
    python -m repro.experiments overhead
    python -m repro.experiments datacenter
    python -m repro.experiments datacenter --backend sharded --workers 4
    python -m repro.experiments ablation-controllers --app bodytrack
    python -m repro.experiments ablation-quantum --app swaptions
"""

from __future__ import annotations

import argparse
import sys

from repro.datacenter.engine import ENGINE_BACKENDS
from repro.experiments import (
    APP_SPECS,
    Scale,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_controller_ablation,
    format_datacenter,
    format_fig34,
    format_overhead,
    format_quantum_ablation,
    format_sla,
    format_table1,
    format_table2,
    run_consolidation,
    run_controller_ablation,
    run_datacenter,
    run_energy_models,
    run_overhead,
    run_power_qos,
    run_powercap,
    run_quantum_ablation,
    run_sla,
    run_tradeoff,
    summarize_inputs,
)

_PER_APP = {
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "ablation-controllers",
    "ablation-quantum",
    "sla",
}
_ARTIFACTS = sorted(
    _PER_APP | {"table1", "table2", "fig34", "overhead", "datacenter"}
)


def _run(
    artifact: str,
    app: str,
    scale: Scale,
    backend: str = "serial",
    workers: int | None = None,
) -> str:
    if artifact == "table1":
        return format_table1(summarize_inputs(scale))
    if artifact == "table2":
        return format_table2(
            [run_tradeoff(name, scale) for name in APP_SPECS]
        )
    if artifact == "fig5":
        return format_fig5(run_tradeoff(app, scale))
    if artifact == "fig6":
        return format_fig6(run_power_qos(app, scale))
    if artifact == "fig7":
        return format_fig7(run_powercap(app, scale))
    if artifact == "fig8":
        return format_fig8(run_consolidation(app, scale))
    if artifact == "fig34":
        return format_fig34(run_energy_models())
    if artifact == "ablation-controllers":
        return format_controller_ablation(run_controller_ablation(app, scale))
    if artifact == "ablation-quantum":
        return format_quantum_ablation(run_quantum_ablation(app, scale))
    if artifact == "sla":
        return format_sla(run_sla(app, scale))
    if artifact == "datacenter":
        return format_datacenter(
            run_datacenter(scale, backend=backend, workers=workers)
        )
    if artifact == "overhead":
        return format_overhead(
            [run_overhead(name, Scale.TINY) for name in APP_SPECS]
        )
    raise ValueError(f"unknown artifact {artifact!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a PowerDial paper table or figure.",
    )
    parser.add_argument("artifact", choices=_ARTIFACTS)
    parser.add_argument(
        "--app",
        choices=sorted(APP_SPECS),
        default="swaptions",
        help="benchmark for per-application figures (default: swaptions)",
    )
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.PAPER.value,
        help="experiment scale (default: paper)",
    )
    parser.add_argument(
        "--backend",
        choices=list(ENGINE_BACKENDS),
        default="serial",
        help="datacenter engine backend (datacenter artifact only; "
        "default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded backend (datacenter "
        "artifact only; default: usable CPU count)",
    )
    args = parser.parse_args(argv)
    if args.artifact != "datacenter" and (
        args.backend != "serial" or args.workers is not None
    ):
        parser.error("--backend/--workers apply to the datacenter artifact only")
    scale = Scale(args.scale)
    print(_run(args.artifact, args.app, scale, args.backend, args.workers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
