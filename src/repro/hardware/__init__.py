"""Simulated hardware platform (Section 5.1 of the paper).

Provides the virtual clock, the DVFS processor with the Xeon E5530's seven
P-states, the full-system power model with WattsUp-style 1 Hz sampling, and
the :class:`~repro.hardware.machine.Machine` server abstraction that every
experiment executes on.
"""

from repro.hardware.clock import ClockError, VirtualClock
from repro.hardware.cpu import XEON_E5530_PSTATES, CpuError, Processor, PState
from repro.hardware.machine import Machine, MachineError
from repro.hardware.power import PowerError, PowerMeter, PowerModel, PowerSample

__all__ = [
    "VirtualClock",
    "ClockError",
    "PState",
    "Processor",
    "XEON_E5530_PSTATES",
    "CpuError",
    "PowerModel",
    "PowerMeter",
    "PowerSample",
    "PowerError",
    "Machine",
    "MachineError",
]
