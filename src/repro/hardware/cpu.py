"""DVFS-capable processor model.

Models the paper's experimental platform (two quad-core Intel Xeon E5530,
Section 5.1): seven software-selectable power states with clock frequencies
from 2.4 GHz down to 1.6 GHz.  Applications report *work* in abstract work
units (one unit = one unit of computation at nominal throughput); the
processor converts work into virtual seconds given its current frequency,
exactly the way a CPU-bound task's runtime scales with clock frequency
(Section 3: ``t2 = f_nodvfs / f_dvfs * t1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PState", "Processor", "XEON_E5530_PSTATES", "CpuError"]


class CpuError(ValueError):
    """Raised for invalid processor configuration or state changes."""


@dataclass(frozen=True)
class PState:
    """A processor power state (DVFS operating point).

    Attributes:
        frequency_ghz: Core clock frequency in GHz.
        voltage: Relative core voltage (1.0 at the highest state).  Used by
            the power model; scales roughly linearly with frequency across
            the small DVFS range of server parts.
    """

    frequency_ghz: float
    voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0.0:
            raise CpuError(f"frequency must be positive, got {self.frequency_ghz!r}")
        if self.voltage <= 0.0:
            raise CpuError(f"voltage must be positive, got {self.voltage!r}")


def _xeon_pstates() -> tuple[PState, ...]:
    """The seven P-states of the paper's Xeon E5530 platform.

    Frequencies are the x-axis labels of Figure 6.  Voltage is modeled as
    scaling linearly from 1.0 at 2.4 GHz down to 0.85 at 1.6 GHz, a typical
    DVFS voltage span for this part.
    """
    frequencies = (2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6)
    f_max, f_min = frequencies[0], frequencies[-1]
    v_max, v_min = 1.0, 0.85
    states = []
    for f in frequencies:
        v = v_min + (v_max - v_min) * (f - f_min) / (f_max - f_min)
        states.append(PState(frequency_ghz=f, voltage=round(v, 4)))
    return tuple(states)


XEON_E5530_PSTATES: tuple[PState, ...] = _xeon_pstates()


@dataclass
class Processor:
    """A processor with a discrete set of DVFS states.

    Attributes:
        pstates: Available power states, ordered fastest first.
        work_units_per_ghz_second: Calibration constant: how many abstract
            work units one core retires per second per GHz.  With the
            default of 1e9 a work unit behaves like "one operation at one
            IPC", so ``work / (freq_ghz * 1e9)`` seconds per unit.
        state_index: Index of the current P-state in ``pstates``.
    """

    pstates: tuple[PState, ...] = XEON_E5530_PSTATES
    work_units_per_ghz_second: float = 1e9
    state_index: int = 0

    def __post_init__(self) -> None:
        if not self.pstates:
            raise CpuError("processor needs at least one P-state")
        ordered = sorted(self.pstates, key=lambda s: -s.frequency_ghz)
        self.pstates = tuple(ordered)
        if self.work_units_per_ghz_second <= 0:
            raise CpuError("work_units_per_ghz_second must be positive")
        if not 0 <= self.state_index < len(self.pstates):
            raise CpuError(f"state_index {self.state_index} out of range")

    @property
    def pstate(self) -> PState:
        """The current power state."""
        return self.pstates[self.state_index]

    @property
    def frequency_ghz(self) -> float:
        """Current clock frequency in GHz."""
        return self.pstate.frequency_ghz

    @property
    def max_frequency_ghz(self) -> float:
        """Frequency of the fastest P-state."""
        return self.pstates[0].frequency_ghz

    @property
    def min_frequency_ghz(self) -> float:
        """Frequency of the slowest P-state."""
        return self.pstates[-1].frequency_ghz

    def set_state(self, index: int) -> PState:
        """Switch to P-state ``index`` (0 = fastest) and return it."""
        if not 0 <= index < len(self.pstates):
            raise CpuError(
                f"P-state index {index} out of range 0..{len(self.pstates) - 1}"
            )
        self.state_index = index
        return self.pstate

    def set_frequency(self, frequency_ghz: float) -> PState:
        """Switch to the P-state with the given frequency.

        Mirrors ``cpufrequtils`` on the paper's platform: only the discrete
        advertised frequencies are legal.
        """
        for i, state in enumerate(self.pstates):
            if abs(state.frequency_ghz - frequency_ghz) < 1e-9:
                return self.set_state(i)
        known = [s.frequency_ghz for s in self.pstates]
        raise CpuError(f"no P-state at {frequency_ghz} GHz; available: {known}")

    def seconds_for_work(self, work_units: float, threads: int = 1) -> float:
        """Virtual seconds to retire ``work_units`` with ``threads`` cores.

        Perfectly parallel work is assumed (the paper's benchmarks are the
        PARSEC parallel versions); callers that want contention model it by
        passing fewer effective threads.
        """
        if work_units < 0:
            raise CpuError(f"work must be non-negative, got {work_units!r}")
        if threads < 1:
            raise CpuError(f"threads must be >= 1, got {threads!r}")
        rate = self.frequency_ghz * self.work_units_per_ghz_second * threads
        return work_units / rate

    def slowdown_vs_max(self) -> float:
        """How much slower the current state is than the fastest (>= 1)."""
        return self.max_frequency_ghz / self.frequency_ghz
