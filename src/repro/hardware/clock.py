"""Virtual time for deterministic, platform-independent experiments.

The paper measures wall-clock time on a Dell PowerEdge R410.  We replace
wall-clock time with a :class:`VirtualClock` that the simulated machine
advances as applications execute work.  Every timestamped subsystem
(heartbeats, power meter, controller quanta) reads this clock, so an entire
experiment is reproducible bit-for-bit and runs as fast as Python can
compute, regardless of host load.
"""

from __future__ import annotations

__all__ = ["VirtualClock", "ClockError"]


class ClockError(ValueError):
    """Raised when a clock operation would move time backwards."""


class VirtualClock:
    """A monotonically non-decreasing simulated clock measured in seconds.

    The clock starts at ``start`` (default 0.0) and only moves forward via
    :meth:`advance` or :meth:`advance_to`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Raises :class:`ClockError` for negative increments; a zero increment
        is allowed (useful for zero-cost bookkeeping events).
        """
        if seconds < 0.0:
            raise ClockError(f"cannot advance clock by negative {seconds!r}s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``.

        Raises :class:`ClockError` if ``timestamp`` is in the past.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot rewind clock from {self._now!r} to {timestamp!r}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
