"""Full-system power model and a WattsUp-style sampling power meter.

The paper measures *full-system* power with a WattsUp device sampling at
1-second intervals (Section 5.1): 80 W at idle minimum, "typical idle power
consumption of approximately 90 watts", and 220 W at full load in the
highest P-state.

We model instantaneous system power as

    P(u, s) = P_idle + (P_peak - P_idle) * u * (f/f_max) * (v/v_max)^2

where ``u`` is utilization (busy fraction of cores), ``s`` the P-state with
frequency ``f`` and voltage ``v``.  Dynamic CPU power scales as f*V^2, and
because the WattsUp measures the whole box, the idle floor (disks, fans,
PSU losses, DRAM refresh) does not scale with DVFS — this reproduces the
Figure 6 behaviour where dropping from 2.4 GHz to 1.6 GHz under load saves
roughly 16-21%% of *system* power, not 33%%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cpu import PState

__all__ = ["PowerModel", "PowerMeter", "PowerSample", "PowerError"]


class PowerError(ValueError):
    """Raised for invalid power model parameters or meter usage."""


@dataclass(frozen=True)
class PowerModel:
    """Converts machine state (utilization, P-state) to system watts.

    Attributes:
        idle_watts: Full-system power with all cores idle (paper: ~90 W).
        peak_watts: Full-system power with all cores busy in the highest
            P-state (paper: 220 W).
        floor_watts: Hard minimum the meter ever reports (paper: 80 W).
        frequency_sensitive_fraction: Share of the active power that
            scales with f*V^2.  Memory, uncore, and disk activity do not
            follow core DVFS, so only part of the busy-idle span shrinks
            at lower P-states; 0.55 reproduces the paper's measured
            16-21%% full-system savings at 1.6 GHz (Figure 6).
    """

    idle_watts: float = 90.0
    peak_watts: float = 220.0
    floor_watts: float = 80.0
    frequency_sensitive_fraction: float = 0.55

    def __post_init__(self) -> None:
        if self.idle_watts <= 0 or self.peak_watts <= 0:
            raise PowerError("power levels must be positive")
        if self.peak_watts <= self.idle_watts:
            raise PowerError("peak power must exceed idle power")
        if self.floor_watts > self.idle_watts:
            raise PowerError("floor power cannot exceed idle power")
        if not 0.0 <= self.frequency_sensitive_fraction <= 1.0:
            raise PowerError(
                "frequency_sensitive_fraction must be in [0, 1], got "
                f"{self.frequency_sensitive_fraction!r}"
            )

    def power(
        self,
        utilization: float,
        pstate: PState,
        max_frequency_ghz: float,
        max_voltage: float = 1.0,
    ) -> float:
        """Instantaneous system power in watts.

        Args:
            utilization: Fraction of cores busy, in [0, 1].
            pstate: Current DVFS state.
            max_frequency_ghz: Frequency of the fastest P-state, used to
                normalize the dynamic-power term.
            max_voltage: Voltage of the fastest P-state.
        """
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise PowerError(f"utilization must be in [0,1], got {utilization!r}")
        utilization = min(utilization, 1.0)
        f_ratio = pstate.frequency_ghz / max_frequency_ghz
        v_ratio = pstate.voltage / max_voltage
        span = (self.peak_watts - self.idle_watts) * utilization
        sensitive = self.frequency_sensitive_fraction
        scaling = (1.0 - sensitive) + sensitive * f_ratio * v_ratio**2
        return max(self.floor_watts, self.idle_watts + span * scaling)


@dataclass(frozen=True)
class PowerSample:
    """One reading of the power meter."""

    timestamp: float
    watts: float


@dataclass
class PowerMeter:
    """Integrates power over virtual time and takes 1 Hz samples.

    Mirrors the WattsUp usage in the paper: the meter stores one sample per
    ``interval`` seconds; mean power over an execution is the mean of the
    stored samples.  The meter also integrates exact energy, which the
    analytic-model experiments use directly.
    """

    interval: float = 1.0
    _samples: list[PowerSample] = field(default_factory=list)
    _energy_joules: float = 0.0
    _last_time: float | None = None
    _next_sample_time: float | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise PowerError(f"sample interval must be positive, got {self.interval!r}")

    def observe(self, start: float, end: float, watts: float) -> None:
        """Record that system power was ``watts`` from ``start`` to ``end``.

        Intervals must be reported in non-decreasing time order; gaps are
        not allowed (report idle intervals explicitly so the meter sees the
        idle floor, as a real WattsUp would).
        """
        if end < start:
            raise PowerError(f"interval end {end!r} before start {start!r}")
        if self._last_time is not None and start < self._last_time - 1e-9:
            raise PowerError(
                f"interval start {start!r} precedes last observed {self._last_time!r}"
            )
        if self._next_sample_time is None:
            self._next_sample_time = start + self.interval
        self._energy_joules += watts * (end - start)
        while self._next_sample_time <= end + 1e-12:
            self._samples.append(PowerSample(self._next_sample_time, watts))
            self._next_sample_time += self.interval
        self._last_time = end

    def observe_run(self, times: np.ndarray, watts: float) -> None:
        """Record a run of back-to-back constant-power intervals at once.

        The bulk twin of :meth:`observe` for the batched step kernel:
        ``times`` holds the ``n+1`` boundary timestamps of ``n``
        consecutive intervals all drawn at ``watts``.  Equivalent —
        float for float — to ``observe(times[i], times[i+1], watts)``
        for each ``i`` in order: the energy integral is accumulated
        strictly left to right (``np.add.accumulate`` seeded with the
        current total, which adds in exactly the scalar order), and
        sample emission advances the same ``_next_sample_time``
        recurrence.  Constant power across the run is what makes the
        single sample-emission sweep exact.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.shape[0] < 2:
            raise PowerError("observe_run needs at least two boundary timestamps")
        deltas = np.diff(times)
        if float(deltas.min()) < 0.0:
            raise PowerError("interval end precedes start in bulk observation")
        start = float(times[0])
        end = float(times[-1])
        if self._last_time is not None and start < self._last_time - 1e-9:
            raise PowerError(
                f"interval start {start!r} precedes last observed {self._last_time!r}"
            )
        if self._next_sample_time is None:
            self._next_sample_time = start + self.interval
        acc = np.empty(times.shape[0], dtype=float)
        acc[0] = self._energy_joules
        np.multiply(deltas, watts, out=acc[1:])
        self._energy_joules = float(np.add.accumulate(acc)[-1])
        while self._next_sample_time <= end + 1e-12:
            self._samples.append(PowerSample(self._next_sample_time, watts))
            self._next_sample_time += self.interval
        self._last_time = end

    @property
    def samples(self) -> list[PowerSample]:
        """All 1 Hz samples recorded so far."""
        return list(self._samples)

    @property
    def energy_joules(self) -> float:
        """Exact integrated energy over all observed intervals."""
        return self._energy_joules

    def mean_power(self) -> float:
        """Mean of the stored samples (the paper's reported 'mean power').

        Raises :class:`PowerError` if no samples were taken (execution
        shorter than one sampling interval).
        """
        if not self._samples:
            raise PowerError("no power samples recorded")
        return sum(s.watts for s in self._samples) / len(self._samples)

    def reset(self) -> None:
        """Clear samples and integrated energy."""
        self._samples.clear()
        self._energy_joules = 0.0
        self._last_time = None
        self._next_sample_time = None
