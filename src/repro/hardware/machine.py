"""A simulated server: cores + DVFS processor + power model + clock.

This is the substrate every experiment runs on.  A :class:`Machine`
executes *work units* on behalf of applications, advancing its virtual
clock and feeding the power meter; the PowerDial runtime reads heartbeat
timestamps from the same clock, so controller behaviour, power draw, and
application progress are all consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.clock import VirtualClock
from repro.hardware.cpu import Processor, CpuError
from repro.hardware.power import PowerMeter, PowerModel

__all__ = ["Machine", "MachineError"]


class MachineError(RuntimeError):
    """Raised for invalid machine operations."""


@dataclass
class Machine:
    """An eight-core server modeled on the paper's Dell PowerEdge R410.

    Attributes:
        cores: Number of cores (paper platform: two quad-core Xeons = 8).
        processor: DVFS processor shared by all cores.
        power_model: Full-system power model.
        clock: The machine's virtual clock.
        meter: WattsUp-style power meter attached to the machine.
        load_factor: Multiplier (>= 1) on execution time modelling
            co-located load; the cluster simulator uses this to express
            capacity sharing when several instances run on one machine.
    """

    cores: int = 8
    processor: Processor = field(default_factory=Processor)
    power_model: PowerModel = field(default_factory=PowerModel)
    clock: VirtualClock = field(default_factory=VirtualClock)
    meter: PowerMeter = field(default_factory=PowerMeter)
    load_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise MachineError(f"machine needs >= 1 core, got {self.cores!r}")
        if self.load_factor < 1.0:
            raise MachineError(f"load_factor must be >= 1, got {self.load_factor!r}")

    @property
    def now(self) -> float:
        """Current virtual time on this machine."""
        return self.clock.now

    def set_frequency(self, frequency_ghz: float) -> None:
        """Apply a DVFS change (e.g. impose or lift a power cap)."""
        self.processor.set_frequency(frequency_ghz)

    def execute(self, work_units: float, threads: int | None = None) -> float:
        """Run ``work_units`` of computation; return elapsed virtual seconds.

        The busy interval is reported to the power meter at the utilization
        implied by ``threads`` (default: all cores).
        """
        threads = self.cores if threads is None else threads
        if threads < 1 or threads > self.cores:
            raise MachineError(f"threads must be in 1..{self.cores}, got {threads!r}")
        seconds = self.processor.seconds_for_work(work_units, threads=threads)
        seconds *= self.load_factor
        start = self.clock.now
        end = self.clock.advance(seconds)
        utilization = threads / self.cores
        watts = self.power_model.power(
            utilization,
            self.processor.pstate,
            self.processor.max_frequency_ghz,
            self.processor.pstates[0].voltage,
        )
        self.meter.observe(start, end, watts)
        return seconds

    def execute_run(
        self,
        count: int,
        work_units: float,
        threads: int | None = None,
        times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run ``count`` identical work batches back to back, in one call.

        The bulk twin of :meth:`execute` for the batched step kernel:
        per-batch seconds are computed once (the P-state is constant
        across the run by construction — frequency changes only happen
        between runs), the clock chain ``now, now+s, now+2s, ...`` is
        materialized with a strictly sequential ``np.add.accumulate``
        (bit-identical to ``count`` successive ``clock.advance`` calls),
        and the meter integrates the whole run at the constant watts the
        per-call path would compute for every batch.

        A caller that already materialized the identical chain (the
        batched kernel builds it to find chunk boundaries) may pass it as
        ``times`` — ``count + 1`` boundary timestamps whose first entry
        must be the current clock value; the chain is then trusted
        instead of recomputed.

        Returns the ``count + 1`` clock boundary timestamps, starting
        with the pre-execution time.
        """
        if count < 1:
            raise MachineError(f"execute_run needs count >= 1, got {count!r}")
        threads = self.cores if threads is None else threads
        if threads < 1 or threads > self.cores:
            raise MachineError(f"threads must be in 1..{self.cores}, got {threads!r}")
        if times is None:
            seconds = self.processor.seconds_for_work(work_units, threads=threads)
            seconds *= self.load_factor
            times = np.empty(count + 1, dtype=float)
            times[0] = self.clock.now
            times[1:] = seconds
            np.add.accumulate(times, out=times)
        elif times.shape[0] != count + 1 or times[0] != self.clock.now:
            raise MachineError(
                "precomputed times must hold count + 1 boundaries starting "
                "at the current clock"
            )
        self.clock.advance_to(float(times[-1]))
        utilization = threads / self.cores
        watts = self.power_model.power(
            utilization,
            self.processor.pstate,
            self.processor.max_frequency_ghz,
            self.processor.pstates[0].voltage,
        )
        self.meter.observe_run(times, watts)
        return times

    def idle(self, seconds: float) -> None:
        """Sit idle for ``seconds`` (power meter sees the idle floor)."""
        if seconds < 0:
            raise MachineError(f"cannot idle for negative {seconds!r}s")
        if seconds == 0:
            return
        start = self.clock.now
        end = self.clock.advance(seconds)
        watts = self.power_model.power(
            0.0,
            self.processor.pstate,
            self.processor.max_frequency_ghz,
            self.processor.pstates[0].voltage,
        )
        self.meter.observe(start, end, watts)

    def idle_until(self, timestamp: float) -> None:
        """Idle until the absolute virtual ``timestamp``."""
        if timestamp < self.clock.now:
            raise MachineError(
                f"idle_until target {timestamp!r} is in the past "
                f"(now {self.clock.now!r})"
            )
        self.idle(timestamp - self.clock.now)

    def current_power(self, utilization: float) -> float:
        """Instantaneous power at ``utilization`` in the current P-state."""
        return self.power_model.power(
            utilization,
            self.processor.pstate,
            self.processor.max_frequency_ghz,
            self.processor.pstates[0].voltage,
        )
