"""Sharded multiprocess backend for the datacenter engine.

Between control barriers, machines are completely independent: an
arrival only touches its own host, and co-residency contention is
confined to one machine's clock.  The sharded backend exploits this by
partitioning the machine pool (with the tenants resident on each
machine) across forked worker processes.  Each worker advances its
shard through the same lazy event pump the serial backend runs; the
only cross-shard traffic is at the control barriers.

The barrier protocol mirrors the control plane's view/action split:

1. every worker sends the :class:`~repro.datacenter.controlplane.
   actions.TenantView` snapshots of its resident tenants;
2. the parent — the only process that runs the
   :class:`~repro.datacenter.controlplane.actions.ControlPolicy` —
   assembles the :class:`ClusterView` in binding order, decides,
   validates the actions through the shared
   :func:`~repro.datacenter.controlplane.applier.plan_actions`, and
   scatters the validated plan (caps for the worker's machines, plus
   any tenants emigrating from it);
3. if the plan migrates anyone, source workers run
   :func:`~repro.datacenter.controlplane.applier.emigrate` and return
   the picklable :class:`MigrantState`s, which the parent routes to
   the destination workers to :func:`~repro.datacenter.controlplane.
   applier.absorb` — machines never change shards, tenants do.

When the engine is checkpointing (a journal is attached, or the policy
may fail machines), step 1 additionally ships each worker's tenant and
machine checkpoints with its views; the parent merges them so the
journal record and any failure recovery see exactly the worker-settled
state.  A plan that fail-stops machines travels in the scatter of step
2: the worker owning a dying machine freezes it and drops its
residents, destination workers rebuild the victims from the shipped
checkpoints (the same
:func:`~repro.datacenter.checkpoint.restore_from_checkpoint` the
serial backend runs), and a worker whose *entire* shard has died is
told to ``die`` — it reports its frozen machine state and exits, and
the coordinator excludes it from every later barrier.

Determinism: every worker replays exactly the event subsequence the
serial scheduler would have applied to its machines, settles its hosts
at the same barrier instants, and the parent runs the same policy on
the same assembled view, so a sharded run yields *identical*
per-tenant reports, billing ledgers/bills, cap/budget/migration
history, and pool energy to a serial run of the same scenario —
including scenarios with cross-shard migrations and mid-run budget
shocks (asserted by the parity tests).  At the "done" barrier each
worker returns its tenants' stats, ledgers, and per-host run segments
plus its machines' unattributed idle energy; the parent composes the
bills from those reassembled pieces exactly as the serial collector
would.

The backend requires the ``fork`` start method (workers inherit the
armed engine — closures, generators and all — without pickling); the
engine raises :class:`~repro.datacenter.engine.EngineError` on
platforms without it.  Only plain-data results and migrant states
cross process boundaries.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing
import os
import time
import traceback
from typing import TYPE_CHECKING, Any, Sequence

from repro.datacenter.checkpoint import (
    capture_machine_checkpoint,
    capture_tenant_checkpoint,
    restore_from_checkpoint,
)
from repro.datacenter.controlplane.actions import (
    FailureRecord,
    MigrationRecord,
)
from repro.datacenter.controlplane.applier import (
    absorb,
    emigrate,
    enforce_caps,
    merge_run_results,
    plan_failures,
)
from repro.datacenter.billing import compose_bill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.engine import DatacenterEngine, DatacenterResult

__all__ = [
    "fork_available",
    "partition_machines",
    "run_sharded",
    "usable_cpu_count",
]

_WORKER_BARRIER_TIMEOUT_SECONDS = 120.0
"""How long the coordinator waits for a worker's barrier message
before declaring it hung.  Generous — barriers are milliseconds apart
in practice — and read at call time, so tests shrink it."""


def fork_available() -> bool:
    """Whether the host supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    Respects cgroup/affinity limits (CI containers routinely expose a
    64-core box but pin the job to a couple of cores), unlike
    ``multiprocessing.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def partition_machines(machine_count: int, workers: int) -> list[list[int]]:
    """Round-robin machine indices across ``workers`` shards.

    Round-robin keeps shards balanced when load correlates with machine
    index (scenario builders typically fill machines in order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    workers = min(workers, machine_count)
    return [list(range(start, machine_count, workers)) for start in range(workers)]


def _final_payload(
    engine: "DatacenterEngine",
    machine_indices: Sequence[int],
    resident: Sequence[Any],
    started: float,
) -> dict[str, Any]:
    """A worker's closing report: tenants served, machines metered.

    Shared by the normal ``done`` barrier and the ``dead`` reply of a
    fully-failed shard (which reports no residents — its tenants were
    rebuilt elsewhere — and whose machine meters are frozen at the
    death barrier, so the values equal what the serial backend reads at
    the end of the run).
    """
    machine_power: dict[int, float] = {}
    machine_energy: dict[int, float] = {}
    machine_idle: dict[int, float] = {}
    machine_now: dict[int, float] = {}
    for index in machine_indices:
        machine = engine.machines[index]
        try:
            machine_power[index] = machine.meter.mean_power()
        except Exception:
            machine_power[index] = 0.0
        machine_energy[index] = machine.meter.energy_joules
        machine_idle[index] = engine.idle_energy_joules[index]
        machine_now[index] = machine.now
    return {
        "reports": {
            b.tenant.name: b.stats.report(b.tenant.name, b.tenant.sla)
            for b in resident
        },
        "stats": {b.tenant.name: b.stats for b in resident},
        "ledgers": {b.tenant.name: b.ledger for b in resident},
        "run_segments": {
            b.tenant.name: (*b.run_segments, b.runtime.finish())
            for b in resident
        },
        "machine_power": machine_power,
        "machine_energy": machine_energy,
        "machine_idle": machine_idle,
        "machine_now": machine_now,
        # Shard CPU seconds (barrier waits excluded by construction)
        # — the bench harness uses it to project multi-core
        # wall-clock from single-core hosts.
        "busy_seconds": time.process_time() - started,
    }


def _worker_main(
    engine: "DatacenterEngine",
    machine_indices: Sequence[int],
    tick_times: Sequence[float],
    final_time: float,
    conn,
) -> None:
    """Advance one shard to completion, exchanging views/plans at barriers."""
    from repro.datacenter.engine import _EventPump

    try:
        # Workers never journal: the coordinator owns the journal (and
        # the inherited file handle must not be double-written).
        engine.journal = None
        # Workers are short-lived batch processes: everything they
        # allocate dies with them, so cyclic GC is pure overhead here.
        gc.disable()
        # CPU time, not wall: on hosts with fewer cores than workers the
        # processes time-slice, and wall-clock deltas would count the
        # *other* workers' turns.  Blocking at barriers burns no CPU.
        started = time.process_time()
        owned = set(machine_indices)
        hosts = [engine.hosts[i] for i in machine_indices]
        resident = [b for b in engine.bindings if b.machine_index in owned]
        by_name = {b.tenant.name: b for b in engine.bindings}
        pump = _EventPump(engine, resident)

        for now in tick_times:
            pump.run_until(now)
            engine._advance_barrier(hosts, now)
            if engine._checkpointing:
                checkpoints = (
                    {
                        b.tenant.name: capture_tenant_checkpoint(b)
                        for b in resident
                    },
                    {
                        i: capture_machine_checkpoint(engine, i)
                        for i in machine_indices
                    },
                )
            else:
                checkpoints = None
            conn.send(
                (
                    "views",
                    (
                        [engine._tenant_view(b, now) for b in resident],
                        checkpoints,
                    ),
                )
            )
            message = conn.recv()
            if message[0] == "die":
                # Every machine in this shard fail-stopped at this
                # barrier; its residents are being rebuilt in surviving
                # workers.  Report the frozen machine state and exit.
                conn.send(
                    ("dead", _final_payload(engine, machine_indices, [], started))
                )
                return
            if message[0] != "plan":  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"expected plan at barrier, got {message[0]!r}"
                )
            _, caps, emigrations, any_migrations, failure_moves, victim_cps = (
                message
            )
            # Deaths first (mirroring the serial applier: a dying
            # machine keeps its pre-barrier frequency), then caps on
            # the shard's surviving machines, then victim restores.
            for dead_index, _moves in failure_moves:
                if dead_index in owned:
                    engine.dead_machines.add(dead_index)
                    dead_host = engine.hosts[dead_index]
                    for binding in list(dead_host.instances):
                        pump.remove(binding)
                        resident.remove(binding)
                    dead_host.instances.clear()
            if caps is not None:
                # A None entry means the coordinator's actuation step
                # left that machine alone this barrier (dropped command
                # or retry backoff under an injected actuator fault).
                live = [
                    i for i in machine_indices
                    if i not in engine.dead_machines and caps[i] is not None
                ]
                enforce_caps(
                    [engine.machines[i] for i in live],
                    [caps[i] for i in live],
                )
            for _dead_index, moves in failure_moves:
                for tenant, dest in moves:
                    binding = by_name[tenant]
                    binding.machine_index = dest
                    if dest in owned:
                        checkpoint = victim_cps[tenant]
                        restore_from_checkpoint(
                            engine, binding, checkpoint, dest
                        )
                        # offered == the tenant's arrival-stream cursor.
                        pump.add(binding, checkpoint.offered)
                        resident.append(binding)
            if any_migrations:
                migrants = []
                for migration in emigrations:
                    binding = by_name[migration.tenant]
                    trace_pos = pump.remove(binding)
                    migrants.append(
                        emigrate(engine, binding, trace_pos, warm=migration.warm)
                    )
                    resident.remove(binding)
                conn.send(("migrants", migrants))
                message = conn.recv()
                if message[0] != "absorb":  # pragma: no cover - protocol guard
                    raise RuntimeError(
                        f"expected absorb at barrier, got {message[0]!r}"
                    )
                for migrant, dest_index, cost_seconds in message[1]:
                    binding = by_name[migrant.tenant]
                    absorb(engine, binding, migrant, dest_index, cost_seconds)
                    pump.add(binding, migrant.trace_pos)
                    resident.append(binding)

        pump.run_until(None)
        engine._advance_barrier(hosts, final_time)
        for binding in resident:
            binding.runtime.close_input()
        for host in hosts:
            engine._drain(host)
        conn.send(
            ("done", _final_payload(engine, machine_indices, resident, started))
        )
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()


def run_sharded(engine: "DatacenterEngine") -> "DatacenterResult":
    """Execute ``engine``'s scenario across forked shard workers.

    The parent arms the runtimes and runs the time-zero control barrier
    *before* forking (workers inherit that state), then acts purely as
    the control-plane coordinator: gather tenant views, run the policy
    and central validation, scatter validated caps, and route migrant
    states between workers.  Results are reassembled in binding/machine
    order so every float is summed in the same order the serial backend
    uses.
    """
    from repro.datacenter.engine import DatacenterResult, EngineError

    if not fork_available():
        raise EngineError(
            "sharded backend requires the 'fork' multiprocessing start "
            "method (unavailable on this platform); use backend='serial'"
        )
    context = multiprocessing.get_context("fork")
    requested = engine.workers or usable_cpu_count()
    shards = partition_machines(len(engine.machines), requested)
    shard_of_machine = {
        machine_index: worker_index
        for worker_index, shard in enumerate(shards)
        for machine_index in shard
    }
    parent_bindings = {b.tenant.name: b for b in engine.bindings}

    # Barrier times before _begin_run: a policy may derive per-run
    # state (e.g. a chaos kill schedule) in barrier_times(), which the
    # time-zero decide inside _begin_run() already relies on.
    tick_times = engine._tick_times()
    cap_history = engine._begin_run()
    final_time = engine._final_event_time(tick_times)

    connections = []
    processes = []
    try:
        for shard in shards:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(engine, shard, tick_times, final_time, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        def receive(worker_index, conn, process, expected: str, barrier_time):
            # Supervise at the barrier protocol level: a worker that
            # fail-stops or wedges is detected here and named, instead
            # of the coordinator blocking forever on a dead pipe.
            where = (
                f"shard worker {worker_index} "
                f"(machines {list(shards[worker_index])}) "
                f"at barrier t={barrier_time:g}"
            )
            deadline = time.monotonic() + _WORKER_BARRIER_TIMEOUT_SECONDS
            while not conn.poll(min(1.0, _WORKER_BARRIER_TIMEOUT_SECONDS)):
                if not process.is_alive():
                    raise EngineError(
                        f"{where} died without reporting "
                        f"(exit code {process.exitcode!r})"
                    )
                if time.monotonic() >= deadline:
                    raise EngineError(
                        f"{where} hung: no {expected!r} message within "
                        f"{_WORKER_BARRIER_TIMEOUT_SECONDS:g}s "
                        f"(pid {process.pid})"
                    )
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # EOFError for a cleanly closed pipe; OSError (e.g.
                # ECONNRESET) when the worker dies while the read is
                # in flight — which of the two surfaces is a race.
                process.join(timeout=1.0)
                raise EngineError(
                    f"{where} died mid-message "
                    f"(exit code {process.exitcode!r})"
                ) from None
            if message[0] == "error":
                raise EngineError(f"{where} failed:\n{message[1]}")
            if message[0] != expected:  # pragma: no cover - protocol guard
                raise EngineError(
                    f"shard protocol error: expected {expected!r}, "
                    f"got {message[0]!r}"
                )
            return message[1]

        def dispatch(worker_index, conn, process, message, barrier_time):
            # The send half of the supervisor: a worker that died since
            # its last report surfaces here as a broken pipe, named the
            # same way receive() names it.
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                process.join(timeout=1.0)
                raise EngineError(
                    f"shard worker {worker_index} "
                    f"(machines {list(shards[worker_index])}) "
                    f"at barrier t={barrier_time:g} died before accepting "
                    f"a {message[0]!r} message "
                    f"(exit code {process.exitcode!r})"
                ) from None

        alive_worker = [True] * len(shards)
        payload_by_worker: dict[int, Any] = {}
        # Death-barrier machine checkpoints of fully-failed shards, so
        # later journal records still carry every machine's state.
        frozen_machine_cps: dict[int, Any] = {}

        def live_workers():
            for worker_index, conn in enumerate(connections):
                if alive_worker[worker_index]:
                    yield worker_index, conn, processes[worker_index]

        for now in tick_times:
            views_by_name: dict[str, Any] = {}
            tenant_cps: dict[str, Any] = {}
            machine_cps: dict[int, Any] = dict(frozen_machine_cps)
            for worker_index, conn, process in live_workers():
                views, checkpoints = receive(
                    worker_index, conn, process, "views", now
                )
                for view in views:
                    views_by_name[view.name] = view
                if checkpoints is not None:
                    tenant_cps.update(checkpoints[0])
                    machine_cps.update(checkpoints[1])
            if engine._checkpointing:
                engine._last_checkpoints = tenant_cps
                engine._last_machine_checkpoints = [
                    machine_cps[i] for i in range(len(engine.machines))
                ]
            tenants = tuple(
                views_by_name[b.tenant.name] for b in engine.bindings
            )
            actions, plan = engine._decide_plan(
                engine._control_view(now, tenants)
            )
            engine._record_plan(plan, now, cap_history)
            # Push the commanded caps through the (possibly faulty)
            # actuators exactly as the serial backend does — the same
            # choke point, run in the coordinator so retry state and
            # journaled records are identical; workers only enforce.
            applied_caps, fault_records, retry_records = engine._actuate(
                now, plan
            )

            # Failures: the coordinator runs the same placement math as
            # the serial applier, marks the deaths, and ships each
            # victim's checkpoint to the worker owning its destination.
            failure_moves: list[tuple[int, list[tuple[str, int]]]] = []
            victim_cps: dict[str, Any] = {}
            failure_records: list[FailureRecord] = []
            if plan.failures:
                if not engine._checkpointing:
                    from repro.datacenter.controlplane.actions import (
                        ControlError,
                    )

                    raise ControlError(
                        "FailMachine requires barrier checkpoints: run with "
                        "a journal attached or a policy declaring "
                        "may_fail_machines (e.g. ChaosPolicy)"
                    )
                failed = [f.machine_index for f in plan.failures]
                placements = [
                    (b.tenant.name, b.machine_index) for b in engine.bindings
                ]
                failure_moves = plan_failures(
                    placements,
                    len(engine.machines),
                    set(engine.dead_machines),
                    failed,
                )
                engine.dead_machines.update(failed)
                for dead_index, moves in failure_moves:
                    replacements = []
                    for tenant, dest in moves:
                        victim_cps[tenant] = tenant_cps[tenant]
                        parent_bindings[tenant].machine_index = dest
                        replacements.append(
                            MigrationRecord(
                                time=now,
                                tenant=tenant,
                                source_machine_index=dead_index,
                                dest_machine_index=dest,
                                cost_seconds=0.0,
                                warm=True,
                            )
                        )
                    failure_records.append(
                        FailureRecord(
                            time=now,
                            machine_index=dead_index,
                            replacements=tuple(replacements),
                        )
                    )
                engine.failure_history.extend(failure_records)

            dying_workers = [
                worker_index
                for worker_index, shard in enumerate(shards)
                if alive_worker[worker_index]
                and all(i in engine.dead_machines for i in shard)
            ]
            for worker_index in dying_workers:
                for machine_index in shards[worker_index]:
                    frozen_machine_cps[machine_index] = dataclasses.replace(
                        machine_cps[machine_index], alive=False
                    )

            emigrations_by_worker: list[list[Any]] = [[] for _ in shards]
            for migration in plan.migrations:
                source = parent_bindings[migration.tenant].machine_index
                emigrations_by_worker[shard_of_machine[source]].append(
                    migration
                )
            any_migrations = bool(plan.migrations)
            for worker_index, conn, process in live_workers():
                if worker_index in dying_workers:
                    dispatch(worker_index, conn, process, ("die",), now)
                else:
                    dispatch(
                        worker_index,
                        conn,
                        process,
                        (
                            "plan",
                            applied_caps,
                            emigrations_by_worker[worker_index],
                            any_migrations,
                            failure_moves,
                            victim_cps,
                        ),
                        now,
                    )
            for worker_index in dying_workers:
                payload_by_worker[worker_index] = receive(
                    worker_index,
                    connections[worker_index],
                    processes[worker_index],
                    "dead",
                    now,
                )
                alive_worker[worker_index] = False

            migration_records: list[MigrationRecord] = []
            if any_migrations:
                migrants_by_tenant: dict[str, Any] = {}
                for worker_index, conn, process in live_workers():
                    for migrant in receive(
                        worker_index, conn, process, "migrants", now
                    ):
                        migrants_by_tenant[migrant.tenant] = migrant
                absorb_by_worker: list[list[Any]] = [[] for _ in shards]
                for migration in plan.migrations:
                    migrant = migrants_by_tenant[migration.tenant]
                    dest = migration.dest_machine_index
                    absorb_by_worker[shard_of_machine[dest]].append(
                        (migrant, dest, migration.cost_seconds)
                    )
                    binding = parent_bindings[migration.tenant]
                    record = MigrationRecord(
                        time=now,
                        tenant=migration.tenant,
                        source_machine_index=binding.machine_index,
                        dest_machine_index=dest,
                        cost_seconds=migration.cost_seconds,
                        warm=migration.warm,
                    )
                    engine.migration_history.append(record)
                    migration_records.append(record)
                    binding.machine_index = dest
                for worker_index, conn, process in live_workers():
                    dispatch(
                        worker_index,
                        conn,
                        process,
                        ("absorb", absorb_by_worker[worker_index]),
                        now,
                    )
            engine._journal_barrier(
                now,
                actions,
                migration_records,
                failure_records,
                fault_records,
                retry_records,
            )

        for worker_index, conn, process in live_workers():
            payload_by_worker[worker_index] = receive(
                worker_index, conn, process, "done", final_time
            )
        payloads = [
            payload_by_worker[worker_index] for worker_index in range(len(shards))
        ]
    finally:
        # Teardown only: worker death/hang is detected and raised by
        # receive() above, so this just reaps.  Closing the pipes first
        # unblocks any worker still waiting at a barrier (its recv sees
        # EOF and the process exits); terminate() is the last resort
        # for a worker wedged outside the protocol.
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join()

    reports_by_name: dict[str, Any] = {}
    stats_by_name: dict[str, Any] = {}
    ledgers_by_name: dict[str, Any] = {}
    segments_by_name: dict[str, Any] = {}
    machine_power: dict[int, float] = {}
    machine_energy: dict[int, float] = {}
    machine_idle: dict[int, float] = {}
    machine_now: dict[int, float] = {}
    for payload in payloads:
        reports_by_name.update(payload["reports"])
        stats_by_name.update(payload["stats"])
        ledgers_by_name.update(payload["ledgers"])
        segments_by_name.update(payload["run_segments"])
        machine_power.update(payload["machine_power"])
        machine_energy.update(payload["machine_energy"])
        machine_idle.update(payload["machine_idle"])
        machine_now.update(payload["machine_now"])
    # Telemetry for the bench harness: per-shard CPU seconds.
    engine.shard_busy_seconds = [p["busy_seconds"] for p in payloads]

    # Reflect worker-side accounting on the parent's bindings and idle
    # account so callers inspecting the engine after run() see the same
    # data serial leaves behind (runtime generator state stays
    # worker-side).
    for binding in engine.bindings:
        binding.stats = stats_by_name[binding.tenant.name]
        binding.ledger = ledgers_by_name[binding.tenant.name]
    for index, idle in machine_idle.items():
        engine.idle_energy_joules[index] = idle

    # Bills are composed from the same (report, ledger, run-segments)
    # triples a serial run would pass, in the same binding order, so
    # every float matches the serial backend bit for bit.
    bills = [
        compose_bill(
            binding.machine_index,
            reports_by_name[binding.tenant.name],
            binding.ledger,
            segments_by_name[binding.tenant.name],
        )
        for binding in engine.bindings
    ]

    return DatacenterResult(
        tenant_reports=[
            reports_by_name[b.tenant.name] for b in engine.bindings
        ],
        run_results={
            b.tenant.name: merge_run_results(
                segments_by_name[b.tenant.name]
            )
            for b in engine.bindings
        },
        bills=bills,
        idle_energy_joules=list(engine.idle_energy_joules),
        machine_mean_power=[
            machine_power[i] for i in range(len(engine.machines))
        ],
        total_energy_joules=sum(
            machine_energy[i] for i in range(len(engine.machines))
        ),
        makespan=max(machine_now[i] for i in range(len(engine.machines))),
        budget_watts=engine._budget,
        cap_history=cap_history,
        budget_history=list(engine.budget_history),
        migrations=list(engine.migration_history),
        failures=list(engine.failure_history),
        faults=list(engine.fault_history),
        retries=list(engine.retry_history),
    )
