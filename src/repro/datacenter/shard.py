"""Sharded multiprocess backend for the datacenter engine.

Between arbiter barriers, machines are completely independent: an
arrival only touches its own host, and co-residency contention is
confined to one machine's clock.  The sharded backend exploits this by
partitioning the machine pool (with the tenants resident on each
machine) across forked worker processes.  Each worker advances its
shard through the same lazy event loop the serial backend runs; the
only cross-shard traffic is at the arbiter barriers, where workers
report per-machine SLA violation scores and receive the freshly
allocated power caps — a few floats per machine per tick.

Determinism: every worker replays exactly the event subsequence the
serial scheduler would have applied to its machines, settles its hosts
at the same barrier instants, and the parent runs the same arbiter
allocation on the same assembled score vector, so a sharded run yields
*identical* per-tenant reports, billing ledgers/bills, cap history,
and pool energy to a serial run of the same scenario (asserted by the
parity tests).  At the "done" barrier each worker additionally returns
its tenants' billing ledgers and its machines' unattributed idle
energy; the parent composes the bills from those reassembled pieces
exactly as the serial collector would.

The backend requires the ``fork`` start method (workers inherit the
armed engine — closures, generators and all — without pickling); the
engine raises :class:`~repro.datacenter.engine.EngineError` on
platforms without it.  Only results cross process boundaries, and those
are plain dataclasses.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import traceback
from typing import TYPE_CHECKING, Any, Sequence

from repro.datacenter.arbiter import frequency_for_cap
from repro.datacenter.billing import compose_bill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.engine import DatacenterEngine, DatacenterResult

__all__ = [
    "fork_available",
    "partition_machines",
    "run_sharded",
    "usable_cpu_count",
]


def fork_available() -> bool:
    """Whether the host supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    Respects cgroup/affinity limits (CI containers routinely expose a
    64-core box but pin the job to a couple of cores), unlike
    ``multiprocessing.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def partition_machines(machine_count: int, workers: int) -> list[list[int]]:
    """Round-robin machine indices across ``workers`` shards.

    Round-robin keeps shards balanced when load correlates with machine
    index (scenario builders typically fill machines in order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    workers = min(workers, machine_count)
    return [list(range(start, machine_count, workers)) for start in range(workers)]


def _worker_main(
    engine: "DatacenterEngine",
    machine_indices: Sequence[int],
    tick_times: Sequence[float],
    final_time: float,
    conn,
) -> None:
    """Advance one shard to completion, exchanging scores/caps at barriers."""
    try:
        # Workers are short-lived batch processes: everything they
        # allocate dies with them, so cyclic GC is pure overhead here.
        gc.disable()
        # CPU time, not wall: on hosts with fewer cores than workers the
        # processes time-slice, and wall-clock deltas would count the
        # *other* workers' turns.  Blocking at barriers burns no CPU.
        started = time.process_time()
        owned = set(machine_indices)
        hosts = [engine.hosts[i] for i in machine_indices]
        bindings = [b for b in engine.bindings if b.machine_index in owned]

        def on_tick(now: float) -> None:
            scores = engine._violation_scores(now, bindings)
            conn.send(("scores", [scores[i] for i in machine_indices]))
            message = conn.recv()
            if message[0] != "caps":  # pragma: no cover - protocol guard
                raise RuntimeError(f"expected caps at barrier, got {message[0]!r}")
            for host, cap in zip(hosts, message[1]):
                host.machine.set_frequency(frequency_for_cap(host.machine, cap))

        engine._pump(
            engine._event_stream(bindings, tick_times),
            hosts,
            final_time,
            on_tick,
        )
        for binding in bindings:
            binding.runtime.close_input()
        for host in hosts:
            engine._drain(host)

        machine_power: dict[int, float] = {}
        machine_energy: dict[int, float] = {}
        machine_idle: dict[int, float] = {}
        machine_now: dict[int, float] = {}
        for index in machine_indices:
            machine = engine.machines[index]
            try:
                machine_power[index] = machine.meter.mean_power()
            except Exception:
                machine_power[index] = 0.0
            machine_energy[index] = machine.meter.energy_joules
            machine_idle[index] = engine.idle_energy_joules[index]
            machine_now[index] = machine.now
        payload: dict[str, Any] = {
            "reports": {
                b.tenant.name: b.stats.report(b.tenant.name, b.tenant.sla)
                for b in bindings
            },
            "stats": {b.tenant.name: b.stats for b in bindings},
            "ledgers": {b.tenant.name: b.ledger for b in bindings},
            "run_results": {
                b.tenant.name: b.runtime.finish() for b in bindings
            },
            "machine_power": machine_power,
            "machine_energy": machine_energy,
            "machine_idle": machine_idle,
            "machine_now": machine_now,
            # Shard CPU seconds (barrier waits excluded by construction)
            # — the bench harness uses it to project multi-core
            # wall-clock from single-core hosts.
            "busy_seconds": time.process_time() - started,
        }
        conn.send(("done", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()


def run_sharded(engine: "DatacenterEngine") -> "DatacenterResult":
    """Execute ``engine``'s scenario across forked shard workers.

    The parent arms the runtimes and applies the time-zero caps *before*
    forking (workers inherit that state), then acts purely as the
    barrier coordinator: gather violation scores, run the arbiter's
    allocation, scatter the new caps.  Results are reassembled in
    binding/machine order so every float is summed in the same order the
    serial backend uses.
    """
    from repro.datacenter.engine import DatacenterResult, EngineError

    if not fork_available():
        raise EngineError(
            "sharded backend requires the 'fork' multiprocessing start "
            "method (unavailable on this platform); use backend='serial'"
        )
    context = multiprocessing.get_context("fork")
    requested = engine.workers or usable_cpu_count()
    shards = partition_machines(len(engine.machines), requested)

    cap_history = engine._begin_run()
    tick_times = engine._tick_times()
    final_time = engine._final_event_time(tick_times)

    connections = []
    processes = []
    try:
        for shard in shards:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(engine, shard, tick_times, final_time, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        def receive(conn, process, expected: str):
            try:
                message = conn.recv()
            except EOFError:
                raise EngineError(
                    f"shard worker died unexpectedly "
                    f"(exit code {process.exitcode!r})"
                ) from None
            if message[0] == "error":
                raise EngineError(f"shard worker failed:\n{message[1]}")
            if message[0] != expected:  # pragma: no cover - protocol guard
                raise EngineError(
                    f"shard protocol error: expected {expected!r}, "
                    f"got {message[0]!r}"
                )
            return message[1]

        for now in tick_times:
            scores = [0.0] * len(engine.machines)
            for conn, process, shard in zip(connections, processes, shards):
                shard_scores = receive(conn, process, "scores")
                for index, score in zip(shard, shard_scores):
                    scores[index] = score
            if engine.arbiter is None:
                raise EngineError("arbiter tick scheduled without an arbiter")
            caps = engine.arbiter.allocate(scores)
            cap_history.append((now, tuple(caps)))
            for conn, shard in zip(connections, shards):
                conn.send(("caps", [caps[i] for i in shard]))

        payloads = [
            receive(conn, process, "done")
            for conn, process in zip(connections, processes)
        ]
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join()

    reports_by_name: dict[str, Any] = {}
    stats_by_name: dict[str, Any] = {}
    ledgers_by_name: dict[str, Any] = {}
    run_results_by_name: dict[str, Any] = {}
    machine_power: dict[int, float] = {}
    machine_energy: dict[int, float] = {}
    machine_idle: dict[int, float] = {}
    machine_now: dict[int, float] = {}
    for payload in payloads:
        reports_by_name.update(payload["reports"])
        stats_by_name.update(payload["stats"])
        ledgers_by_name.update(payload["ledgers"])
        run_results_by_name.update(payload["run_results"])
        machine_power.update(payload["machine_power"])
        machine_energy.update(payload["machine_energy"])
        machine_idle.update(payload["machine_idle"])
        machine_now.update(payload["machine_now"])
    # Telemetry for the bench harness: per-shard CPU seconds.
    engine.shard_busy_seconds = [p["busy_seconds"] for p in payloads]

    # Reflect worker-side accounting on the parent's bindings and idle
    # account so callers inspecting the engine after run() see the same
    # data serial leaves behind (runtime generator state stays
    # worker-side).
    for binding in engine.bindings:
        binding.stats = stats_by_name[binding.tenant.name]
        binding.ledger = ledgers_by_name[binding.tenant.name]
    for index, idle in machine_idle.items():
        engine.idle_energy_joules[index] = idle

    # Bills are composed from the same (report, ledger, run-result)
    # triples a serial run would pass, in the same binding order, so
    # every float matches the serial backend bit for bit.
    bills = [
        compose_bill(
            binding.machine_index,
            reports_by_name[binding.tenant.name],
            binding.ledger,
            run_results_by_name[binding.tenant.name],
        )
        for binding in engine.bindings
    ]

    return DatacenterResult(
        tenant_reports=[
            reports_by_name[b.tenant.name] for b in engine.bindings
        ],
        run_results={
            b.tenant.name: run_results_by_name[b.tenant.name]
            for b in engine.bindings
        },
        bills=bills,
        idle_energy_joules=list(engine.idle_energy_joules),
        machine_mean_power=[
            machine_power[i] for i in range(len(engine.machines))
        ],
        total_energy_joules=sum(
            machine_energy[i] for i in range(len(engine.machines))
        ),
        makespan=max(machine_now[i] for i in range(len(engine.machines))),
        budget_watts=(
            engine.arbiter.budget_watts if engine.arbiter is not None else None
        ),
        cap_history=cap_history,
    )
