"""Sharded multiprocess backend for the datacenter engine.

Between control barriers, machines are completely independent: an
arrival only touches its own host, and co-residency contention is
confined to one machine's clock.  The sharded backend exploits this by
partitioning the machine pool (with the tenants resident on each
machine) across forked worker processes.  Each worker advances its
shard through the same lazy event pump the serial backend runs; the
only cross-shard traffic is at the control barriers.

**Barrier protocol v2** moves that traffic through preallocated
``multiprocessing.shared_memory`` segments instead of pickling whole
snapshots over Pipes, and ships O(changes) typed deltas (the
:mod:`repro.datacenter.deltas` codec) instead of O(machines) state:

1. every worker encodes the :class:`~repro.datacenter.controlplane.
   actions.TenantView` records of its resident tenants *that changed
   since it last published* into its upstream segment, then stamps the
   segment header's barrier ordinal — the ready flag the coordinator
   polls (no pipe message at all on the upstream half);
2. the parent — the only process that runs the
   :class:`~repro.datacenter.controlplane.actions.ControlPolicy` —
   keeps every worker's last-published views resident, overlays the
   deltas, assembles the :class:`ClusterView` in binding order,
   decides, validates through the shared
   :func:`~repro.datacenter.controlplane.applier.plan_actions`, writes
   the *changed* applied caps into each worker's downstream segment,
   and sends a tiny ``plan`` control frame over the Pipe (placement
   and failure routing only — bulk state never rides the Pipe);
3. if the plan migrates anyone, source workers run
   :func:`~repro.datacenter.controlplane.applier.emigrate` and return
   the picklable :class:`MigrantState`s, which the parent routes to
   the destination workers to :func:`~repro.datacenter.controlplane.
   applier.absorb` — machines never change shards, tenants do.  A
   binding that leaves or joins a worker resets that worker's delta
   baseline for it, so the next barrier republishes it in full.

Under a policy whose ``aggregation`` is ``"machine-demand"`` (the
``hier-arbitrated`` :class:`~repro.datacenter.controlplane.hierarchy.
HierarchicalArbiter`) and no journal/fault machinery, workers skip
tenant views entirely and publish one demand score per owned machine —
summed over residents in binding order, so the partial sums are
bit-identical to the serial
:meth:`~repro.datacenter.controlplane.actions.ClusterView.
machine_shortfalls` — and the parent arbitrates through the policy's
``caps_for_demand`` (the same arithmetic path ``decide`` uses).

Journal checkpoints are **lazy**: full tenant + machine checkpoints
ride the Pipe every barrier only when a journal is attached (the
journal record needs them).  A failure-capable run *without* a journal
captures tenant checkpoints worker-locally and ships only the victims'
at a failure barrier — the coordinator asks the owning workers
(``victim_cps`` replies), a fully-failed shard returns its residents'
checkpoints with its ``dead`` report, and destination workers receive
exactly the checkpoints they must restore in a ``restore`` frame.

Determinism: every worker replays exactly the event subsequence the
serial scheduler would have applied to its machines, settles its hosts
at the same barrier instants, and the parent runs the same policy on
the same assembled view — a delta is shipped precisely when its packed
bytes changed, so the overlay table equals freshly computed views
bit-for-bit — so a sharded run yields *identical* per-tenant reports,
billing ledgers/bills, cap/budget/migration history, and pool energy
to a serial run of the same scenario (asserted by the parity tests).
At the ``done`` barrier each worker returns its tenants' stats,
ledgers, and per-host run segments plus its machines' unattributed
idle energy; the parent composes the bills from those reassembled
pieces exactly as the serial collector would.

Lifecycle: the parent creates the ``reproshard_*`` segments before
forking and owns their teardown — close + unlink in a ``finally`` that
also covers every worker-death :class:`EngineError` path, so crashed
runs leak nothing into ``/dev/shm`` (pinned by the shard tests).
Workers only close their inherited mappings.  Worker supervision
covers both transports: pipe reads and shared-memory ready-flag waits
share :data:`_WORKER_BARRIER_TIMEOUT_SECONDS`, and a worker that dies
or wedges mid-segment-write raises an :class:`EngineError` naming the
worker, its machines, and the barrier.

The backend requires the ``fork`` start method (workers inherit the
armed engine — closures, generators and all — without pickling); the
engine raises :class:`~repro.datacenter.engine.EngineError` on
platforms without it.  Only plain-data control frames, migrant states,
and final results cross the Pipes.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing
import os
import time
import traceback
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Sequence

from repro.datacenter import deltas
from repro.datacenter.checkpoint import (
    capture_machine_checkpoint,
    capture_tenant_checkpoint,
    restore_from_checkpoint,
)
from repro.datacenter.controlplane.actions import (
    FailureRecord,
    MigrationRecord,
    SetCaps,
)
from repro.datacenter.controlplane.applier import (
    absorb,
    emigrate,
    enforce_caps,
    merge_run_results,
    plan_actions,
    plan_failures,
)
from repro.datacenter.billing import compose_bill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.engine import DatacenterEngine, DatacenterResult

__all__ = [
    "SEGMENT_PREFIX",
    "fork_available",
    "partition_machines",
    "run_sharded",
    "usable_cpu_count",
]

_WORKER_BARRIER_TIMEOUT_SECONDS = 120.0
"""How long the coordinator waits for a worker's barrier message or
shared-memory ready flag before declaring it hung.  Generous —
barriers are milliseconds apart in practice — and read at call time,
so tests shrink it."""

SEGMENT_PREFIX = "reproshard"
"""Shared-memory segment name prefix; the leak tests glob for it."""

_FLAG_POLL_SECONDS = 0.0002
"""Coordinator sleep between shared-memory ready-flag polls."""


def fork_available() -> bool:
    """Whether the host supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    Respects cgroup/affinity limits (CI containers routinely expose a
    64-core box but pin the job to a couple of cores), unlike
    ``multiprocessing.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def partition_machines(machine_count: int, workers: int) -> list[list[int]]:
    """Round-robin machine indices across ``workers`` shards.

    Round-robin keeps shards balanced when load correlates with machine
    index (scenario builders typically fill machines in order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    workers = min(workers, machine_count)
    return [list(range(start, machine_count, workers)) for start in range(workers)]


def _publish_upstream(segment, seq: int, records: Sequence[bytes]) -> int:
    """Publish one barrier's upstream delta payload and stamp its flag.

    A module-level seam on purpose: the supervision tests monkeypatch
    it before forking (workers inherit the patched module) to simulate
    a worker dying or wedging mid-segment-write.
    """
    return deltas.publish(segment.buf, seq, records)


def _final_payload(
    engine: "DatacenterEngine",
    machine_indices: Sequence[int],
    resident: Sequence[Any],
    started: float,
) -> dict[str, Any]:
    """A worker's closing report: tenants served, machines metered.

    Shared by the normal ``done`` barrier and the ``dead`` reply of a
    fully-failed shard (which reports no residents — its tenants were
    rebuilt elsewhere — and whose machine meters are frozen at the
    death barrier, so the values equal what the serial backend reads at
    the end of the run).
    """
    machine_power: dict[int, float] = {}
    machine_energy: dict[int, float] = {}
    machine_idle: dict[int, float] = {}
    machine_now: dict[int, float] = {}
    for index in machine_indices:
        machine = engine.machines[index]
        try:
            machine_power[index] = machine.meter.mean_power()
        except Exception:
            machine_power[index] = 0.0
        machine_energy[index] = machine.meter.energy_joules
        machine_idle[index] = engine.idle_energy_joules[index]
        machine_now[index] = machine.now
    return {
        "reports": {
            b.tenant.name: b.stats.report(b.tenant.name, b.tenant.sla)
            for b in resident
        },
        "stats": {b.tenant.name: b.stats for b in resident},
        "ledgers": {b.tenant.name: b.ledger for b in resident},
        "run_segments": {
            b.tenant.name: (*b.run_segments, b.runtime.finish())
            for b in resident
        },
        "machine_power": machine_power,
        "machine_energy": machine_energy,
        "machine_idle": machine_idle,
        "machine_now": machine_now,
        # Shard CPU seconds (barrier waits excluded by construction)
        # — the bench harness uses it to project multi-core
        # wall-clock from single-core hosts.
        "busy_seconds": time.process_time() - started,
    }


def _worker_main(
    engine: "DatacenterEngine",
    machine_indices: Sequence[int],
    tick_times: Sequence[float],
    final_time: float,
    conn,
    upstream,
    downstream,
    protocol: str,
    ship_checkpoints: bool,
) -> None:
    """Advance one shard to completion, exchanging deltas at barriers.

    ``protocol`` selects the upstream payload — ``"views"`` (tenant-
    view deltas) or ``"demand"`` (per-machine demand scores).
    ``ship_checkpoints`` sends full tenant + machine checkpoints over
    the pipe every barrier (journal mode); otherwise a checkpointing
    worker captures tenant checkpoints locally and ships only the
    victims the coordinator asks for at a failure barrier.
    """
    from repro.datacenter.engine import _EventPump

    try:
        # Workers never journal: the coordinator owns the journal (and
        # the inherited file handle must not be double-written).
        engine.journal = None
        # Workers are short-lived batch processes: everything they
        # allocate dies with them, so cyclic GC is pure overhead here.
        gc.disable()
        # CPU time, not wall: on hosts with fewer cores than workers the
        # processes time-slice, and wall-clock deltas would count the
        # *other* workers' turns.  Blocking at barriers burns no CPU.
        started = time.process_time()
        owned = set(machine_indices)
        hosts = [engine.hosts[i] for i in machine_indices]
        # Binding order everywhere: ``resident`` must stay a
        # subsequence of engine.bindings so demand partial sums and
        # view tuples keep the serial float order.
        resident = [b for b in engine.bindings if b.machine_index in owned]
        by_name = {b.tenant.name: b for b in engine.bindings}
        binding_index = {
            b.tenant.name: i for i, b in enumerate(engine.bindings)
        }
        # Delta baselines: the packed bytes last published per key.  A
        # record ships exactly when its bytes changed, so the
        # coordinator's overlay table stays bitwise equal to a fresh
        # snapshot.  Keys are dropped whenever a binding leaves or
        # joins this worker, forcing a full republish.
        last_sent: dict[int, bytes] = {}
        local_cps: dict[str, Any] = {}
        pump = _EventPump(engine, resident)

        for seq, now in enumerate(tick_times, start=1):
            pump.run_until(now)
            engine._advance_barrier(hosts, now)
            if engine._checkpointing:
                local_cps = {
                    b.tenant.name: capture_tenant_checkpoint(b)
                    for b in resident
                }
            if ship_checkpoints:
                # Journal mode: the coordinator's barrier record needs
                # the full checkpoint, so it rides the pipe (sent
                # before the flag so the coordinator's pipe read never
                # races the flag wait).
                conn.send(
                    (
                        "cps",
                        (
                            dict(local_cps),
                            {
                                i: capture_machine_checkpoint(engine, i)
                                for i in machine_indices
                            },
                        ),
                    )
                )
            if protocol == "demand":
                scores = {i: 0.0 for i in machine_indices}
                for b in resident:
                    scores[b.machine_index] += (
                        b.tenant.weight * engine._tenant_shortfall(b, now)
                    )
                records = []
                for i in machine_indices:
                    record = deltas.encode_score_record(i, scores[i])
                    if last_sent.get(i) != record:
                        last_sent[i] = record
                        records.append(record)
            else:
                records = []
                for b in resident:
                    bindex = binding_index[b.tenant.name]
                    record = deltas.encode_tenant_record(
                        bindex, engine._tenant_view(b, now)
                    )
                    if last_sent.get(bindex) != record:
                        last_sent[bindex] = record
                        records.append(record)
            _publish_upstream(upstream, seq, records)

            message = conn.recv()
            if message[0] == "die":
                # Every machine in this shard fail-stopped at this
                # barrier; its residents are being rebuilt in surviving
                # workers.  Report the frozen machine state — plus the
                # victims' locally captured checkpoints when the
                # coordinator is not gathering them every barrier —
                # and exit.
                conn.send(
                    (
                        "dead",
                        (
                            {} if ship_checkpoints else dict(local_cps),
                            _final_payload(
                                engine, machine_indices, [], started
                            ),
                        ),
                    )
                )
                return
            if message[0] != "plan":  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"expected plan at barrier, got {message[0]!r}"
                )
            _, emigrations, any_migrations, failure_moves, want_victims = (
                message
            )
            # Deaths first (mirroring the serial applier: a dying
            # machine keeps its pre-barrier frequency), then caps on
            # the shard's surviving machines, then victim restores.
            for dead_index, _moves in failure_moves:
                if dead_index in owned:
                    engine.dead_machines.add(dead_index)
                    dead_host = engine.hosts[dead_index]
                    for binding in list(dead_host.instances):
                        pump.remove(binding)
                        resident.remove(binding)
                        last_sent.pop(binding_index[binding.tenant.name], None)
                    dead_host.instances.clear()
            if want_victims:
                # Lazy-checkpoint mode: ship exactly the checkpoints
                # the coordinator must route to destination workers.
                conn.send(
                    (
                        "victim_cps",
                        {name: local_cps[name] for name in want_victims},
                    )
                )
            cap_seq, cap_count = deltas.read_header(downstream.buf)
            if cap_seq == seq and cap_count:
                # The coordinator publishes only this shard's live
                # machines whose applied watts changed; everything
                # else keeps its DVFS state, exactly like the serial
                # backend's idempotent re-application of an unchanged
                # cap.  A None entry coordinator-side (dropped command
                # or retry backoff under an injected actuator fault)
                # simply never becomes a record.
                targets = [
                    (i, watts)
                    for i, watts in deltas.decode_cap_records(
                        downstream.buf, cap_count
                    )
                    if i not in engine.dead_machines
                ]
                enforce_caps(
                    [engine.machines[i] for i, _ in targets],
                    [watts for _, watts in targets],
                )
            incoming = [
                (tenant, dest)
                for _dead_index, moves in failure_moves
                for tenant, dest in moves
                if dest in owned
            ]
            for _dead_index, moves in failure_moves:
                for tenant, dest in moves:
                    by_name[tenant].machine_index = dest
            if incoming:
                message = conn.recv()
                if message[0] != "restore":  # pragma: no cover - guard
                    raise RuntimeError(
                        f"expected restore at barrier, got {message[0]!r}"
                    )
                restored_cps = message[1]
                for tenant, dest in incoming:
                    binding = by_name[tenant]
                    checkpoint = restored_cps[tenant]
                    restore_from_checkpoint(engine, binding, checkpoint, dest)
                    # offered == the tenant's arrival-stream cursor.
                    pump.add(binding, checkpoint.offered)
                    resident.append(binding)
                    last_sent.pop(binding_index[tenant], None)
            if any_migrations:
                migrants = []
                for migration in emigrations:
                    binding = by_name[migration.tenant]
                    trace_pos = pump.remove(binding)
                    migrants.append(
                        emigrate(engine, binding, trace_pos, warm=migration.warm)
                    )
                    resident.remove(binding)
                    last_sent.pop(binding_index[migration.tenant], None)
                conn.send(("migrants", migrants))
                message = conn.recv()
                if message[0] != "absorb":  # pragma: no cover - protocol guard
                    raise RuntimeError(
                        f"expected absorb at barrier, got {message[0]!r}"
                    )
                for migrant, dest_index, cost_seconds in message[1]:
                    binding = by_name[migrant.tenant]
                    absorb(engine, binding, migrant, dest_index, cost_seconds)
                    pump.add(binding, migrant.trace_pos)
                    resident.append(binding)
                    last_sent.pop(binding_index[migrant.tenant], None)

        pump.run_until(None)
        engine._advance_barrier(hosts, final_time)
        for binding in resident:
            binding.runtime.close_input()
        for host in hosts:
            engine._drain(host)
        conn.send(
            ("done", _final_payload(engine, machine_indices, resident, started))
        )
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()
        for segment in (upstream, downstream):
            try:
                segment.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass


def run_sharded(engine: "DatacenterEngine") -> "DatacenterResult":
    """Execute ``engine``'s scenario across forked shard workers.

    The parent arms the runtimes and runs the time-zero control barrier
    *before* forking (workers inherit that state), then acts purely as
    the control-plane coordinator: overlay the workers' shared-memory
    deltas onto its resident view table, run the policy and central
    validation, publish changed caps downstream, and route migrant
    states between workers.  Results are reassembled in binding/machine
    order so every float is summed in the same order the serial backend
    uses.
    """
    from repro.datacenter.engine import DatacenterResult, EngineError

    if not fork_available():
        raise EngineError(
            "sharded backend requires the 'fork' multiprocessing start "
            "method (unavailable on this platform); use backend='serial'"
        )
    cpu_started = time.process_time()
    context = multiprocessing.get_context("fork")
    requested = engine.workers or usable_cpu_count()
    shards = partition_machines(len(engine.machines), requested)
    shard_of_machine = {
        machine_index: worker_index
        for worker_index, shard in enumerate(shards)
        for machine_index in shard
    }
    parent_bindings = {b.tenant.name: b for b in engine.bindings}
    names = [b.tenant.name for b in engine.bindings]
    weights = [b.tenant.weight for b in engine.bindings]

    # Barrier times before _begin_run: a policy may derive per-run
    # state (e.g. a chaos kill schedule) in barrier_times(), which the
    # time-zero decide inside _begin_run() already relies on.
    tick_times = engine._tick_times()
    cap_history = engine._begin_run()
    final_time = engine._final_event_time(tick_times)

    # Wire-protocol selection, fixed before forking.  The demand fast
    # path needs nothing but per-machine scores at the coordinator: a
    # policy that declares score aggregation, no fault machinery (fault
    # observation rewrites tenant views), and no checkpoint consumers.
    journal_active = engine.journal is not None
    demand_mode = (
        getattr(engine.policy, "aggregation", None) == "machine-demand"
        and engine.faults is None
        and not engine._checkpointing
    )
    protocol = "demand" if demand_mode else "views"
    stats = {
        "protocol": protocol,
        "barriers": len(tick_times),
        "payload_bytes": 0,
        "serialize_seconds": 0.0,
        "wait_seconds": 0.0,
        "apply_seconds": 0.0,
    }

    # Preallocated shared-memory segments, one pair per worker, sized
    # for the worst case (every binding resident in one shard; caps for
    # every owned machine).  Created before forking so workers inherit
    # the mappings; the parent owns close + unlink in the finally.
    if demand_mode:
        up_size = deltas.HEADER.size + (
            len(engine.machines) * deltas.SCORE_RECORD.size
        )
    else:
        up_size = deltas.HEADER.size + (
            len(engine.bindings) * deltas.TENANT_RECORD.size
        )
    down_size = deltas.HEADER.size + (
        len(engine.machines) * deltas.CAP_RECORD.size
    )
    run_token = f"{SEGMENT_PREFIX}_{os.getpid()}_{os.urandom(4).hex()}"

    connections = []
    processes = []
    segments: list[shared_memory.SharedMemory] = []
    upstreams: list[shared_memory.SharedMemory] = []
    downstreams: list[shared_memory.SharedMemory] = []
    try:
        for worker_index in range(len(shards)):
            up = shared_memory.SharedMemory(
                name=f"{run_token}_{worker_index}_up",
                create=True,
                size=up_size,
            )
            segments.append(up)
            upstreams.append(up)
            down = shared_memory.SharedMemory(
                name=f"{run_token}_{worker_index}_down",
                create=True,
                size=down_size,
            )
            segments.append(down)
            downstreams.append(down)

        for worker_index, shard in enumerate(shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    engine,
                    shard,
                    tick_times,
                    final_time,
                    child_conn,
                    upstreams[worker_index],
                    downstreams[worker_index],
                    protocol,
                    journal_active,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        def worker_label(worker_index, barrier_time):
            return (
                f"shard worker {worker_index} "
                f"(machines {list(shards[worker_index])}) "
                f"at barrier t={barrier_time:g}"
            )

        def receive(worker_index, conn, process, expected: str, barrier_time):
            # Supervise at the barrier protocol level: a worker that
            # fail-stops or wedges is detected here and named, instead
            # of the coordinator blocking forever on a dead pipe.
            where = worker_label(worker_index, barrier_time)
            deadline = time.monotonic() + _WORKER_BARRIER_TIMEOUT_SECONDS
            while not conn.poll(min(1.0, _WORKER_BARRIER_TIMEOUT_SECONDS)):
                if not process.is_alive():
                    raise EngineError(
                        f"{where} died without reporting "
                        f"(exit code {process.exitcode!r})"
                    )
                if time.monotonic() >= deadline:
                    raise EngineError(
                        f"{where} hung: no {expected!r} message within "
                        f"{_WORKER_BARRIER_TIMEOUT_SECONDS:g}s "
                        f"(pid {process.pid})"
                    )
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # EOFError for a cleanly closed pipe; OSError (e.g.
                # ECONNRESET) when the worker dies while the read is
                # in flight — which of the two surfaces is a race.
                process.join(timeout=1.0)
                raise EngineError(
                    f"{where} died mid-message "
                    f"(exit code {process.exitcode!r})"
                ) from None
            if message[0] == "error":
                raise EngineError(f"{where} failed:\n{message[1]}")
            if message[0] != expected:  # pragma: no cover - protocol guard
                raise EngineError(
                    f"shard protocol error: expected {expected!r}, "
                    f"got {message[0]!r}"
                )
            return message[1]

        def await_upstream(worker_index, seq, barrier_time):
            # The shared-memory half of the supervisor: poll the
            # upstream header until the worker stamps this barrier's
            # ordinal.  Same timeout budget as pipe reads, so a worker
            # wedged mid-segment-write is named, not waited on forever.
            conn = connections[worker_index]
            process = processes[worker_index]
            buf = upstreams[worker_index].buf
            timeout = _WORKER_BARRIER_TIMEOUT_SECONDS
            deadline = time.monotonic() + timeout
            while True:
                got, count = deltas.read_header(buf)
                if got == seq:
                    return count
                where = worker_label(worker_index, barrier_time)
                if got > seq:  # pragma: no cover - protocol guard
                    raise EngineError(
                        f"shard protocol error: {where} published barrier "
                        f"seq {got}, expected {seq}"
                    )
                if conn.poll(0):
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # EOF: the worker died and its pipe collapsed —
                        # fall through to the death report below.
                        message = None
                    if message is not None:
                        if message[0] == "error":
                            raise EngineError(
                                f"{where} failed:\n{message[1]}"
                            )
                        raise EngineError(  # pragma: no cover - guard
                            f"shard protocol error: {where} sent "
                            f"{message[0]!r} while its ready flag was "
                            "awaited"
                        )
                    process.join(timeout=1.0)
                    got, count = deltas.read_header(buf)
                    if got == seq:  # pragma: no cover - publish/exit race
                        return count
                    raise EngineError(
                        f"{where} died without publishing its barrier "
                        f"delta (exit code {process.exitcode!r})"
                    )
                if not process.is_alive():
                    got, count = deltas.read_header(buf)
                    if got == seq:
                        return count
                    raise EngineError(
                        f"{where} died without publishing its barrier "
                        f"delta (exit code {process.exitcode!r})"
                    )
                if time.monotonic() >= deadline:
                    raise EngineError(
                        f"{where} hung: no barrier-ready flag (seq {seq}) "
                        f"within {timeout:g}s (pid {process.pid})"
                    )
                time.sleep(_FLAG_POLL_SECONDS)

        def dispatch(worker_index, conn, process, message, barrier_time):
            # The send half of the supervisor: a worker that died since
            # its last report surfaces here as a broken pipe, named the
            # same way receive() names it.
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                process.join(timeout=1.0)
                raise EngineError(
                    f"{worker_label(worker_index, barrier_time)} died "
                    f"before accepting a {message[0]!r} message "
                    f"(exit code {process.exitcode!r})"
                ) from None

        alive_worker = [True] * len(shards)
        payload_by_worker: dict[int, Any] = {}
        # Death-barrier machine checkpoints of fully-failed shards, so
        # later journal records still carry every machine's state.
        frozen_machine_cps: dict[int, Any] = {}
        # Resident overlay tables: the last decoded record per key.
        # Workers ship deltas against these, so between updates an
        # entry is bitwise the sender's current state.
        resident_views: list[Any] = [None] * len(engine.bindings)
        resident_scores: list[float] = [0.0] * len(engine.machines)
        # Last cap record published per worker per machine — the
        # downstream delta baseline.  The cache always equals the watts
        # the worker last enforced, so skipping an unchanged record is
        # exactly the serial backend's idempotent re-application.
        sent_caps: list[dict[int, bytes]] = [{} for _ in shards]

        def live_workers():
            for worker_index, conn in enumerate(connections):
                if alive_worker[worker_index]:
                    yield worker_index, conn, processes[worker_index]

        for seq, now in enumerate(tick_times, start=1):
            tenant_cps: dict[str, Any] = {}
            machine_cps: dict[int, Any] = dict(frozen_machine_cps)
            for worker_index, conn, process in live_workers():
                if journal_active:
                    cps = receive(worker_index, conn, process, "cps", now)
                    tenant_cps.update(cps[0])
                    machine_cps.update(cps[1])
                waited = time.perf_counter()
                count = await_upstream(worker_index, seq, now)
                stats["wait_seconds"] += time.perf_counter() - waited
                decoded = time.perf_counter()
                buf = upstreams[worker_index].buf
                if demand_mode:
                    for index, score in deltas.decode_score_records(
                        buf, count
                    ):
                        resident_scores[index] = score
                    stats["payload_bytes"] += (
                        deltas.HEADER.size + count * deltas.SCORE_RECORD.size
                    )
                else:
                    for bindex, view in deltas.decode_tenant_records(
                        buf, count, names, weights
                    ):
                        resident_views[bindex] = view
                    stats["payload_bytes"] += (
                        deltas.HEADER.size + count * deltas.TENANT_RECORD.size
                    )
                stats["serialize_seconds"] += time.perf_counter() - decoded
            if journal_active:
                engine._last_checkpoints = tenant_cps
                engine._last_machine_checkpoints = [
                    machine_cps[i] for i in range(len(engine.machines))
                ]

            applying = time.perf_counter()
            if demand_mode:
                # The hierarchical fast path: arbitrate O(machines)
                # scores through the policy's one arithmetic path (the
                # same caps_for_demand its decide() uses, on the same
                # floors/ceilings the serial view carries) and validate
                # through the shared trust boundary.  The synthetic
                # empty-tenant view is safe: cap validation reads only
                # the floors/ceilings/budget arguments.
                caps = engine.policy.caps_for_demand(
                    resident_scores,
                    engine._budget,
                    engine._cap_floors,
                    engine._cap_ceilings,
                )
                actions = [SetCaps(tuple(caps))]
                plan = plan_actions(
                    actions,
                    engine._control_view(now, tenants=()),
                    engine._cap_floors,
                    engine._cap_ceilings,
                    engine._budget,
                )
            else:
                tenants = tuple(resident_views)
                actions, plan = engine._decide_plan(
                    engine._control_view(now, tenants)
                )
            engine._record_plan(plan, now, cap_history)
            # Push the commanded caps through the (possibly faulty)
            # actuators exactly as the serial backend does — the same
            # choke point, run in the coordinator so retry state and
            # journaled records are identical; workers only enforce.
            applied_caps, fault_records, retry_records = engine._actuate(
                now, plan
            )

            # Failures: the coordinator runs the same placement math as
            # the serial applier, marks the deaths, and routes each
            # victim's checkpoint to the worker owning its destination.
            failure_moves: list[tuple[int, list[tuple[str, int]]]] = []
            victim_cps: dict[str, Any] = {}
            want_by_worker: list[list[str]] = [[] for _ in shards]
            failure_records: list[FailureRecord] = []
            if plan.failures:
                if not engine._checkpointing:
                    from repro.datacenter.controlplane.actions import (
                        ControlError,
                    )

                    raise ControlError(
                        "FailMachine requires barrier checkpoints: run with "
                        "a journal attached or a policy declaring "
                        "may_fail_machines (e.g. ChaosPolicy)"
                    )
                failed = [f.machine_index for f in plan.failures]
                placements = [
                    (b.tenant.name, b.machine_index) for b in engine.bindings
                ]
                failure_moves = plan_failures(
                    placements,
                    len(engine.machines),
                    set(engine.dead_machines),
                    failed,
                )
                engine.dead_machines.update(failed)
                for dead_index, moves in failure_moves:
                    replacements = []
                    for tenant, dest in moves:
                        if journal_active:
                            victim_cps[tenant] = tenant_cps[tenant]
                        else:
                            # Lazy checkpoints: ask the worker holding
                            # the victim (its shard owns the dead
                            # machine); a fully-failed shard ships its
                            # residents' checkpoints with its ``dead``
                            # reply instead.
                            want_by_worker[
                                shard_of_machine[dead_index]
                            ].append(tenant)
                        parent_bindings[tenant].machine_index = dest
                        replacements.append(
                            MigrationRecord(
                                time=now,
                                tenant=tenant,
                                source_machine_index=dead_index,
                                dest_machine_index=dest,
                                cost_seconds=0.0,
                                warm=True,
                            )
                        )
                    failure_records.append(
                        FailureRecord(
                            time=now,
                            machine_index=dead_index,
                            replacements=tuple(replacements),
                        )
                    )
                engine.failure_history.extend(failure_records)

            dying_workers = [
                worker_index
                for worker_index, shard in enumerate(shards)
                if alive_worker[worker_index]
                and all(i in engine.dead_machines for i in shard)
            ]
            if journal_active:
                for worker_index in dying_workers:
                    for machine_index in shards[worker_index]:
                        frozen_machine_cps[machine_index] = (
                            dataclasses.replace(
                                machine_cps[machine_index], alive=False
                            )
                        )

            emigrations_by_worker: list[list[Any]] = [[] for _ in shards]
            for migration in plan.migrations:
                source = parent_bindings[migration.tenant].machine_index
                emigrations_by_worker[shard_of_machine[source]].append(
                    migration
                )
            any_migrations = bool(plan.migrations)
            stats["apply_seconds"] += time.perf_counter() - applying
            for worker_index, conn, process in live_workers():
                if worker_index in dying_workers:
                    dispatch(worker_index, conn, process, ("die",), now)
                    continue
                # Downstream deltas: only this shard's live machines
                # whose applied watts changed since last publish.
                encoding = time.perf_counter()
                records = []
                cache = sent_caps[worker_index]
                if applied_caps is not None:
                    for machine_index in shards[worker_index]:
                        if machine_index in engine.dead_machines:
                            continue
                        watts = applied_caps[machine_index]
                        if watts is None:
                            continue
                        record = deltas.encode_cap_record(
                            machine_index, watts
                        )
                        if cache.get(machine_index) != record:
                            cache[machine_index] = record
                            records.append(record)
                count = deltas.publish(
                    downstreams[worker_index].buf, seq, records
                )
                stats["payload_bytes"] += (
                    deltas.HEADER.size + count * deltas.CAP_RECORD.size
                )
                stats["serialize_seconds"] += time.perf_counter() - encoding
                dispatch(
                    worker_index,
                    conn,
                    process,
                    (
                        "plan",
                        emigrations_by_worker[worker_index],
                        any_migrations,
                        failure_moves,
                        want_by_worker[worker_index],
                    ),
                    now,
                )
            for worker_index in dying_workers:
                dead_cps, payload = receive(
                    worker_index,
                    connections[worker_index],
                    processes[worker_index],
                    "dead",
                    now,
                )
                victim_cps.update(dead_cps)
                payload_by_worker[worker_index] = payload
                alive_worker[worker_index] = False
            if not journal_active:
                for worker_index, conn, process in live_workers():
                    if want_by_worker[worker_index]:
                        victim_cps.update(
                            receive(
                                worker_index, conn, process, "victim_cps", now
                            )
                        )
            if failure_moves:
                restores_by_worker: list[dict[str, Any]] = [
                    {} for _ in shards
                ]
                for _dead_index, moves in failure_moves:
                    for tenant, dest in moves:
                        restores_by_worker[shard_of_machine[dest]][tenant] = (
                            victim_cps[tenant]
                        )
                for worker_index, conn, process in live_workers():
                    if restores_by_worker[worker_index]:
                        dispatch(
                            worker_index,
                            conn,
                            process,
                            ("restore", restores_by_worker[worker_index]),
                            now,
                        )

            migration_records: list[MigrationRecord] = []
            if any_migrations:
                migrants_by_tenant: dict[str, Any] = {}
                for worker_index, conn, process in live_workers():
                    for migrant in receive(
                        worker_index, conn, process, "migrants", now
                    ):
                        migrants_by_tenant[migrant.tenant] = migrant
                absorb_by_worker: list[list[Any]] = [[] for _ in shards]
                for migration in plan.migrations:
                    migrant = migrants_by_tenant[migration.tenant]
                    dest = migration.dest_machine_index
                    absorb_by_worker[shard_of_machine[dest]].append(
                        (migrant, dest, migration.cost_seconds)
                    )
                    binding = parent_bindings[migration.tenant]
                    record = MigrationRecord(
                        time=now,
                        tenant=migration.tenant,
                        source_machine_index=binding.machine_index,
                        dest_machine_index=dest,
                        cost_seconds=migration.cost_seconds,
                        warm=migration.warm,
                    )
                    engine.migration_history.append(record)
                    migration_records.append(record)
                    binding.machine_index = dest
                for worker_index, conn, process in live_workers():
                    dispatch(
                        worker_index,
                        conn,
                        process,
                        ("absorb", absorb_by_worker[worker_index]),
                        now,
                    )
            engine._journal_barrier(
                now,
                actions,
                migration_records,
                failure_records,
                fault_records,
                retry_records,
            )

        for worker_index, conn, process in live_workers():
            payload_by_worker[worker_index] = receive(
                worker_index, conn, process, "done", final_time
            )
        payloads = [
            payload_by_worker[worker_index] for worker_index in range(len(shards))
        ]
    finally:
        # Teardown only: worker death/hang is detected and raised by
        # receive()/await_upstream() above, so this just reaps.
        # Closing the pipes first unblocks any worker still waiting at
        # a barrier (its recv sees EOF and the process exits);
        # terminate() is the last resort for a worker wedged outside
        # the protocol.  Segments are closed and unlinked here and
        # nowhere else — the parent owns the /dev/shm lifetime, so
        # even a run aborted by a worker-death EngineError leaves no
        # stray reproshard_* segments behind.
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join()
        for segment in segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    reports_by_name: dict[str, Any] = {}
    stats_by_name: dict[str, Any] = {}
    ledgers_by_name: dict[str, Any] = {}
    segments_by_name: dict[str, Any] = {}
    machine_power: dict[int, float] = {}
    machine_energy: dict[int, float] = {}
    machine_idle: dict[int, float] = {}
    machine_now: dict[int, float] = {}
    for payload in payloads:
        reports_by_name.update(payload["reports"])
        stats_by_name.update(payload["stats"])
        ledgers_by_name.update(payload["ledgers"])
        segments_by_name.update(payload["run_segments"])
        machine_power.update(payload["machine_power"])
        machine_energy.update(payload["machine_energy"])
        machine_idle.update(payload["machine_idle"])
        machine_now.update(payload["machine_now"])
    # Telemetry for the bench harness: per-shard CPU seconds, the
    # coordinator's own CPU seconds, and the barrier-plane breakdown.
    engine.shard_busy_seconds = [p["busy_seconds"] for p in payloads]
    engine.coordinator_busy_seconds = time.process_time() - cpu_started
    engine.barrier_stats = stats

    # Reflect worker-side accounting on the parent's bindings and idle
    # account so callers inspecting the engine after run() see the same
    # data serial leaves behind (runtime generator state stays
    # worker-side).
    for binding in engine.bindings:
        binding.stats = stats_by_name[binding.tenant.name]
        binding.ledger = ledgers_by_name[binding.tenant.name]
    for index, idle in machine_idle.items():
        engine.idle_energy_joules[index] = idle

    # Bills are composed from the same (report, ledger, run-segments)
    # triples a serial run would pass, in the same binding order, so
    # every float matches the serial backend bit for bit.
    bills = [
        compose_bill(
            binding.machine_index,
            reports_by_name[binding.tenant.name],
            binding.ledger,
            segments_by_name[binding.tenant.name],
        )
        for binding in engine.bindings
    ]

    return DatacenterResult(
        tenant_reports=[
            reports_by_name[b.tenant.name] for b in engine.bindings
        ],
        run_results={
            b.tenant.name: merge_run_results(
                segments_by_name[b.tenant.name]
            )
            for b in engine.bindings
        },
        bills=bills,
        idle_energy_joules=list(engine.idle_energy_joules),
        machine_mean_power=[
            machine_power[i] for i in range(len(engine.machines))
        ],
        total_energy_joules=sum(
            machine_energy[i] for i in range(len(engine.machines))
        ),
        makespan=max(machine_now[i] for i in range(len(engine.machines))),
        budget_watts=engine._budget,
        cap_history=cap_history,
        budget_history=list(engine.budget_history),
        migrations=list(engine.migration_history),
        failures=list(engine.failure_history),
        faults=list(engine.fault_history),
        retries=list(engine.retry_history),
    )
