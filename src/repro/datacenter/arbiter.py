"""Hierarchical power-budget arbitration: budget -> machine caps -> DVFS.

The top of the three-level hierarchy the datacenter subsystem runs:

1. **Global budget** — a facility power budget in watts, fixed for the
   run (a circuit limit, or a demand-response commitment).
2. **Per-machine caps** — every arbitration period the arbiter divides
   the budget into per-machine caps and enforces each cap with DVFS,
   exactly the mechanism of the paper's §5.4 power-capping study: a cap
   maps to the fastest P-state whose full-load system power stays under
   it, so the cap holds even if the machine saturates.
3. **Per-instance heartbeat control** — each instance's existing
   PowerDial controller observes the resulting slowdown through its
   heart rate and spends dynamic-knob speedup (QoS loss) to compensate.
   The arbiter never talks to instances; the knob layer reacts to the
   hardware it is given, as in the paper.

Under :data:`ArbiterPolicy.STATIC_EQUAL` the budget is split evenly — the
baseline a shared cluster without runtime knowledge would use.  Under
:data:`ArbiterPolicy.SLA_AWARE` each machine's share grows with the SLA
shortfall of its resident tenants, shifting watts toward violating
tenants at the expense of machines with headroom (whose tenants fall
back on their knobs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.hardware.machine import Machine

__all__ = [
    "ArbiterError",
    "ArbiterPolicy",
    "machine_cap_floor",
    "machine_cap_ceiling",
    "frequency_for_cap",
    "PowerArbiter",
]


class ArbiterError(ValueError):
    """Raised for invalid arbitration configuration."""


class ArbiterPolicy(enum.Enum):
    """How the global budget is divided across machines."""

    STATIC_EQUAL = "static-equal"
    SLA_AWARE = "sla-aware"


def machine_cap_floor(machine: Machine) -> float:
    """Lowest enforceable cap: full-load power in the slowest P-state.

    Machines stay powered on (the paper's testbed never powers servers
    off), so no DVFS setting can guarantee less than this under load.
    """
    slowest = machine.processor.pstates[-1]
    return machine.power_model.power(
        1.0,
        slowest,
        machine.processor.max_frequency_ghz,
        machine.processor.pstates[0].voltage,
    )


def machine_cap_ceiling(machine: Machine) -> float:
    """Full-load power in the fastest P-state; caps above this are slack."""
    fastest = machine.processor.pstates[0]
    return machine.power_model.power(
        1.0,
        fastest,
        machine.processor.max_frequency_ghz,
        machine.processor.pstates[0].voltage,
    )


def frequency_for_cap(machine: Machine, cap_watts: float) -> float:
    """The fastest frequency whose full-load power respects ``cap_watts``.

    Falls back to the slowest P-state when the cap is below the floor
    (the machine cannot do better while staying on).
    """
    processor = machine.processor
    v_max = processor.pstates[0].voltage
    for pstate in processor.pstates:  # ordered fastest first
        watts = machine.power_model.power(
            1.0, pstate, processor.max_frequency_ghz, v_max
        )
        if watts <= cap_watts + 1e-9:
            return pstate.frequency_ghz
    return processor.pstates[-1].frequency_ghz


class PowerArbiter:
    """Divides a global power budget into enforceable per-machine caps.

    Args:
        budget_watts: The global budget.  Must be at least the sum of
            the machines' cap floors — machines cannot be pushed below
            their slowest P-state's full-load power.
        machines: The machine pool being arbitrated.
        policy: Allocation policy; see :class:`ArbiterPolicy`.
        gain: SLA-aware sensitivity — a machine with aggregate shortfall
            ``v`` bids weight ``1 + gain * v``, so ``gain`` watts-per-
            violation steers how aggressively the budget chases SLAs.
    """

    def __init__(
        self,
        budget_watts: float,
        machines: Sequence[Machine],
        policy: ArbiterPolicy = ArbiterPolicy.SLA_AWARE,
        gain: float = 8.0,
    ) -> None:
        if not machines:
            raise ArbiterError("arbiter needs at least one machine")
        if gain < 0:
            raise ArbiterError(f"gain must be >= 0, got {gain!r}")
        self.machines = list(machines)
        self.policy = policy
        self.gain = gain
        self.floors = [machine_cap_floor(m) for m in self.machines]
        self.ceilings = [machine_cap_ceiling(m) for m in self.machines]
        if budget_watts < sum(self.floors) - 1e-9:
            raise ArbiterError(
                f"budget {budget_watts!r} W is below the pool's floor "
                f"{sum(self.floors):.1f} W ({len(self.machines)} machines "
                "pinned to their slowest P-state)"
            )
        self.budget_watts = float(budget_watts)

    def allocate(self, violation_scores: Sequence[float]) -> list[float]:
        """Compute per-machine caps summing to at most the budget.

        ``violation_scores`` gives each machine's aggregate SLA shortfall
        (>= 0; the engine sums its resident tenants' shortfalls).  Every
        machine is guaranteed its floor; the surplus is divided equally
        (STATIC_EQUAL) or by violation-weighted bidding (SLA_AWARE), and
        shares beyond a machine's ceiling cascade to the others.
        """
        if len(violation_scores) != len(self.machines):
            raise ArbiterError(
                f"expected {len(self.machines)} scores, got "
                f"{len(violation_scores)!r}"
            )
        if any(score < 0 for score in violation_scores):
            raise ArbiterError("violation scores must be >= 0")
        if self.policy is ArbiterPolicy.STATIC_EQUAL:
            weights = [1.0] * len(self.machines)
        else:
            weights = [1.0 + self.gain * score for score in violation_scores]

        caps = list(self.floors)
        surplus = self.budget_watts - sum(self.floors)
        open_set = set(range(len(self.machines)))
        # Water-fill: machines that hit their ceiling return the excess.
        while surplus > 1e-9 and open_set:
            total_weight = sum(weights[i] for i in open_set)
            granted = 0.0
            saturated = []
            for i in open_set:
                share = surplus * weights[i] / total_weight
                headroom = self.ceilings[i] - caps[i]
                take = min(share, headroom)
                caps[i] += take
                granted += take
                if headroom - take <= 1e-9:
                    saturated.append(i)
            open_set.difference_update(saturated)
            surplus -= granted
            if granted <= 1e-9:
                break
        return caps

    def apply(self, violation_scores: Sequence[float]) -> list[float]:
        """Allocate and enforce caps via DVFS; returns the caps."""
        caps = self.allocate(violation_scores)
        for machine, cap in zip(self.machines, caps):
            machine.set_frequency(frequency_for_cap(machine, cap))
        return caps
