"""Hierarchical power-budget arbitration: budget -> machine caps -> DVFS.

The top of the three-level hierarchy the datacenter subsystem runs:

1. **Global budget** — a facility power budget in watts (a circuit
   limit, or a demand-response commitment; time-varying when driven by
   a :class:`~repro.datacenter.controlplane.budget.BudgetSchedule`).
2. **Per-machine caps** — every control barrier the arbiter divides
   the budget into per-machine caps and enforces each cap with DVFS,
   exactly the mechanism of the paper's §5.4 power-capping study: a cap
   maps to the fastest P-state whose full-load system power stays under
   it, so the cap holds even if the machine saturates.
3. **Per-instance heartbeat control** — each instance's existing
   PowerDial controller observes the resulting slowdown through its
   heart rate and spends dynamic-knob speedup (QoS loss) to compensate.
   The arbiter never talks to instances; the knob layer reacts to the
   hardware it is given, as in the paper.

Under :data:`ArbiterPolicy.STATIC_EQUAL` the budget is split evenly — the
baseline a shared cluster without runtime knowledge would use.  Under
:data:`ArbiterPolicy.SLA_AWARE` each machine's share grows with the SLA
shortfall of its resident tenants, shifting watts toward violating
tenants at the expense of machines with headroom (whose tenants fall
back on their knobs).

Since the control-plane refactor the arbiter is *one policy among
several*: :class:`PowerArbiter` implements the
:class:`~repro.datacenter.controlplane.actions.ControlPolicy` protocol
— :meth:`PowerArbiter.decide` maps a
:class:`~repro.datacenter.controlplane.actions.ClusterView` to a single
``SetCaps`` action — and the engine applies it through the shared
control-plane applier like any other policy.  The water-filling math
itself lives in module functions, so ``decide`` is a thin adapter.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.datacenter.caps import (
    ArbiterError,
    frequency_for_cap,
    machine_cap_ceiling,
    machine_cap_floor,
)
from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    SetCaps,
)
from repro.hardware.machine import Machine

__all__ = [
    "ArbiterError",
    "ArbiterPolicy",
    "machine_cap_floor",
    "machine_cap_ceiling",
    "frequency_for_cap",
    "water_fill",
    "PowerArbiter",
]


class ArbiterPolicy(enum.Enum):
    """How the global budget is divided across machines."""

    STATIC_EQUAL = "static-equal"
    SLA_AWARE = "sla-aware"


def water_fill(
    weights: Sequence[float],
    floors: Sequence[float],
    ceilings: Sequence[float],
    budget_watts: float,
) -> list[float]:
    """Divide a budget into caps by weighted water-filling.

    Every machine is guaranteed its floor; the surplus is divided in
    proportion to ``weights``, and shares beyond a machine's ceiling
    cascade back to the machines still below theirs.  Pure function of
    its arguments — the arbiter's :meth:`PowerArbiter.allocate` and
    :meth:`PowerArbiter.decide` are both thin wrappers over it, so caps
    cannot depend on which code path (legacy or control-plane) asked.
    If no open machine holds any weight (all remaining bids are zero),
    the rest of the surplus goes undistributed and every machine keeps
    its floor — nobody bid for the watts.
    """
    caps = list(floors)
    surplus = budget_watts - sum(floors)
    open_set = set(range(len(caps)))
    # Water-fill: machines that hit their ceiling return the excess.
    while surplus > 1e-9 and open_set:
        total_weight = sum(weights[i] for i in open_set)
        if total_weight <= 0.0:
            break
        granted = 0.0
        saturated = []
        for i in open_set:
            share = surplus * weights[i] / total_weight
            headroom = ceilings[i] - caps[i]
            take = min(share, headroom)
            caps[i] += take
            granted += take
            if headroom - take <= 1e-9:
                saturated.append(i)
        open_set.difference_update(saturated)
        surplus -= granted
        if granted <= 1e-9:
            break
    return caps


class PowerArbiter:
    """Divides a global power budget into enforceable per-machine caps.

    Args:
        budget_watts: The global budget.  Must be at least the sum of
            the machines' cap floors — machines cannot be pushed below
            their slowest P-state's full-load power.
        machines: The machine pool being arbitrated.
        policy: Allocation policy; see :class:`ArbiterPolicy`.
        gain: SLA-aware sensitivity — a machine with aggregate shortfall
            ``v`` bids weight ``1 + gain * v``, so ``gain`` watts-per-
            violation steers how aggressively the budget chases SLAs.
    """

    def __init__(
        self,
        budget_watts: float,
        machines: Sequence[Machine],
        policy: ArbiterPolicy = ArbiterPolicy.SLA_AWARE,
        gain: float = 8.0,
    ) -> None:
        if not machines:
            raise ArbiterError("arbiter needs at least one machine")
        if gain < 0:
            raise ArbiterError(f"gain must be >= 0, got {gain!r}")
        self.machines = list(machines)
        self.policy = policy
        self.gain = gain
        self.floors = [machine_cap_floor(m) for m in self.machines]
        self.ceilings = [machine_cap_ceiling(m) for m in self.machines]
        if budget_watts < sum(self.floors) - 1e-9:
            raise ArbiterError(
                f"budget {budget_watts!r} W is below the pool's floor "
                f"{sum(self.floors):.1f} W ({len(self.machines)} machines "
                "pinned to their slowest P-state)"
            )
        self.budget_watts = float(budget_watts)

    def _weights(self, violation_scores: Sequence[float]) -> list[float]:
        """Per-machine bidding weights under the configured policy."""
        if any(score < 0 for score in violation_scores):
            raise ArbiterError("violation scores must be >= 0")
        if self.policy is ArbiterPolicy.STATIC_EQUAL:
            return [1.0] * len(violation_scores)
        return [1.0 + self.gain * score for score in violation_scores]

    def allocate(
        self,
        violation_scores: Sequence[float],
        budget_watts: float | None = None,
    ) -> list[float]:
        """Compute per-machine caps summing to at most the budget.

        ``violation_scores`` gives each machine's aggregate SLA shortfall
        (>= 0; the engine sums its resident tenants' shortfalls).  Every
        machine is guaranteed its floor; the surplus is divided equally
        (STATIC_EQUAL) or by violation-weighted bidding (SLA_AWARE), and
        shares beyond a machine's ceiling cascade to the others.
        ``budget_watts`` overrides the construction-time budget (the
        control plane passes the currently scheduled level).
        """
        if len(violation_scores) != len(self.machines):
            raise ArbiterError(
                f"expected {len(self.machines)} scores, got "
                f"{len(violation_scores)!r}"
            )
        budget = self.budget_watts if budget_watts is None else budget_watts
        if budget < sum(self.floors) - 1e-9:
            raise ArbiterError(
                f"budget {budget!r} W is below the pool's floor "
                f"{sum(self.floors):.1f} W"
            )
        return water_fill(
            self._weights(violation_scores), self.floors, self.ceilings, budget
        )

    def apply(self, violation_scores: Sequence[float]) -> list[float]:
        """Allocate and enforce caps via DVFS; returns the caps."""
        caps = self.allocate(violation_scores)
        for machine, cap in zip(self.machines, caps):
            machine.set_frequency(frequency_for_cap(machine, cap))
        return caps

    # ------------------------------------------------------------------
    # ControlPolicy adapter: the arbiter as one policy among several
    # ------------------------------------------------------------------
    def initial_budget_watts(self) -> float | None:
        """The construction-time budget governs from time zero."""
        return self.budget_watts

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """The arbiter needs no barriers beyond the periodic ticks."""
        return ()

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """One ``SetCaps`` from water-filling the view's machines.

        A pure adapter: weighted shortfalls come from
        :meth:`~repro.datacenter.controlplane.actions.ClusterView.
        machine_shortfalls`, floors/ceilings from the view's machine
        entries, and the budget from the view (falling back to the
        construction-time budget on uncapped views) — so the caps are
        float-identical to :meth:`allocate` on the same pool.
        """
        scores = view.machine_shortfalls()
        if len(view.machines) != len(self.machines):
            raise ArbiterError(
                f"arbiter configured for {len(self.machines)} machines got a "
                f"view of {len(view.machines)}"
            )
        budget = (
            view.budget_watts
            if view.budget_watts is not None
            else self.budget_watts
        )
        caps = water_fill(
            self._weights(scores),
            [m.cap_floor for m in view.machines],
            [m.cap_ceiling for m in view.machines],
            budget,
        )
        return [SetCaps(tuple(caps))]
