"""Event-driven interleaving of many live PowerDial instances.

The engine hosts N controlled application instances on M simulated
machines and drives them with open-loop request arrivals.  It is a
discrete-event simulation in *two* layers of virtual time:

* a global event queue (arrivals, arbiter ticks) in facility time;
* each machine's own :class:`~repro.hardware.clock.VirtualClock`, which
  advances as its resident instances execute work.

Between consecutive global events every machine runs its instances
cooperatively — round-robin, one control quantum per
:meth:`~repro.core.runtime.PowerDialRuntime.step` — until its clock
catches up with the event time; a machine with nothing runnable idles
(its power meter sees the idle floor).  Because co-resident instances
share one clock, contention emerges naturally: while one instance holds
the machine, its neighbors' heart rates sag, their controllers command
speedup, and their dynamic knobs absorb the oversubscription — the §5.5
mechanism, now under interleaved, bursty, multi-tenant traffic.

Completion times are measured on the machine clock against global
arrival times, giving end-to-end request latencies for the tenant SLA
accounting; the :class:`~repro.datacenter.arbiter.PowerArbiter` (when
present) reallocates the facility power budget every period toward
machines whose tenants are missing their SLAs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.runtime import PowerDialRuntime, RunResult, StepStatus
from repro.datacenter.arbiter import PowerArbiter
from repro.datacenter.tenants import TenantReport, TenantSpec, TenantStats
from repro.hardware.machine import Machine

__all__ = ["EngineError", "InstanceBinding", "DatacenterResult", "DatacenterEngine"]

_ARRIVAL = 0
_ARBITER = 1


class EngineError(ValueError):
    """Raised for invalid engine configuration or usage."""


@dataclass
class InstanceBinding:
    """One tenant's live instance placed on one machine.

    Attributes:
        tenant: The tenant being served.
        runtime: Its PowerDial runtime, bound to the host machine.
        machine_index: Index of that machine in the engine's pool.
    """

    tenant: TenantSpec
    runtime: PowerDialRuntime
    machine_index: int
    stats: TenantStats = field(default_factory=TenantStats)
    starved: bool = False
    finished: bool = False
    next_request: int = 0


@dataclass
class DatacenterResult:
    """Everything observed during one datacenter run.

    Attributes:
        tenant_reports: Per-tenant SLA summaries, in binding order.
        run_results: Each instance's full :class:`RunResult`, by tenant.
            Note that ``mean_power``/``energy_joules`` inside a
            RunResult come from the *shared* machine meter: co-resident
            tenants all report the whole machine's draw (per-tenant
            energy attribution is a roadmap item); use
            ``machine_mean_power``/``total_energy_joules`` for pool
            accounting.
        machine_mean_power: Mean measured watts per machine.
        total_energy_joules: Integrated energy across the pool.
        makespan: Latest machine virtual time at the end of the run.
        budget_watts: The arbitrated global budget (None when uncapped).
        cap_history: ``(time, per-machine caps)`` per arbitration.
    """

    tenant_reports: list[TenantReport]
    run_results: dict[str, RunResult]
    machine_mean_power: list[float]
    total_energy_joules: float
    makespan: float
    budget_watts: float | None
    cap_history: list[tuple[float, tuple[float, ...]]]

    @property
    def total_mean_power(self) -> float:
        """Sum of the machines' mean power draws."""
        return sum(self.machine_mean_power)

    def report_for(self, tenant_name: str) -> TenantReport:
        """Look up one tenant's report by name."""
        for report in self.tenant_reports:
            if report.name == tenant_name:
                return report
        raise EngineError(f"no tenant named {tenant_name!r}")

    def slas_met(self) -> int:
        """How many tenants attained their SLA."""
        return sum(1 for report in self.tenant_reports if report.sla_met)


class _Host:
    """Engine-side view of one machine and its resident instances."""

    def __init__(self, machine: Machine, instances: list[InstanceBinding]):
        self.machine = machine
        self.instances = instances
        self._rr = 0

    def next_runnable(self) -> InstanceBinding | None:
        """Round-robin over instances that can make progress."""
        for offset in range(len(self.instances)):
            index = (self._rr + offset) % len(self.instances)
            instance = self.instances[index]
            if not instance.finished and not instance.starved:
                self._rr = index + 1
                return instance
        return None


class DatacenterEngine:
    """Runs a multi-tenant, multi-machine scenario to completion.

    Args:
        machines: The machine pool (each with its own clock and meter).
        bindings: Tenant instances placed on those machines; every
            binding's runtime must execute on ``machines[machine_index]``.
        arbiter: Optional power arbiter over the same pool.  Applied at
            time zero and then every ``arbiter_period`` seconds.
        arbiter_period: Seconds between budget reallocations.
        attainment_window: Lookback horizon for the per-tick SLA
            attainment signal fed to the arbiter.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        bindings: Sequence[InstanceBinding],
        arbiter: PowerArbiter | None = None,
        arbiter_period: float = 10.0,
        attainment_window: float = 20.0,
    ) -> None:
        if not machines:
            raise EngineError("engine needs at least one machine")
        if not bindings:
            raise EngineError("engine needs at least one tenant instance")
        if arbiter_period <= 0 or attainment_window <= 0:
            raise EngineError("arbiter period and window must be positive")
        names = [binding.tenant.name for binding in bindings]
        if len(set(names)) != len(names):
            raise EngineError(f"tenant names must be unique, got {names!r}")
        for binding in bindings:
            if not 0 <= binding.machine_index < len(machines):
                raise EngineError(
                    f"machine index {binding.machine_index!r} out of range"
                )
            if binding.runtime.machine is not machines[binding.machine_index]:
                raise EngineError(
                    f"tenant {binding.tenant.name!r}'s runtime is not bound "
                    f"to machine {binding.machine_index}"
                )
        if arbiter is not None and list(arbiter.machines) != list(machines):
            raise EngineError("arbiter must manage the engine's machine pool")
        self.machines = list(machines)
        self.bindings = list(bindings)
        self.arbiter = arbiter
        self.arbiter_period = arbiter_period
        self.attainment_window = attainment_window
        self.hosts = [
            _Host(machine, [b for b in self.bindings if b.machine_index == i])
            for i, machine in enumerate(self.machines)
        ]
        self._ran = False

    # ------------------------------------------------------------------
    def _advance(self, host: _Host, until: float) -> None:
        """Run ``host`` cooperatively until its clock reaches ``until``."""
        while host.machine.now < until - 1e-12:
            instance = host.next_runnable()
            if instance is None:
                host.machine.idle_until(until)
                return
            status = instance.runtime.step()
            if status is StepStatus.STARVED:
                instance.starved = True
            elif status is StepStatus.FINISHED:
                instance.finished = True

    def _drain(self, host: _Host) -> None:
        """Run every resident instance to completion (input closed)."""
        while True:
            unfinished = [i for i in host.instances if not i.finished]
            if not unfinished:
                return
            for instance in unfinished:
                if instance.runtime.step() is StepStatus.FINISHED:
                    instance.finished = True

    def _violation_scores(self, now: float) -> list[float]:
        """Aggregate per-machine SLA shortfall for the arbiter."""
        scores = [0.0] * len(self.machines)
        since = now - self.attainment_window
        for binding in self.bindings:
            sla = binding.tenant.sla
            attainment = binding.stats.recent_attainment(
                sla.latency_bound, since, now
            )
            if attainment is None:
                # Nothing completed: fully violating if work is backed
                # up, otherwise simply quiet.
                backlogged = binding.runtime.pending_jobs > 0
                shortfall = sla.attainment_target if backlogged else 0.0
            else:
                shortfall = max(0.0, sla.attainment_target - attainment)
            scores[binding.machine_index] += binding.tenant.weight * shortfall
        return scores

    def _dispatch_arrival(self, binding: InstanceBinding, now: float) -> None:
        binding.stats.record_offer()
        if binding.runtime.pending_jobs >= binding.tenant.max_queue_depth:
            binding.stats.record_rejection()
            return
        index = binding.next_request
        binding.next_request += 1
        stats = binding.stats
        binding.runtime.feed(
            binding.tenant.job_factory(index),
            on_complete=lambda completion, arrival=now: stats.record_completion(
                arrival, completion
            ),
        )
        binding.starved = False

    # ------------------------------------------------------------------
    def run(self) -> DatacenterResult:
        """Execute the scenario and collect per-tenant results."""
        if self._ran:
            raise EngineError("engine scenarios are single-use; build a new one")
        self._ran = True

        for binding in self.bindings:
            binding.runtime.begin()

        horizon = max(binding.tenant.trace.duration for binding in self.bindings)
        heap: list[tuple[float, int, int, InstanceBinding | None]] = []
        seq = 0
        for binding in self.bindings:
            for arrival in binding.tenant.trace.arrivals:
                heap.append((arrival, seq, _ARRIVAL, binding))
                seq += 1
        cap_history: list[tuple[float, tuple[float, ...]]] = []
        if self.arbiter is not None:
            ticks = int(math.floor(horizon / self.arbiter_period))
            for k in range(1, ticks + 1):
                heap.append((k * self.arbiter_period, seq, _ARBITER, None))
                seq += 1
            # Enforce the budget from time zero (no SLA signal yet).
            caps = self.arbiter.apply([0.0] * len(self.machines))
            cap_history.append((0.0, tuple(caps)))
        heapq.heapify(heap)

        while heap:
            now = heap[0][0]
            for host in self.hosts:
                self._advance(host, now)
            while heap and heap[0][0] <= now + 1e-12:
                _, _, kind, binding = heapq.heappop(heap)
                if kind == _ARRIVAL:
                    assert binding is not None
                    self._dispatch_arrival(binding, now)
                else:
                    assert self.arbiter is not None
                    caps = self.arbiter.apply(self._violation_scores(now))
                    cap_history.append((now, tuple(caps)))

        for binding in self.bindings:
            binding.runtime.close_input()
        for host in self.hosts:
            self._drain(host)

        run_results = {
            binding.tenant.name: binding.runtime.finish()
            for binding in self.bindings
        }
        reports = [
            binding.stats.report(binding.tenant.name, binding.tenant.sla)
            for binding in self.bindings
        ]
        machine_power = []
        for machine in self.machines:
            try:
                machine_power.append(machine.meter.mean_power())
            except Exception:
                machine_power.append(0.0)
        return DatacenterResult(
            tenant_reports=reports,
            run_results=run_results,
            machine_mean_power=machine_power,
            total_energy_joules=sum(
                machine.meter.energy_joules for machine in self.machines
            ),
            makespan=max(machine.now for machine in self.machines),
            budget_watts=(
                self.arbiter.budget_watts if self.arbiter is not None else None
            ),
            cap_history=cap_history,
        )
