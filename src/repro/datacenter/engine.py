"""Event-driven interleaving of many live PowerDial instances.

The engine hosts N controlled application instances on M simulated
machines and drives them with open-loop request arrivals.  It is a
discrete-event simulation in *two* layers of virtual time:

* a global event stream (arrivals, arbiter ticks) in facility time;
* each machine's own :class:`~repro.hardware.clock.VirtualClock`, which
  advances as its resident instances execute work.

Between consecutive global events every machine runs its instances
cooperatively — round-robin, one control quantum per
:meth:`~repro.core.runtime.PowerDialRuntime.step` — until its clock
catches up with the event time; a machine with nothing runnable idles
(its power meter sees the idle floor).  Because co-resident instances
share one clock, contention emerges naturally: while one instance holds
the machine, its neighbors' heart rates sag, their controllers command
speedup, and their dynamic knobs absorb the oversubscription — the §5.5
mechanism, now under interleaved, bursty, multi-tenant traffic.

Completion times are measured on the machine clock against global
arrival times, giving end-to-end request latencies for the tenant SLA
accounting; the :class:`~repro.datacenter.arbiter.PowerArbiter` (when
present) reallocates the facility power budget every period toward
machines whose tenants are missing their SLAs.

Scheduling is *lazy*: an event only advances the machine it concerns
(arrivals touch one host; arbiter ticks synchronize the pool, since
they change DVFS states and read every tenant's SLA signal).  A machine
with nothing to do is not visited per event — its idle time is settled
in a single O(1) ``idle_until`` when it next matters — so the cost of a
run scales with the number of events, not events × machines.  Arrival
streams are consumed through a lazy sorted merge of the per-tenant
traces (each already sorted) instead of heapifying one entry per
request.

Every dispatched ``step()`` is metered for billing: the machine meter's
energy delta and the clock delta across the step are charged to the
stepping tenant's :class:`~repro.datacenter.billing.TenantLedger`,
while lazily settled idle gaps accumulate per machine as unattributed
idle energy — so :attr:`DatacenterResult.bills` attributes every
watt-second of pool energy to a tenant or to the idle floor (the
conservation invariant the billing tests pin).

Three execution backends share these semantics:

* ``"serial"`` — the lazy single-process scheduler (default);
* ``"sharded"`` — machines partitioned across ``workers`` forked
  processes which run independently between arbiter barriers (see
  :mod:`repro.datacenter.shard`); identical results to ``"serial"``;
* ``"eager"`` — the original advance-every-host-per-event loop, kept as
  the reference baseline for the :mod:`repro.bench` perf trajectory.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.runtime import PowerDialRuntime, RunResult, StepStatus
from repro.datacenter.arbiter import PowerArbiter
from repro.datacenter.billing import (
    TenantBill,
    TenantLedger,
    compose_bill,
    conservation_summary,
)
from repro.datacenter.tenants import TenantReport, TenantSpec, TenantStats
from repro.hardware.machine import Machine

__all__ = [
    "EngineError",
    "InstanceBinding",
    "DatacenterResult",
    "DatacenterEngine",
    "ENGINE_BACKENDS",
]

_ARRIVAL = 0
_ARBITER = 1

ENGINE_BACKENDS = ("serial", "sharded", "eager")
"""Recognized ``DatacenterEngine`` backends."""


class EngineError(ValueError):
    """Raised for invalid engine configuration or usage."""


@dataclass
class InstanceBinding:
    """One tenant's live instance placed on one machine.

    Attributes:
        tenant: The tenant being served.
        runtime: Its PowerDial runtime, bound to the host machine.
        machine_index: Index of that machine in the engine's pool.
        stats: Mutable SLA/admission accounting the engine fills in.
        ledger: Mutable billing meter (energy + machine time) charged
            per dispatched ``step()``; see
            :class:`~repro.datacenter.billing.TenantLedger`.
    """

    tenant: TenantSpec
    runtime: PowerDialRuntime
    machine_index: int
    stats: TenantStats = field(default_factory=TenantStats)
    ledger: TenantLedger = field(default_factory=TenantLedger)
    starved: bool = False
    finished: bool = False
    next_request: int = 0


@dataclass
class DatacenterResult:
    """Everything observed during one datacenter run.

    Attributes:
        tenant_reports: Per-tenant SLA summaries, in binding order.
        run_results: Each instance's full :class:`RunResult`, by tenant.
            Note that ``mean_power``/``energy_joules`` inside a
            RunResult come from the *shared* machine meter: co-resident
            tenants all report the whole machine's draw; for pool
            accounting use ``machine_mean_power``/
            ``total_energy_joules``, and for per-tenant attribution use
            ``bills``.
        bills: Per-tenant :class:`~repro.datacenter.billing.TenantBill`
            (energy, QoS-loss, admission attribution), in binding
            order; byte-identical across backends.
        idle_energy_joules: Per-machine watt-seconds no tenant was
            running for (lazy ``idle_until`` settlements, plus any
            energy already on a meter before the run began).
        machine_mean_power: Mean measured watts per machine.
        total_energy_joules: Integrated energy across the pool.
        makespan: Latest machine virtual time at the end of the run.
        budget_watts: The arbitrated global budget (None when uncapped).
        cap_history: ``(time, per-machine caps)`` per arbitration.
    """

    tenant_reports: list[TenantReport]
    run_results: dict[str, RunResult]
    bills: list[TenantBill]
    idle_energy_joules: list[float]
    machine_mean_power: list[float]
    total_energy_joules: float
    makespan: float
    budget_watts: float | None
    cap_history: list[tuple[float, tuple[float, ...]]]

    @property
    def total_mean_power(self) -> float:
        """Sum of the machines' mean power draws."""
        return sum(self.machine_mean_power)

    @property
    def billed_energy_joules(self) -> float:
        """Total watt-seconds attributed to tenants across the pool."""
        return sum(bill.energy_joules for bill in self.bills)

    @property
    def unattributed_idle_joules(self) -> float:
        """Total watt-seconds no tenant was charged for (idle floor)."""
        return sum(self.idle_energy_joules)

    def report_for(self, tenant_name: str) -> TenantReport:
        """Look up one tenant's report by name."""
        for report in self.tenant_reports:
            if report.name == tenant_name:
                return report
        raise EngineError(f"no tenant named {tenant_name!r}")

    def bill_for(self, tenant_name: str) -> TenantBill:
        """Look up one tenant's bill by name."""
        for bill in self.bills:
            if bill.tenant == tenant_name:
                return bill
        raise EngineError(f"no tenant named {tenant_name!r}")

    def energy_conservation(self) -> dict[str, float]:
        """Billed + idle vs metered pool energy; see
        :func:`~repro.datacenter.billing.conservation_summary`."""
        return conservation_summary(
            self.bills, self.idle_energy_joules, self.total_energy_joules
        )

    def energy_conservation_rel_error(self) -> float:
        """Relative mismatch of billed + idle against metered energy."""
        return self.energy_conservation()["rel_error"]

    def slas_met(self) -> int:
        """How many tenants attained their SLA."""
        return sum(1 for report in self.tenant_reports if report.sla_met)


class _Host:
    """Engine-side view of one machine and its resident instances."""

    def __init__(
        self, index: int, machine: Machine, instances: list[InstanceBinding]
    ):
        self.index = index
        self.machine = machine
        self.instances = instances
        self._rr = 0

    def next_runnable(self) -> InstanceBinding | None:
        """Round-robin over instances that can make progress."""
        for offset in range(len(self.instances)):
            index = (self._rr + offset) % len(self.instances)
            instance = self.instances[index]
            if not instance.finished and not instance.starved:
                self._rr = index + 1
                return instance
        return None


class DatacenterEngine:
    """Runs a multi-tenant, multi-machine scenario to completion.

    Args:
        machines: The machine pool (each with its own clock and meter).
        bindings: Tenant instances placed on those machines; every
            binding's runtime must execute on ``machines[machine_index]``.
        arbiter: Optional power arbiter over the same pool.  Applied at
            time zero and then every ``arbiter_period`` seconds.
        arbiter_period: Seconds between budget reallocations.
        attainment_window: Lookback horizon for the per-tick SLA
            attainment signal fed to the arbiter.
        backend: ``"serial"`` (lazy single-process, default),
            ``"sharded"`` (multiprocess; identical results), or
            ``"eager"`` (the original advance-all loop, kept as the
            benchmark baseline).
        workers: Worker-process count for the sharded backend (clamped
            to the machine count; default: the host's CPU count).
            Ignored by the other backends.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        bindings: Sequence[InstanceBinding],
        arbiter: PowerArbiter | None = None,
        arbiter_period: float = 10.0,
        attainment_window: float = 20.0,
        backend: str = "serial",
        workers: int | None = None,
    ) -> None:
        if not machines:
            raise EngineError("engine needs at least one machine")
        if not bindings:
            raise EngineError("engine needs at least one tenant instance")
        if arbiter_period <= 0 or attainment_window <= 0:
            raise EngineError("arbiter period and window must be positive")
        if backend not in ENGINE_BACKENDS:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {ENGINE_BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers!r}")
        names = [binding.tenant.name for binding in bindings]
        if len(set(names)) != len(names):
            raise EngineError(f"tenant names must be unique, got {names!r}")
        for binding in bindings:
            if not 0 <= binding.machine_index < len(machines):
                raise EngineError(
                    f"machine index {binding.machine_index!r} out of range"
                )
            if binding.runtime.machine is not machines[binding.machine_index]:
                raise EngineError(
                    f"tenant {binding.tenant.name!r}'s runtime is not bound "
                    f"to machine {binding.machine_index}"
                )
        if arbiter is not None and list(arbiter.machines) != list(machines):
            raise EngineError("arbiter must manage the engine's machine pool")
        self.machines = list(machines)
        self.bindings = list(bindings)
        self.arbiter = arbiter
        self.arbiter_period = arbiter_period
        self.attainment_window = attainment_window
        self.backend = backend
        self.workers = workers
        self.hosts = [
            _Host(i, machine, [b for b in self.bindings if b.machine_index == i])
            for i, machine in enumerate(self.machines)
        ]
        # Watt-seconds per machine that no tenant was running for; the
        # billing conservation invariant is
        #   sum(binding.ledger.energy_joules) + sum(idle_energy_joules)
        #       == total metered pool energy.
        self.idle_energy_joules: list[float] = [0.0] * len(self.machines)
        # Filled by the sharded backend after run(): per-shard CPU
        # seconds, barrier waits excluded (bench-harness telemetry).
        self.shard_busy_seconds: list[float] | None = None
        self._ran = False

    # ------------------------------------------------------------------
    # Event plumbing shared by all backends
    # ------------------------------------------------------------------
    def _tick_times(self) -> list[float]:
        """Arbiter barrier times over the scenario horizon."""
        if self.arbiter is None:
            return []
        horizon = max(b.tenant.trace.duration for b in self.bindings)
        ticks = int(math.floor(horizon / self.arbiter_period))
        return [k * self.arbiter_period for k in range(1, ticks + 1)]

    def _final_event_time(self, tick_times: Sequence[float]) -> float:
        """Time of the last global event (all hosts settle to it)."""
        last = tick_times[-1] if tick_times else 0.0
        for binding in self.bindings:
            arrivals = binding.tenant.trace.arrivals
            if arrivals:
                last = max(last, arrivals[-1])
        return last

    def _event_stream(
        self,
        bindings: Sequence[InstanceBinding],
        tick_times: Sequence[float],
    ) -> Iterator[tuple[float, int, int, int, InstanceBinding | None]]:
        """Lazily merge pre-sorted per-tenant arrival streams and ticks.

        Events are ``(time, kind, binding_index, seq, binding)`` tuples
        ordered by time; arrivals sort before an arbiter tick at the same
        instant (matching the original engine's dispatch order), and
        simultaneous arrivals dispatch in binding order.  ``heapq.merge``
        keeps this O(log k) per event over k already-sorted streams —
        no per-request heap entries are materialized.
        """
        index_of = {id(b): i for i, b in enumerate(self.bindings)}

        def arrivals(binding: InstanceBinding) -> Iterable[
            tuple[float, int, int, int, InstanceBinding | None]
        ]:
            bindex = index_of[id(binding)]
            for seq, at in enumerate(binding.tenant.trace.arrivals):
                yield (at, _ARRIVAL, bindex, seq, binding)

        def ticks() -> Iterable[tuple[float, int, int, int, InstanceBinding | None]]:
            for seq, at in enumerate(tick_times):
                yield (at, _ARBITER, -1, seq, None)

        streams = [arrivals(binding) for binding in bindings]
        if tick_times:
            streams.append(ticks())
        return heapq.merge(*streams)

    def _pump(
        self,
        events: Iterator[tuple[float, int, int, int, InstanceBinding | None]],
        hosts: Sequence[_Host],
        final_time: float,
        on_tick: Callable[[float], None],
    ) -> None:
        """Drive ``hosts`` through the event stream, lazily.

        An arrival advances only its own host (idle neighbours are left
        alone — their gap is settled in one ``idle_until`` when they next
        matter); an arbiter tick settles every host in ``hosts`` to the
        tick time, because DVFS states and SLA signals are about to
        change.  After the last event, every host settles to
        ``final_time`` so pool-level accounting (makespan, idle energy)
        is independent of per-host event density.
        """
        for time, kind, _, _, binding in events:
            if kind == _ARRIVAL:
                if binding is None:
                    raise EngineError("arrival event lost its tenant binding")
                self._advance(self.hosts[binding.machine_index], time)
                self._dispatch_arrival(binding, time)
            else:
                for host in hosts:
                    self._advance(host, time)
                on_tick(time)
        for host in hosts:
            self._advance(host, final_time)

    # ------------------------------------------------------------------
    def _advance(self, host: _Host, until: float) -> None:
        """Run ``host`` cooperatively until its clock reaches ``until``.

        Every ``step()`` dispatched here is metered: the increase of the
        machine meter's integrated energy and of the machine clock
        across the step is charged to the stepping tenant's ledger.  The
        closing ``idle_until`` settlement belongs to no tenant and
        accumulates as the machine's unattributed idle energy.
        """
        machine = host.machine
        while machine.now < until - 1e-12:
            instance = host.next_runnable()
            if instance is None:
                energy_before = machine.meter.energy_joules
                machine.idle_until(until)
                self.idle_energy_joules[host.index] += (
                    machine.meter.energy_joules - energy_before
                )
                return
            status = self._metered_step(host, instance)
            if status is StepStatus.STARVED:
                instance.starved = True
            elif status is StepStatus.FINISHED:
                instance.finished = True

    def _metered_step(self, host: _Host, instance: InstanceBinding) -> StepStatus:
        """Dispatch one ``step()`` and charge its deltas to the tenant.

        The single choke point for billing attribution: every backend
        and every phase (event pumping and post-input drain) must route
        step dispatch through here, or the conservation invariant
        breaks.
        """
        machine = host.machine
        meter = machine.meter
        energy_before = meter.energy_joules
        started = machine.now
        status = instance.runtime.step()
        instance.ledger.charge(
            meter.energy_joules - energy_before, machine.now - started
        )
        return status

    def _drain(self, host: _Host) -> None:
        """Run every resident instance to completion (input closed)."""
        while True:
            unfinished = [i for i in host.instances if not i.finished]
            if not unfinished:
                return
            for instance in unfinished:
                if self._metered_step(host, instance) is StepStatus.FINISHED:
                    instance.finished = True

    def _violation_scores(
        self, now: float, bindings: Sequence[InstanceBinding] | None = None
    ) -> list[float]:
        """Aggregate per-machine SLA shortfall for the arbiter.

        ``bindings`` restricts the aggregation to a subset (the sharded
        backend scores only a worker's resident tenants); machines with
        no scored tenants stay at 0.
        """
        scores = [0.0] * len(self.machines)
        since = now - self.attainment_window
        for binding in self.bindings if bindings is None else bindings:
            sla = binding.tenant.sla
            attainment = binding.stats.recent_attainment(
                sla.latency_bound, since, now
            )
            if attainment is None:
                # Nothing completed: fully violating if work is backed
                # up, otherwise simply quiet.
                backlogged = binding.runtime.pending_jobs > 0
                shortfall = sla.attainment_target if backlogged else 0.0
            else:
                shortfall = max(0.0, sla.attainment_target - attainment)
            scores[binding.machine_index] += binding.tenant.weight * shortfall
        return scores

    def _dispatch_arrival(self, binding: InstanceBinding, now: float) -> None:
        binding.stats.record_offer()
        if binding.runtime.pending_jobs >= binding.tenant.max_queue_depth:
            binding.stats.record_rejection()
            return
        index = binding.next_request
        binding.next_request += 1
        stats = binding.stats
        binding.runtime.feed(
            binding.tenant.job_factory(index),
            on_complete=lambda completion, arrival=now: stats.record_completion(
                arrival, completion
            ),
        )
        binding.starved = False

    # ------------------------------------------------------------------
    # Run orchestration
    # ------------------------------------------------------------------
    def _begin_run(self) -> list[tuple[float, tuple[float, ...]]]:
        """Arm every runtime and enforce the budget from time zero."""
        for index, machine in enumerate(self.machines):
            # Energy already on a meter (a machine reused after e.g. a
            # calibration run) predates every tenant: fold it into the
            # unattributed account so conservation holds regardless.
            if machine.meter.energy_joules:
                self.idle_energy_joules[index] += machine.meter.energy_joules
        for binding in self.bindings:
            binding.runtime.begin()
        cap_history: list[tuple[float, tuple[float, ...]]] = []
        if self.arbiter is not None:
            # Enforce the budget from time zero (no SLA signal yet).
            caps = self.arbiter.apply([0.0] * len(self.machines))
            cap_history.append((0.0, tuple(caps)))
        return cap_history

    def _finalize(self) -> None:
        """Close every input stream and drain the remaining work."""
        for binding in self.bindings:
            binding.runtime.close_input()
        for host in self.hosts:
            self._drain(host)

    def _collect_result(
        self, cap_history: list[tuple[float, tuple[float, ...]]]
    ) -> DatacenterResult:
        """Assemble the :class:`DatacenterResult` from engine state."""
        run_results = {
            binding.tenant.name: binding.runtime.finish()
            for binding in self.bindings
        }
        reports = [
            binding.stats.report(binding.tenant.name, binding.tenant.sla)
            for binding in self.bindings
        ]
        bills = [
            compose_bill(
                binding.machine_index,
                report,
                binding.ledger,
                run_results[binding.tenant.name],
            )
            for binding, report in zip(self.bindings, reports)
        ]
        machine_power = []
        for machine in self.machines:
            try:
                machine_power.append(machine.meter.mean_power())
            except Exception:
                machine_power.append(0.0)
        return DatacenterResult(
            tenant_reports=reports,
            run_results=run_results,
            bills=bills,
            idle_energy_joules=list(self.idle_energy_joules),
            machine_mean_power=machine_power,
            total_energy_joules=sum(
                machine.meter.energy_joules for machine in self.machines
            ),
            makespan=max(machine.now for machine in self.machines),
            budget_watts=(
                self.arbiter.budget_watts if self.arbiter is not None else None
            ),
            cap_history=cap_history,
        )

    def run(self) -> DatacenterResult:
        """Execute the scenario and collect per-tenant results."""
        if self._ran:
            raise EngineError("engine scenarios are single-use; build a new one")
        self._ran = True
        if self.backend == "sharded":
            from repro.datacenter.shard import run_sharded

            return run_sharded(self)
        if self.backend == "eager":
            return self._run_eager()
        return self._run_serial()

    def _run_serial(self) -> DatacenterResult:
        """The lazy single-process scheduler (see module docstring)."""
        cap_history = self._begin_run()
        tick_times = self._tick_times()

        def on_tick(now: float) -> None:
            if self.arbiter is None:
                raise EngineError("arbiter tick scheduled without an arbiter")
            caps = self.arbiter.apply(self._violation_scores(now))
            cap_history.append((now, tuple(caps)))

        self._pump(
            self._event_stream(self.bindings, tick_times),
            self.hosts,
            self._final_event_time(tick_times),
            on_tick,
        )
        self._finalize()
        return self._collect_result(cap_history)

    def _run_eager(self) -> DatacenterResult:
        """The original PR 1 loop: advance *every* host at *every* event.

        O(events × machines); kept verbatim (modulo the assert->raise
        hardening) as the baseline the :mod:`repro.bench` harness measures
        the lazy scheduler against.
        """
        cap_history = self._begin_run()
        horizon = max(binding.tenant.trace.duration for binding in self.bindings)
        heap: list[tuple[float, int, int, InstanceBinding | None]] = []
        seq = 0
        for binding in self.bindings:
            for arrival in binding.tenant.trace.arrivals:
                heap.append((arrival, seq, _ARRIVAL, binding))
                seq += 1
        if self.arbiter is not None:
            ticks = int(math.floor(horizon / self.arbiter_period))
            for k in range(1, ticks + 1):
                heap.append((k * self.arbiter_period, seq, _ARBITER, None))
                seq += 1
        heapq.heapify(heap)

        while heap:
            now = heap[0][0]
            for host in self.hosts:
                self._advance(host, now)
            while heap and heap[0][0] <= now + 1e-12:
                _, _, kind, binding = heapq.heappop(heap)
                if kind == _ARRIVAL:
                    if binding is None:
                        raise EngineError("arrival event lost its tenant binding")
                    self._dispatch_arrival(binding, now)
                else:
                    if self.arbiter is None:
                        raise EngineError(
                            "arbiter tick scheduled without an arbiter"
                        )
                    caps = self.arbiter.apply(self._violation_scores(now))
                    cap_history.append((now, tuple(caps)))

        self._finalize()
        return self._collect_result(cap_history)
