"""Event-driven interleaving of many live PowerDial instances.

The engine hosts N controlled application instances on M simulated
machines and drives them with open-loop request arrivals.  It is a
discrete-event simulation in *two* layers of virtual time:

* a global event stream (arrivals, control barriers) in facility time;
* each machine's own :class:`~repro.hardware.clock.VirtualClock`, which
  advances as its resident instances execute work.

Between consecutive global events every machine runs its instances
cooperatively — round-robin, one control quantum per
:meth:`~repro.core.runtime.PowerDialRuntime.step` — until its clock
catches up with the event time; a machine with nothing runnable idles
(its power meter sees the idle floor).  Because co-resident instances
share one clock, contention emerges naturally: while one instance holds
the machine, its neighbors' heart rates sag, their controllers command
speedup, and their dynamic knobs absorb the oversubscription — the §5.5
mechanism, now under interleaved, bursty, multi-tenant traffic.

Completion times are measured on the machine clock against global
arrival times, giving end-to-end request latencies for the tenant SLA
accounting.

**Control plane.**  The engine itself makes no cluster-level decisions.
When constructed with a ``policy`` (any
:class:`~repro.datacenter.controlplane.actions.ControlPolicy`), it
schedules control barriers — every ``control_period`` seconds plus any
policy-requested instants (e.g. budget-trace timestamps) — settles
every machine to the barrier, hands the policy an immutable
:class:`~repro.datacenter.controlplane.actions.ClusterView`, and
applies the returned actions (``SetCaps``, ``SetBudget``, ``Migrate``)
through the shared control-plane applier, which validates them against
the pool's hard limits first.  The legacy power arbiter is now just one
such policy (:meth:`repro.datacenter.arbiter.PowerArbiter.decide`).

Scheduling is *lazy*: an event only advances the machine it concerns
(arrivals touch one host; control barriers synchronize the pool, since
they may change DVFS states, the budget, or placement, and read every
tenant's SLA signal).  A machine with nothing to do is not visited per
event — its idle time is settled in a single O(1) ``idle_until`` when
it next matters — so the cost of a run scales with the number of
events, not events × machines.  Arrival streams are consumed through an
incremental merge of the per-tenant traces (each already sorted) whose
membership can change at barriers — which is how a migrated tenant's
arrival cursor moves with it, including across shard workers.

Every dispatched ``step()`` is metered for billing: the machine meter's
energy delta and the clock delta across the step are charged to the
stepping tenant's :class:`~repro.datacenter.billing.TenantLedger`,
while lazily settled idle gaps accumulate per machine as unattributed
idle energy — so :attr:`DatacenterResult.bills` attributes every
watt-second of pool energy to a tenant or to the idle floor (the
conservation invariant the billing tests pin, which survives both
migrations and mid-run budget changes).

Three execution backends share these semantics:

* ``"serial"`` — the lazy single-process scheduler (default);
* ``"sharded"`` — machines partitioned across ``workers`` forked
  processes which run independently between control barriers (see
  :mod:`repro.datacenter.shard`); identical results to ``"serial"``;
* ``"eager"`` — the original advance-every-host-per-event loop, kept as
  the reference baseline for the :mod:`repro.bench` perf trajectory.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.batched import to_batched
from repro.core.runtime import PowerDialRuntime, RunResult, StepStatus
from repro.datacenter.billing import (
    TenantBill,
    TenantLedger,
    compose_bill,
    conservation_summary,
)
from repro.datacenter.checkpoint import (
    MachineCheckpoint,
    TenantCheckpoint,
    capture_machine_checkpoint,
    capture_tenant_checkpoint,
)
from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    ControlPolicy,
    FailureRecord,
    MachineView,
    MigrationRecord,
    TenantView,
)
from repro.datacenter.controlplane.applier import (
    ControlPlan,
    RetryState,
    apply_failures,
    enforce_caps,
    machine_limits,
    merge_run_results,
    migrate_instance,
    plan_actions,
    retry_backoff_seconds,
)
from repro.datacenter.faults import FaultPlan, FaultRecord, RetryRecord
from repro.datacenter.tenants import TenantReport, TenantSpec, TenantStats
from repro.hardware.machine import Machine
from repro.heartbeats.health import (
    HEALTH_DEAD,
    HEALTH_FRESH,
    HEALTH_STALE,
    HEALTH_UNRESPONSIVE,
    classify_heartbeat_age,
)

__all__ = [
    "EngineError",
    "InstanceBinding",
    "DatacenterResult",
    "DatacenterEngine",
    "ENGINE_BACKENDS",
    "STEP_MODES",
]

_ARRIVAL = 0
_BARRIER = 1

ENGINE_BACKENDS = ("serial", "sharded", "eager")
"""Recognized ``DatacenterEngine`` backends."""

STEP_MODES = ("scalar", "batched")
"""Recognized step-path kernels (orthogonal to the backend choice)."""


def _batched_factory(
    factory: Callable[[Machine], PowerDialRuntime],
) -> Callable[[Machine], PowerDialRuntime]:
    """Wrap a runtime factory so rebuilt runtimes use the batched kernel.

    Migrations and crash re-placements construct fresh runtimes through
    the binding's ``runtime_factory``; under ``step_mode="batched"``
    those rebuilds must come up batched too, or a migrated tenant would
    silently fall back to the scalar step path.  The wrapper is a plain
    closure: shard workers inherit it by fork (factories never cross
    process boundaries by pickling).
    """

    def build(machine: Machine) -> PowerDialRuntime:
        return to_batched(factory(machine))

    return build


class EngineError(ValueError):
    """Raised for invalid engine configuration or usage."""


@dataclass
class InstanceBinding:
    """One tenant's live instance placed on one machine.

    Attributes:
        tenant: The tenant being served.
        runtime: Its PowerDial runtime, bound to the host machine.
        machine_index: Index of that machine in the engine's pool
            (updated when the control plane migrates the instance).
        stats: Mutable SLA/admission accounting the engine fills in.
        ledger: Mutable billing meter (energy + machine time) charged
            per dispatched ``step()``; see
            :class:`~repro.datacenter.billing.TenantLedger`.
        runtime_factory: Rebuilds the tenant's runtime on a given
            machine — required for migration (a cold move restarts the
            instance on the destination), optional otherwise.
        run_segments: Completed :class:`RunResult` segments from
            machines this instance ran on before its latest migration.
    """

    tenant: TenantSpec
    runtime: PowerDialRuntime
    machine_index: int
    stats: TenantStats = field(default_factory=TenantStats)
    ledger: TenantLedger = field(default_factory=TenantLedger)
    runtime_factory: Callable[[Machine], PowerDialRuntime] | None = None
    starved: bool = False
    finished: bool = False
    next_request: int = 0
    run_segments: list[RunResult] = field(default_factory=list)


@dataclass
class DatacenterResult:
    """Everything observed during one datacenter run.

    Attributes:
        tenant_reports: Per-tenant SLA summaries, in binding order.
        run_results: Each instance's full :class:`RunResult`, by tenant.
            Note that ``mean_power``/``energy_joules`` inside a
            RunResult come from the *shared* machine meter: co-resident
            tenants all report the whole machine's draw; for pool
            accounting use ``machine_mean_power``/
            ``total_energy_joules``, and for per-tenant attribution use
            ``bills``.  A migrated tenant's result is its per-host
            segments stitched together (``mean_power`` is then None).
        bills: Per-tenant :class:`~repro.datacenter.billing.TenantBill`
            (energy, QoS-loss, admission attribution), in binding
            order; byte-identical across backends.
        idle_energy_joules: Per-machine watt-seconds no tenant was
            running for (lazy ``idle_until`` settlements, plus any
            energy already on a meter before the run began).
        machine_mean_power: Mean measured watts per machine.
        total_energy_joules: Integrated energy across the pool.
        makespan: Latest machine virtual time at the end of the run.
        budget_watts: The global budget in force at the end of the run
            (None when uncapped).
        cap_history: ``(time, per-machine caps)`` per ``SetCaps``.
        budget_history: ``(time, watts)`` — the initial budget plus
            every applied ``SetBudget`` (budget shocks land here).
        migrations: Applied migrations, in application order.
        failures: Applied machine failures (chaos injection), each with
            its victim re-placements, in application order.
        faults: Injected gray faults (sensor windows, actuator
            windows, straggler windows and recoveries), one
            :class:`~repro.datacenter.faults.FaultRecord` per fault at
            the barrier it first bit, in injection order.
        retries: Every applier attempt against a faulted actuator, as
            :class:`~repro.datacenter.faults.RetryRecord` entries in
            attempt order (deadline-based retry with capped
            deterministic backoff).
    """

    tenant_reports: list[TenantReport]
    run_results: dict[str, RunResult]
    bills: list[TenantBill]
    idle_energy_joules: list[float]
    machine_mean_power: list[float]
    total_energy_joules: float
    makespan: float
    budget_watts: float | None
    cap_history: list[tuple[float, tuple[float, ...]]]
    budget_history: list[tuple[float, float]] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    faults: list[FaultRecord] = field(default_factory=list)
    retries: list[RetryRecord] = field(default_factory=list)

    @property
    def total_mean_power(self) -> float:
        """Sum of the machines' mean power draws."""
        return sum(self.machine_mean_power)

    @property
    def billed_energy_joules(self) -> float:
        """Total watt-seconds attributed to tenants across the pool."""
        return sum(bill.energy_joules for bill in self.bills)

    @property
    def unattributed_idle_joules(self) -> float:
        """Total watt-seconds no tenant was charged for (idle floor)."""
        return sum(self.idle_energy_joules)

    def report_for(self, tenant_name: str) -> TenantReport:
        """Look up one tenant's report by name."""
        for report in self.tenant_reports:
            if report.name == tenant_name:
                return report
        raise EngineError(f"no tenant named {tenant_name!r}")

    def bill_for(self, tenant_name: str) -> TenantBill:
        """Look up one tenant's bill by name."""
        for bill in self.bills:
            if bill.tenant == tenant_name:
                return bill
        raise EngineError(f"no tenant named {tenant_name!r}")

    def energy_conservation(self) -> dict[str, float]:
        """Billed + idle vs metered pool energy; see
        :func:`~repro.datacenter.billing.conservation_summary`."""
        return conservation_summary(
            self.bills, self.idle_energy_joules, self.total_energy_joules
        )

    def energy_conservation_rel_error(self) -> float:
        """Relative mismatch of billed + idle against metered energy."""
        return self.energy_conservation()["rel_error"]

    def slas_met(self) -> int:
        """How many tenants attained their SLA."""
        return sum(1 for report in self.tenant_reports if report.sla_met)


class _Host:
    """Engine-side view of one machine and its resident instances."""

    def __init__(
        self, index: int, machine: Machine, instances: list[InstanceBinding]
    ):
        self.index = index
        self.machine = machine
        self.instances = instances
        self._rr = 0

    def next_runnable(self) -> InstanceBinding | None:
        """Round-robin over instances that can make progress."""
        for offset in range(len(self.instances)):
            index = (self._rr + offset) % len(self.instances)
            instance = self.instances[index]
            if not instance.finished and not instance.starved:
                self._rr = index + 1
                return instance
        return None


class _EventPump:
    """Incremental merge of per-tenant arrival streams.

    Replaces a one-shot ``heapq.merge`` so that stream *membership* can
    change at control barriers: a migrated tenant's cursor is
    ``remove``d from the pump that loses it and ``add``ed (at the same
    trace position) to the pump that gains it — the mechanism by which
    arrivals follow an instance across sharded workers.  The heap holds
    one live entry per tenant (its next arrival); ties order by the
    tenant's global binding index then trace position, reproducing the
    original merged-stream dispatch order exactly.

    A cursor is a mutable ``[order, arrivals, pos, binding]`` list;
    ``remove`` invalidates the cursor object itself (``binding = None``)
    so stale heap entries skip in O(1), and the hot loop advances live
    cursors with a single ``heapreplace``.
    """

    def __init__(
        self, engine: "DatacenterEngine", bindings: Sequence[InstanceBinding]
    ) -> None:
        self._engine = engine
        self._order = {id(b): i for i, b in enumerate(engine.bindings)}
        self._heap: list[tuple[float, int, int, int, list]] = []
        self._cursors: dict[int, list] = {}
        self._seq = 0
        for binding in bindings:
            self.add(binding, 0)

    def add(self, binding: InstanceBinding, pos: int) -> None:
        """Start pumping ``binding``'s arrivals from trace index ``pos``."""
        arrivals = binding.tenant.trace.arrivals
        cursor = [self._order[id(binding)], arrivals, pos, binding]
        self._cursors[id(binding)] = cursor
        if pos < len(arrivals):
            self._seq += 1
            heapq.heappush(
                self._heap, (arrivals[pos], cursor[0], pos, self._seq, cursor)
            )

    def remove(self, binding: InstanceBinding) -> int:
        """Stop pumping ``binding``; returns its resume position."""
        cursor = self._cursors.pop(id(binding))
        cursor[3] = None  # invalidate: its heap entry is now stale
        return cursor[2]

    def run_until(self, barrier: float | None) -> None:
        """Dispatch arrivals up to and including ``barrier`` (None: all).

        Each arrival advances only its own host before dispatch —
        arrivals at exactly the barrier instant dispatch *before* the
        barrier, matching the original event ordering (arrivals sorted
        ahead of ticks at equal times).
        """
        engine = self._engine
        heap = self._heap
        hosts = engine.hosts
        advance = engine._advance
        dispatch = engine._dispatch_arrival
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        while heap:
            entry = heap[0]
            time = entry[0]
            if barrier is not None and time > barrier:
                return
            cursor = entry[4]
            binding = cursor[3]
            if binding is None:
                heappop(heap)  # stale entry from a removed cursor
                continue
            pos = entry[2] + 1
            cursor[2] = pos
            arrivals = cursor[1]
            if pos < len(arrivals):
                self._seq += 1
                heapreplace(
                    heap, (arrivals[pos], cursor[0], pos, self._seq, cursor)
                )
            else:
                heappop(heap)
            advance(hosts[binding.machine_index], time)
            dispatch(binding, time)


class DatacenterEngine:
    """Runs a multi-tenant, multi-machine scenario to completion.

    Args:
        machines: The machine pool (each with its own clock and meter).
        bindings: Tenant instances placed on those machines; every
            binding's runtime must execute on ``machines[machine_index]``.
        policy: Optional control policy (any
            :class:`~repro.datacenter.controlplane.actions.ControlPolicy`,
            e.g. a :class:`~repro.datacenter.arbiter.PowerArbiter`).
            Consulted at time zero and then at every control barrier;
            its actions are validated and applied through the shared
            control-plane applier.
        control_period: Seconds between periodic control barriers.
        attainment_window: Lookback horizon for the per-barrier SLA
            attainment signal summarized in the policy's view.
        backend: ``"serial"`` (lazy single-process, default),
            ``"sharded"`` (multiprocess; identical results), or
            ``"eager"`` (the original advance-all loop, kept as the
            benchmark baseline).
        workers: Worker-process count for the sharded backend (clamped
            to the machine count; default: the host's CPU count).
            Ignored by the other backends.
        journal: Optional run journal (anything with a ``write_record``
            method, normally a
            :class:`~repro.datacenter.journal.writer.JournalWriter`).
            When set, every control barrier appends one record — the
            policy's raw actions, the applied budget/caps/migrations/
            failures, and a full cluster checkpoint — making the run
            replayable and crash-resumable from the journal alone.
        step_mode: ``"scalar"`` (the reference per-item step path,
            default) or ``"batched"`` (each runtime advances whole
            control quanta as vectorized numpy chunks; see
            :mod:`repro.core.batched`).  Bit-exact by construction, so
            bills, histories, and journal bytes are identical either
            way; the choice is never serialized into journals or
            checkpoints.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        bindings: Sequence[InstanceBinding],
        policy: ControlPolicy | None = None,
        control_period: float = 10.0,
        attainment_window: float = 20.0,
        backend: str = "serial",
        workers: int | None = None,
        journal=None,
        faults: FaultPlan | None = None,
        step_mode: str = "scalar",
    ) -> None:
        if not machines:
            raise EngineError("engine needs at least one machine")
        if not bindings:
            raise EngineError("engine needs at least one tenant instance")
        if control_period <= 0 or attainment_window <= 0:
            raise EngineError("control period and window must be positive")
        if backend not in ENGINE_BACKENDS:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {ENGINE_BACKENDS}"
            )
        if step_mode not in STEP_MODES:
            raise EngineError(
                f"unknown step_mode {step_mode!r}; expected one of {STEP_MODES}"
            )
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers!r}")
        names = [binding.tenant.name for binding in bindings]
        if len(set(names)) != len(names):
            raise EngineError(f"tenant names must be unique, got {names!r}")
        for binding in bindings:
            if not 0 <= binding.machine_index < len(machines):
                raise EngineError(
                    f"machine index {binding.machine_index!r} out of range"
                )
            if binding.runtime.machine is not machines[binding.machine_index]:
                raise EngineError(
                    f"tenant {binding.tenant.name!r}'s runtime is not bound "
                    f"to machine {binding.machine_index}"
                )
        if policy is not None:
            for required in ("decide", "initial_budget_watts", "barrier_times"):
                if not callable(getattr(policy, required, None)):
                    raise EngineError(
                        f"policy {policy!r} does not implement ControlPolicy "
                        f"(missing {required}())"
                    )
        if faults is not None:
            if policy is None:
                raise EngineError(
                    "fault injection requires a control policy: faults bite "
                    "at control barriers, and without a policy there are none"
                )
            if faults.max_machine_index() >= len(machines):
                raise EngineError(
                    f"fault plan references machine "
                    f"{faults.max_machine_index()} but the pool has only "
                    f"{len(machines)} machines"
                )
        self.machines = list(machines)
        self.bindings = list(bindings)
        self.policy = policy
        self.control_period = control_period
        self.attainment_window = attainment_window
        self.backend = backend
        self.workers = workers
        self.step_mode = step_mode
        if step_mode == "batched":
            # Swap each un-begun runtime for its batched twin (a no-op
            # for apps without a batch hook or custom runtime
            # subclasses, which keep the scalar path), and wrap the
            # factories so migration/crash rebuilds stay batched.  The
            # kernel is bit-exact per step, so every downstream
            # artifact — bills, journals, histories — is unchanged;
            # step_mode is deliberately never serialized.
            for binding in self.bindings:
                binding.runtime = to_batched(binding.runtime)
                if binding.runtime_factory is not None:
                    binding.runtime_factory = _batched_factory(
                        binding.runtime_factory
                    )
        self.hosts = [
            _Host(i, machine, [b for b in self.bindings if b.machine_index == i])
            for i, machine in enumerate(self.machines)
        ]
        # Enforceable cap range per machine, for central action validation.
        self._cap_floors, self._cap_ceilings = machine_limits(self.machines)
        self._budget: float | None = (
            policy.initial_budget_watts() if policy is not None else None
        )
        self._caps: tuple[float, ...] | None = None
        # (time, watts) per budget level, starting with the initial one.
        self.budget_history: list[tuple[float, float]] = []
        # Applied migrations, in application order.
        self.migration_history: list[MigrationRecord] = []
        # Applied machine failures (chaos injection), in order.
        self.failure_history: list[FailureRecord] = []
        # Gray-failure injection (see repro.datacenter.faults): the
        # plan drives per-barrier telemetry filtering and actuation
        # faults; every injected fault and applier retry is recorded.
        self.faults = faults
        self.fault_history: list[FaultRecord] = []
        self.retry_history: list[RetryRecord] = []
        # Per-machine health as of the latest barrier (fresh / stale /
        # unresponsive / dead), with recovery hysteresis deadlines.
        self._health: list[str] = [HEALTH_FRESH] * len(self.machines)
        self._last_fresh_time: list[float] = [0.0] * len(self.machines)
        self._last_fresh_views: dict[str, TenantView] = {}
        self._delayed_machines = (
            faults.delayed_machines() if faults is not None else frozenset()
        )
        # Barrier-view history, kept only for delay-mode machines.
        self._view_log: dict[int, list[tuple[float, dict[str, TenantView]]]] = {}
        self._reintegrate_at: dict[int, float] = {}
        # Applier retry loops per machine, plus targets it has given
        # up on (until the fault clears or a new target arrives).
        self._retries: dict[int, RetryState] = {}
        self._abandoned: dict[int, float] = {}
        # Last watts actually landed on each machine's actuator —
        # distinct from self._caps (the *commanded* caps) while
        # actuator faults or stragglers are active.
        self._applied_watts: dict[int, float] = {}
        self._straggling: set[int] = set()
        # Fault windows already journaled (announced once, at the
        # first barrier where they bite).
        self._announced: set[tuple[str, int]] = set()
        self._barrier_fault_records: list[FaultRecord] = []
        # Machines that have fail-stopped: clock and meter frozen at the
        # death barrier, never advanced or capped again.
        self.dead_machines: set[int] = set()
        self.journal = journal
        # Per-barrier cluster checkpoints are captured only when someone
        # needs them (a journal, or a policy that may kill machines) so
        # ordinary runs pay zero checkpoint overhead.
        self._checkpointing = journal is not None or bool(
            getattr(policy, "may_fail_machines", False)
        )
        self._last_checkpoints: dict[str, TenantCheckpoint] | None = None
        self._last_machine_checkpoints: list[MachineCheckpoint] | None = None
        # The previous journaled barrier's tenant checkpoints, so each
        # barrier record stores completions as an append-only delta.
        self._journaled_checkpoints: dict[str, TenantCheckpoint] = {}
        self._barrier_index = 0
        # Watt-seconds per machine that no tenant was running for; the
        # billing conservation invariant is
        #   sum(binding.ledger.energy_joules) + sum(idle_energy_joules)
        #       == total metered pool energy.
        self.idle_energy_joules: list[float] = [0.0] * len(self.machines)
        # Filled by the sharded backend after run(): per-shard CPU
        # seconds, barrier waits excluded (bench-harness telemetry).
        self.shard_busy_seconds: list[float] | None = None
        # Barrier-plane telemetry, filled by run(): the coordinator's
        # own CPU seconds and a per-run breakdown of the barrier
        # protocol (payload bytes, serialize/wait/apply seconds).  The
        # in-process backends report the degenerate "in-process"
        # protocol so bench entries always carry the same keys.
        self.coordinator_busy_seconds: float | None = None
        self.barrier_stats: dict[str, object] | None = None
        self._barrier_apply_seconds = 0.0
        self._barrier_count = 0
        self._ran = False

    # ------------------------------------------------------------------
    # Control-plane plumbing shared by all backends
    # ------------------------------------------------------------------
    def _tick_times(self) -> list[float]:
        """Control-barrier times over the scenario horizon.

        Periodic barriers every ``control_period`` plus any instants the
        policy requests (e.g. budget-trace timestamps), deduplicated and
        sorted — the same list on every backend.
        """
        if self.policy is None:
            return []
        horizon = max(b.tenant.trace.duration for b in self.bindings)
        ticks = {
            k * self.control_period
            for k in range(1, int(math.floor(horizon / self.control_period)) + 1)
        }
        ticks.update(
            t for t in self.policy.barrier_times(horizon) if 0.0 < t <= horizon
        )
        if self.faults is not None:
            # Fault-window edges and kill instants are barriers too, so
            # every fault bites (and clears) exactly when scheduled.
            ticks.update(
                t
                for t in self.faults.barrier_times(horizon)
                if 0.0 < t <= horizon
            )
        return sorted(ticks)

    def _final_event_time(self, tick_times: Sequence[float]) -> float:
        """Time of the last global event (all hosts settle to it)."""
        last = tick_times[-1] if tick_times else 0.0
        for binding in self.bindings:
            arrivals = binding.tenant.trace.arrivals
            if arrivals:
                last = max(last, arrivals[-1])
        return last

    def _tenant_shortfall(self, binding: InstanceBinding, now: float) -> float:
        """One tenant's SLA shortfall over the attainment window.

        ``max(0, target - recent attainment)``; a tenant with nothing
        completed counts as fully violating if work is backed up,
        otherwise as quiet.
        """
        sla = binding.tenant.sla
        attainment = binding.stats.recent_attainment(
            sla.latency_bound, now - self.attainment_window, now
        )
        if attainment is None:
            backlogged = binding.runtime.pending_jobs > 0
            return sla.attainment_target if backlogged else 0.0
        return max(0.0, sla.attainment_target - attainment)

    def _tenant_view(self, binding: InstanceBinding, now: float) -> TenantView:
        """Snapshot one tenant for the policy's cluster view.

        Shared verbatim by the serial engine and the shard workers, so
        the floats a policy sees are backend-independent.
        """
        return TenantView(
            name=binding.tenant.name,
            machine_index=binding.machine_index,
            weight=binding.tenant.weight,
            sla_shortfall=self._tenant_shortfall(binding, now),
            pending_jobs=binding.runtime.pending_jobs,
            finished=binding.finished,
            energy_joules=binding.ledger.energy_joules,
            busy_seconds=binding.ledger.busy_seconds,
            steps=binding.ledger.steps,
        )

    def _control_view(
        self, now: float, tenants: tuple[TenantView, ...] | None = None
    ) -> ClusterView:
        """Assemble the immutable snapshot handed to the policy.

        ``tenants`` overrides the in-process snapshot (the sharded
        coordinator passes tenant views gathered from its workers,
        reassembled in binding order).
        """
        if tenants is None:
            tenants = tuple(self._tenant_view(b, now) for b in self.bindings)
        machines = tuple(
            MachineView(
                index=index,
                cap_floor=self._cap_floors[index],
                cap_ceiling=self._cap_ceilings[index],
                cap_watts=self._caps[index] if self._caps is not None else None,
                alive=index not in self.dead_machines,
                health=(
                    HEALTH_DEAD
                    if index in self.dead_machines
                    else self._health[index]
                ),
            )
            for index in range(len(self.machines))
        )
        return ClusterView(
            time=now, budget_watts=self._budget, machines=machines,
            tenants=tenants,
        )

    def _decide_plan(
        self, view: ClusterView
    ) -> tuple[list[Action], ControlPlan]:
        """Ask the policy for actions and validate them centrally.

        Returns both the policy's raw actions (journaled verbatim, so a
        replay can re-issue exactly what the policy said) and the
        validated :class:`ControlPlan` the engine applies.
        """
        if self.policy is None:
            raise EngineError("control barrier scheduled without a policy")
        if self.faults is not None:
            self._barrier_fault_records = []
            view = self._observe_view(view)
        actions = list(self.policy.decide(view))
        plan = plan_actions(
            actions, view, self._cap_floors, self._cap_ceilings, self._budget
        )
        return actions, plan

    def _announce_fault(
        self, now: float, kind: str, machine_index: int, mode: str | None, key: tuple[str, int]
    ) -> None:
        """Journal a fault window once, at the first barrier it bites."""
        if key in self._announced:
            return
        self._announced.add(key)
        record = FaultRecord(
            time=now, kind=kind, machine_index=machine_index, mode=mode
        )
        self._barrier_fault_records.append(record)
        self.fault_history.append(record)

    def _observe_view(self, view: ClusterView) -> ClusterView:
        """Filter the true cluster view through the plan's sensor faults.

        The control plane sees what the (possibly lying) telemetry
        pipeline reports: dropout windows hold each resident tenant's
        last fresh stats, delay windows serve stats from ``delay``
        seconds ago, and noise windows deterministically perturb the
        SLA-shortfall signal.  Placement facts (machine index, weight,
        finished flag) stay current — only performance telemetry lies
        — and the machines' true physics (and therefore billing) are
        untouched.  Machine ``health`` is derived here from the age of
        the last trusted sample via
        :func:`repro.heartbeats.health.classify_heartbeat_age`, with
        quarantine-recovery hysteresis: a machine that went
        unresponsive stays ``stale`` for ``reintegrate_seconds`` after
        its telemetry returns before being trusted as ``fresh`` again.
        """
        plan = self.faults
        if plan is None:  # pragma: no cover - guarded by the caller
            return view
        now = view.time
        by_machine: dict[int, list[TenantView]] = {}
        for tenant in view.tenants:
            by_machine.setdefault(tenant.machine_index, []).append(tenant)
        for machine_index in self._delayed_machines:
            snapshot = {t.name: t for t in by_machine.get(machine_index, [])}
            self._view_log.setdefault(machine_index, []).append(
                (now, snapshot)
            )
        observed: dict[str, TenantView] = {}
        ages = [0.0] * len(self.machines)
        for machine_index in range(len(self.machines)):
            if machine_index in self.dead_machines:
                continue
            residents = by_machine.get(machine_index, [])
            fault = plan.sensor_at(machine_index, now)
            if fault is not None:
                self._announce_fault(
                    now,
                    "sensor",
                    machine_index,
                    fault.mode,
                    ("sensor", plan.sensors.index(fault)),
                )
            if fault is None or fault.mode == "noise":
                # Telemetry flows (noise still counts as a heartbeat:
                # the machine is talking, just not truthfully).
                self._last_fresh_time[machine_index] = now
                for tenant in residents:
                    self._last_fresh_views[tenant.name] = tenant
                if fault is not None:
                    unit = plan.noise_unit(machine_index, now)
                    for tenant in residents:
                        observed[tenant.name] = replace(
                            tenant,
                            sla_shortfall=max(
                                0.0,
                                tenant.sla_shortfall
                                * (1.0 + fault.amplitude * unit),
                            ),
                        )
                continue
            # Dropout, or delay: the freshest trusted sample is old.
            source: dict[str, TenantView] = {}
            age = now - self._last_fresh_time[machine_index]
            if fault.mode == "delay":
                for entry_time, snapshot in reversed(
                    self._view_log.get(machine_index, [])
                ):
                    if entry_time <= now - fault.delay + 1e-9:
                        source = snapshot
                        age = now - entry_time
                        break
            for tenant in residents:
                cached = source.get(tenant.name)
                if cached is None:
                    cached = self._last_fresh_views.get(tenant.name)
                if cached is None:
                    # No trusted sample yet (window opened at the run's
                    # start): the true view is all there is.
                    observed[tenant.name] = tenant
                    continue
                observed[tenant.name] = replace(
                    cached,
                    machine_index=tenant.machine_index,
                    weight=tenant.weight,
                    finished=tenant.finished,
                )
            ages[machine_index] = age
        for machine_index in range(len(self.machines)):
            if machine_index in self.dead_machines:
                self._health[machine_index] = HEALTH_DEAD
                self._reintegrate_at.pop(machine_index, None)
                continue
            prior = self._health[machine_index]
            base = classify_heartbeat_age(
                ages[machine_index],
                plan.stale_after_seconds,
                plan.unresponsive_after_seconds,
            )
            if base == HEALTH_UNRESPONSIVE:
                health = HEALTH_UNRESPONSIVE
                self._reintegrate_at.pop(machine_index, None)
            elif base == HEALTH_STALE:
                health = HEALTH_STALE
            elif prior == HEALTH_UNRESPONSIVE:
                # Telemetry is back, but a quarantined machine earns
                # trust slowly: stale until the hysteresis deadline.
                self._reintegrate_at[machine_index] = (
                    now + plan.reintegrate_seconds
                )
                health = HEALTH_STALE
            elif machine_index in self._reintegrate_at:
                if now + 1e-9 >= self._reintegrate_at[machine_index]:
                    del self._reintegrate_at[machine_index]
                    health = HEALTH_FRESH
                else:
                    health = HEALTH_STALE
            else:
                health = HEALTH_FRESH
            self._health[machine_index] = health
        machines = tuple(
            replace(
                machine,
                health=(
                    HEALTH_DEAD
                    if not machine.alive
                    else self._health[machine.index]
                ),
            )
            for machine in view.machines
        )
        tenants = tuple(
            observed.get(tenant.name, tenant) for tenant in view.tenants
        )
        return ClusterView(
            time=now,
            budget_watts=view.budget_watts,
            machines=machines,
            tenants=tenants,
        )

    def _actuate(
        self, now: float, plan: ControlPlan
    ) -> tuple[tuple[float | None, ...] | None, list[FaultRecord], list[RetryRecord]]:
        """Push the validated caps through the (possibly faulty) actuators.

        The single choke point between a plan's *commanded* caps and
        the watts that actually land on machines, called exactly once
        per barrier by every backend.  Without a fault plan it returns
        ``plan.caps`` unchanged.  With one: actuator ``drop`` windows
        lose the command outright, ``partial`` windows move only part
        way, and the applier opens a deadline-based retry loop per
        machine — retries land at later barriers after a capped
        deterministic backoff, every attempt journaled as a
        :class:`~repro.datacenter.faults.RetryRecord`.  Straggler
        windows then pin their machine to its cap floor regardless of
        any command, restoring the last landed watts when the window
        ends.  The returned per-machine entries may be None (leave
        that machine's DVFS state untouched this barrier).

        Commanded caps still flow to ``self._caps``/``cap_history``
        via :meth:`_record_plan` — the control plane believes its
        commands landed, which is exactly the gray-failure illusion —
        while ``self._applied_watts`` tracks ground truth.
        """
        if self.faults is None:
            return plan.caps, [], []
        fault_plan = self.faults
        commanded = plan.caps
        applied: list[float | None] = [None] * len(self.machines)
        retries_out: list[RetryRecord] = []
        dying = {f.machine_index for f in plan.failures}

        def record_retry(
            machine_index: int,
            target: float,
            landed: float | None,
            attempt: int,
            outcome: str,
        ) -> None:
            record = RetryRecord(
                time=now,
                machine_index=machine_index,
                target_watts=target,
                applied_watts=landed,
                attempt=attempt,
                outcome=outcome,
            )
            retries_out.append(record)
            self.retry_history.append(record)

        for machine_index in range(len(self.machines)):
            if machine_index in self.dead_machines or machine_index in dying:
                self._retries.pop(machine_index, None)
                self._abandoned.pop(machine_index, None)
                self._straggling.discard(machine_index)
                continue
            fault = fault_plan.actuator_at(machine_index, now)
            if fault is not None:
                self._announce_fault(
                    now,
                    "actuator",
                    machine_index,
                    fault.mode,
                    ("actuator", fault_plan.actuators.index(fault)),
                )
            target = commanded[machine_index] if commanded is not None else None
            pending = self._retries.get(machine_index)
            attempt_target: float | None = None
            attempt_number = 1
            if pending is not None:
                if (
                    target is not None
                    and abs(target - pending.target_watts) > 1e-12
                ):
                    # A new command supersedes the retry loop: fresh
                    # target, fresh deadline, fresh backoff.
                    self._retries.pop(machine_index)
                    self._abandoned.pop(machine_index, None)
                    pending = None
                    attempt_target = target
                elif now + 1e-9 >= pending.next_attempt_at:
                    attempt_target = pending.target_watts
                    attempt_number = pending.attempts + 1
                # else: backing off — leave the actuator alone.
            elif target is not None:
                abandoned = self._abandoned.get(machine_index)
                if (
                    abandoned is not None
                    and fault is not None
                    and abs(target - abandoned) <= 1e-12
                ):
                    # Gave up on this exact target; don't bang on the
                    # broken actuator until the fault clears or the
                    # policy asks for something new.
                    attempt_target = None
                else:
                    self._abandoned.pop(machine_index, None)
                    attempt_target = target
            if attempt_target is None:
                continue
            started = pending.commanded_at if pending is not None else now
            if fault is None:
                applied[machine_index] = attempt_target
                self._applied_watts[machine_index] = attempt_target
                if pending is not None:
                    record_retry(
                        machine_index,
                        attempt_target,
                        attempt_target,
                        attempt_number,
                        "succeeded",
                    )
                    self._retries.pop(machine_index)
                continue
            if fault.mode == "drop":
                landed: float | None = None
            else:  # partial
                current = self._applied_watts.get(
                    machine_index, self._cap_ceilings[machine_index]
                )
                landed = current + fault.fraction * (attempt_target - current)
                landed = min(
                    max(landed, self._cap_floors[machine_index]),
                    self._cap_ceilings[machine_index],
                )
                applied[machine_index] = landed
                self._applied_watts[machine_index] = landed
            if landed is not None and abs(landed - attempt_target) <= 1e-9:
                record_retry(
                    machine_index,
                    attempt_target,
                    landed,
                    attempt_number,
                    "succeeded",
                )
                self._retries.pop(machine_index, None)
            elif (
                pending is not None
                and now - started + 1e-9 >= fault_plan.retry_deadline_seconds
            ):
                record_retry(
                    machine_index, attempt_target, landed, attempt_number,
                    "abandoned",
                )
                self._retries.pop(machine_index, None)
                self._abandoned[machine_index] = attempt_target
            else:
                record_retry(
                    machine_index,
                    attempt_target,
                    landed,
                    attempt_number,
                    "failed" if landed is None else "partial",
                )
                backoff = retry_backoff_seconds(
                    attempt_number,
                    fault_plan.retry_base_seconds,
                    fault_plan.retry_cap_seconds,
                )
                self._retries[machine_index] = RetryState(
                    target_watts=attempt_target,
                    commanded_at=started,
                    attempts=attempt_number,
                    next_attempt_at=now + backoff,
                )
        # Straggler overlay: the machine's clock runs slow no matter
        # what the applier landed; recovery restores the landed watts.
        for machine_index in range(len(self.machines)):
            if machine_index in self.dead_machines or machine_index in dying:
                continue
            straggle = fault_plan.straggler_at(machine_index, now)
            if straggle is not None:
                if machine_index not in self._straggling:
                    self._straggling.add(machine_index)
                    self._announce_fault(
                        now,
                        "straggler",
                        machine_index,
                        None,
                        ("straggler", fault_plan.stragglers.index(straggle)),
                    )
                applied[machine_index] = self._cap_floors[machine_index]
            elif machine_index in self._straggling:
                self._straggling.discard(machine_index)
                record = FaultRecord(
                    time=now,
                    kind="recovered",
                    machine_index=machine_index,
                    mode=None,
                )
                self._barrier_fault_records.append(record)
                self.fault_history.append(record)
                if applied[machine_index] is None:
                    restore = self._applied_watts.get(machine_index)
                    if restore is not None:
                        applied[machine_index] = restore
        fault_records = list(self._barrier_fault_records)
        self._barrier_fault_records = []
        if all(entry is None for entry in applied):
            return None, fault_records, retries_out
        return tuple(applied), fault_records, retries_out

    def _capture_checkpoints(self) -> None:
        """Checkpoint every tenant and machine at a settled barrier.

        Called before the policy decides, so the captured state is
        exactly what the policy's view summarizes — and exactly what a
        failure at this barrier restores from.
        """
        self._last_checkpoints = {
            binding.tenant.name: capture_tenant_checkpoint(binding)
            for binding in self.bindings
        }
        self._last_machine_checkpoints = [
            capture_machine_checkpoint(self, index)
            for index in range(len(self.machines))
        ]

    def _enforce_live_caps(
        self,
        caps: tuple[float | None, ...],
        dying: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        """Apply validated caps, skipping dead and dying machines.

        A machine failing at this same barrier keeps its pre-barrier
        frequency — it will never run again, and skipping it keeps the
        frozen DVFS state identical across backends (the sharded
        coordinator marks deaths before its workers enforce caps).
        A None entry (an actuator fault dropped the command, or the
        applier is backing off before a retry) likewise leaves that
        machine's DVFS state untouched.
        """
        alive = [
            index
            for index in range(len(self.machines))
            if index not in self.dead_machines
            and index not in dying
            and caps[index] is not None
        ]
        enforce_caps(
            [self.machines[index] for index in alive],
            [caps[index] for index in alive],
        )

    def _journal_barrier(
        self,
        now: float,
        actions: Sequence[Action],
        migrations: Sequence[MigrationRecord],
        failures: Sequence[FailureRecord],
        fault_records: Sequence[FaultRecord] = (),
        retry_records: Sequence[RetryRecord] = (),
    ) -> None:
        """Append one barrier record to the run journal (if attached).

        Written *after* the barrier's actions applied — a crash inside
        a barrier therefore leaves a journal ending at the previous
        complete barrier, which is the resume point.
        """
        if self.journal is None:
            return
        # Imported lazily: the journal package's replay module imports
        # this engine, so a module-level import would be circular.
        from repro.datacenter.journal import codec

        checkpoints = self._last_checkpoints or {}
        record = {
            "kind": "barrier",
            "index": self._barrier_index,
            "time": now,
            "actions": [codec.encode_action(action) for action in actions],
            "budget_watts": self._budget,
            "caps": list(self._caps) if self._caps is not None else None,
            "tenants": [
                codec.encode_tenant_checkpoint(
                    checkpoints[binding.tenant.name],
                    self._journaled_checkpoints.get(binding.tenant.name),
                )
                for binding in self.bindings
            ],
            "machines": [
                codec.encode_machine_checkpoint(checkpoint)
                for checkpoint in self._last_machine_checkpoints or []
            ],
            "migrations": [
                codec.encode_migration_record(record)
                for record in migrations
            ],
            "failures": [
                codec.encode_failure_record(record) for record in failures
            ],
            "faults": [
                codec.encode_fault_record(record) for record in fault_records
            ],
            "retries": [
                codec.encode_retry_record(record) for record in retry_records
            ],
        }
        self.journal.write_record(record)
        self._journaled_checkpoints = dict(checkpoints)
        self._barrier_index += 1

    def _record_plan(
        self,
        plan: ControlPlan,
        now: float,
        cap_history: list[tuple[float, tuple[float, ...]]],
    ) -> None:
        """Book-keep a validated plan (budget level, cap history)."""
        if plan.budget_watts is not None:
            self._budget = plan.budget_watts
            self.budget_history.append((now, plan.budget_watts))
        if plan.caps is not None:
            self._caps = plan.caps
            cap_history.append((now, plan.caps))

    def _control_tick(
        self,
        now: float,
        cap_history: list[tuple[float, tuple[float, ...]]],
    ) -> None:
        """Run one in-process control barrier: view -> plan -> apply.

        Application order is canonical — budget, then caps, then
        failures, then migrations — so a migration's source-host drain
        always runs under the freshly enforced caps and never races a
        machine dying at the same barrier, on every backend.  When
        checkpointing is on, the cluster checkpoint is captured before
        the policy decides; the journal record (actions, applied
        effects, checkpoint) is written after everything applied.
        """
        ticked = time.perf_counter()
        if self._checkpointing:
            self._capture_checkpoints()
        actions, plan = self._decide_plan(self._control_view(now))
        self._record_plan(plan, now, cap_history)
        applied, fault_records, retry_records = self._actuate(now, plan)
        if applied is not None:
            self._enforce_live_caps(
                applied, {f.machine_index for f in plan.failures}
            )
        failures: list[FailureRecord] = []
        if plan.failures:
            failures = apply_failures(
                self, [f.machine_index for f in plan.failures], now
            )
            self.failure_history.extend(failures)
        migrations: list[MigrationRecord] = []
        for migration in plan.migrations:
            record = migrate_instance(self, migration, now)
            self.migration_history.append(record)
            migrations.append(record)
        self._journal_barrier(
            now, actions, migrations, failures, fault_records, retry_records
        )
        self._barrier_apply_seconds += time.perf_counter() - ticked
        self._barrier_count += 1

    # ------------------------------------------------------------------
    # Event plumbing for the single-process backends
    # ------------------------------------------------------------------
    def _event_stream(
        self,
        bindings: Sequence[InstanceBinding],
        tick_times: Sequence[float],
    ) -> Iterator[tuple[float, int, int, int, InstanceBinding | None]]:
        """Lazily merge pre-sorted per-tenant arrival streams and barriers.

        Events are ``(time, kind, binding_index, seq, binding)`` tuples
        ordered by time; arrivals sort before a control barrier at the
        same instant, and simultaneous arrivals dispatch in binding
        order.  ``heapq.merge`` keeps this O(log k) per event over k
        already-sorted streams — no per-request heap entries are
        materialized.  Stream membership is fixed, which is fine for the
        serial backend: an in-process migration keeps the binding in
        this same stream and simply re-routes dispatch through its
        updated ``machine_index`` (shard workers, where a migrated
        tenant really leaves or joins, use :class:`_EventPump` instead).
        """
        index_of = {id(b): i for i, b in enumerate(self.bindings)}

        def arrivals(binding: InstanceBinding) -> Iterable[
            tuple[float, int, int, int, InstanceBinding | None]
        ]:
            bindex = index_of[id(binding)]
            for seq, at in enumerate(binding.tenant.trace.arrivals):
                yield (at, _ARRIVAL, bindex, seq, binding)

        def ticks() -> Iterable[tuple[float, int, int, int, InstanceBinding | None]]:
            for seq, at in enumerate(tick_times):
                yield (at, _BARRIER, -1, seq, None)

        streams = [arrivals(binding) for binding in bindings]
        if tick_times:
            streams.append(ticks())
        return heapq.merge(*streams)

    def _pump_stream(
        self,
        events: Iterator[tuple[float, int, int, int, InstanceBinding | None]],
        hosts: Sequence[_Host],
        final_time: float,
        on_tick: Callable[[float], None],
    ) -> None:
        """Drive ``hosts`` through the event stream, lazily.

        An arrival advances only its own host (idle neighbours are left
        alone — their gap is settled in one ``idle_until`` when they next
        matter); a control barrier settles every host in ``hosts`` to
        the barrier time, because DVFS states, the budget, or placement
        are about to change and every tenant's SLA signal is read.
        After the last event, every host settles to ``final_time`` so
        pool-level accounting (makespan, idle energy) is independent of
        per-host event density.
        """
        for time, kind, _, _, binding in events:
            if kind == _ARRIVAL:
                if binding is None:
                    raise EngineError("arrival event lost its tenant binding")
                self._advance(self.hosts[binding.machine_index], time)
                self._dispatch_arrival(binding, time)
            else:
                self._advance_barrier(hosts, time)
                on_tick(time)
        self._advance_barrier(hosts, final_time)

    # ------------------------------------------------------------------
    def _advance_barrier(self, hosts: Sequence[_Host], until: float) -> None:
        """Settle every host in ``hosts`` to a barrier instant.

        The one dispatch point where a whole group of instances is known
        to be due at the same time — serial barriers, the trailing
        settle, and the shard workers' per-tick loops all funnel through
        here.  Each host still advances its residents in the scalar
        round-robin order (co-resident instances share one clock, so
        cross-instance reordering would change the interleaving the
        scalar engine defines); under ``step_mode="batched"`` each
        dispatched ``step()`` then advances a whole control quantum as
        one vectorized chunk inside the runtime kernel.
        """
        for host in hosts:
            self._advance(host, until)

    def _advance(self, host: _Host, until: float) -> None:
        """Run ``host`` cooperatively until its clock reaches ``until``.

        Every ``step()`` dispatched here is metered: the increase of the
        machine meter's integrated energy and of the machine clock
        across the step is charged to the stepping tenant's ledger.  The
        closing ``idle_until`` settlement belongs to no tenant and
        accumulates as the machine's unattributed idle energy.  A
        fail-stopped machine is never advanced: its clock and meter
        stay frozen at the death barrier (fail-stop semantics — the
        billing conservation invariant is unaffected because a frozen
        meter accrues nothing).
        """
        if host.index in self.dead_machines:
            return
        machine = host.machine
        while machine.now < until - 1e-12:
            instance = host.next_runnable()
            if instance is None:
                energy_before = machine.meter.energy_joules
                machine.idle_until(until)
                self.idle_energy_joules[host.index] += (
                    machine.meter.energy_joules - energy_before
                )
                return
            status = self._metered_step(host, instance)
            if status is StepStatus.STARVED:
                instance.starved = True
            elif status is StepStatus.FINISHED:
                instance.finished = True

    def _metered_step(self, host: _Host, instance: InstanceBinding) -> StepStatus:
        """Dispatch one ``step()`` and charge its deltas to the tenant.

        The single choke point for billing attribution: every backend
        and every phase (event pumping, migration drains, and the
        post-input drain) must route step dispatch through here, or the
        conservation invariant breaks.
        """
        machine = host.machine
        meter = machine.meter
        energy_before = meter.energy_joules
        started = machine.now
        status = instance.runtime.step()
        instance.ledger.charge(
            meter.energy_joules - energy_before, machine.now - started
        )
        return status

    def _drain(self, host: _Host) -> None:
        """Run every resident instance to completion (input closed)."""
        while True:
            unfinished = [i for i in host.instances if not i.finished]
            if not unfinished:
                return
            for instance in unfinished:
                if self._metered_step(host, instance) is StepStatus.FINISHED:
                    instance.finished = True

    def _dispatch_arrival(self, binding: InstanceBinding, now: float) -> None:
        """Offer one arrival to its tenant: admission control + feed."""
        binding.stats.record_offer()
        if binding.runtime.pending_jobs >= binding.tenant.max_queue_depth:
            binding.stats.record_rejection()
            return
        index = binding.next_request
        binding.next_request += 1
        stats = binding.stats
        binding.runtime.feed(
            binding.tenant.job_factory(index),
            on_complete=lambda completion, arrival=now: stats.record_completion(
                arrival, completion
            ),
            tag=(index, now),
        )
        binding.starved = False

    # ------------------------------------------------------------------
    # Run orchestration
    # ------------------------------------------------------------------
    def _begin_run(self) -> list[tuple[float, tuple[float, ...]]]:
        """Arm every runtime and run the time-zero control barrier."""
        for index, machine in enumerate(self.machines):
            # Energy already on a meter (a machine reused after e.g. a
            # calibration run) predates every tenant: fold it into the
            # unattributed account so conservation holds regardless.
            if machine.meter.energy_joules:
                self.idle_energy_joules[index] += machine.meter.energy_joules
        for binding in self.bindings:
            binding.runtime.begin()
        cap_history: list[tuple[float, tuple[float, ...]]] = []
        if self.policy is not None:
            if self._budget is not None:
                self.budget_history.append((0.0, self._budget))
            # Enforce the budget from time zero (no SLA signal yet).
            self._control_tick(0.0, cap_history)
        return cap_history

    def _finalize(self) -> None:
        """Close every input stream and drain the remaining work."""
        for binding in self.bindings:
            binding.runtime.close_input()
        for host in self.hosts:
            self._drain(host)

    def _collect_result(
        self, cap_history: list[tuple[float, tuple[float, ...]]]
    ) -> DatacenterResult:
        """Assemble the :class:`DatacenterResult` from engine state."""
        segments = {
            binding.tenant.name: (
                *binding.run_segments,
                binding.runtime.finish(),
            )
            for binding in self.bindings
        }
        run_results = {
            name: merge_run_results(parts) for name, parts in segments.items()
        }
        reports = [
            binding.stats.report(binding.tenant.name, binding.tenant.sla)
            for binding in self.bindings
        ]
        bills = [
            compose_bill(
                binding.machine_index,
                report,
                binding.ledger,
                segments[binding.tenant.name],
            )
            for binding, report in zip(self.bindings, reports)
        ]
        machine_power = []
        for machine in self.machines:
            try:
                machine_power.append(machine.meter.mean_power())
            except Exception:
                machine_power.append(0.0)
        # In-process barrier telemetry: no wire, so the whole barrier
        # cost is "apply" and the payload is zero bytes.  Same keys as
        # the sharded backend's breakdown so bench consumers need no
        # per-backend cases.
        self.barrier_stats = {
            "protocol": "in-process",
            "barriers": self._barrier_count,
            "payload_bytes": 0,
            "serialize_seconds": 0.0,
            "wait_seconds": 0.0,
            "apply_seconds": self._barrier_apply_seconds,
        }
        return DatacenterResult(
            tenant_reports=reports,
            run_results=run_results,
            bills=bills,
            idle_energy_joules=list(self.idle_energy_joules),
            machine_mean_power=machine_power,
            total_energy_joules=sum(
                machine.meter.energy_joules for machine in self.machines
            ),
            makespan=max(machine.now for machine in self.machines),
            budget_watts=self._budget,
            cap_history=cap_history,
            budget_history=list(self.budget_history),
            migrations=list(self.migration_history),
            failures=list(self.failure_history),
            faults=list(self.fault_history),
            retries=list(self.retry_history),
        )

    def run(self) -> DatacenterResult:
        """Execute the scenario and collect per-tenant results."""
        if self._ran:
            raise EngineError("engine scenarios are single-use; build a new one")
        self._ran = True
        if self.backend == "sharded":
            from repro.datacenter.shard import run_sharded

            return run_sharded(self)
        if self.backend == "eager":
            return self._run_eager()
        return self._run_serial()

    def _run_serial(self) -> DatacenterResult:
        """The lazy single-process scheduler (see module docstring)."""
        # Barrier times first: a policy may derive per-run state (e.g.
        # a chaos kill schedule) in barrier_times(), which the time-zero
        # decide inside _begin_run() already relies on.
        tick_times = self._tick_times()
        cap_history = self._begin_run()

        def on_tick(now: float) -> None:
            # No pump: in-process migrations keep the binding in the
            # one merged stream (see _event_stream).
            self._control_tick(now, cap_history)

        self._pump_stream(
            self._event_stream(self.bindings, tick_times),
            self.hosts,
            self._final_event_time(tick_times),
            on_tick,
        )
        self._finalize()
        return self._collect_result(cap_history)

    def _run_eager(self) -> DatacenterResult:
        """The original PR 1 loop: advance *every* host at *every* event.

        O(events × machines); kept (modulo routing control decisions
        through the shared control plane) as the baseline the
        :mod:`repro.bench` harness measures the lazy scheduler against.
        """
        tick_times = self._tick_times()
        cap_history = self._begin_run()
        heap: list[tuple[float, int, int, InstanceBinding | None]] = []
        seq = 0
        for binding in self.bindings:
            for arrival in binding.tenant.trace.arrivals:
                heap.append((arrival, seq, _ARRIVAL, binding))
                seq += 1
        for tick in tick_times:
            heap.append((tick, seq, _BARRIER, None))
            seq += 1
        heapq.heapify(heap)

        while heap:
            now = heap[0][0]
            for host in self.hosts:
                self._advance(host, now)
            while heap and heap[0][0] <= now + 1e-12:
                _, _, kind, binding = heapq.heappop(heap)
                if kind == _ARRIVAL:
                    if binding is None:
                        raise EngineError("arrival event lost its tenant binding")
                    self._dispatch_arrival(binding, now)
                else:
                    self._control_tick(now, cap_history)

        self._finalize()
        return self._collect_result(cap_history)
