"""Per-tenant billing: energy, QoS-loss, and admission attribution.

At datacenter scale the PowerDial trade — QoS for power — is only
meaningful if every watt-second and every unit of lost quality can be
attributed to the tenant that caused it.  This module is the metering
layer behind :attr:`~repro.datacenter.engine.DatacenterResult.bills`:

* **Energy** — the engine charges each tenant the *exact* increase of
  its host machine's integrated meter energy across every
  :meth:`~repro.core.runtime.PowerDialRuntime.step` it executes.  The
  machine meter already integrates the full-system power curve across
  DVFS changes (arbiter reallocations never span an unsettled interval
  — every host settles to the barrier instant before caps move), so a
  tenant is billed at the wattage that actually prevailed while it held
  the machine, including any race-to-idle tail its own actuation plan
  scheduled inside the step.  Idle intervals settled by the engine's
  lazy ``idle_until`` belong to no tenant and accumulate as
  *unattributed idle energy* per machine; by construction

      sum(per-tenant billed joules) + sum(unattributed idle joules)
          == total metered pool energy

  up to float-summation reordering (the engine's conservation check
  bounds the relative error at 1e-9).

* **QoS loss** — the paper's Eq. 9–11 actuator trades heart-rate
  speedup for output distortion; the billed quantity is that distortion
  integrated over wall time: ``sum(qos_loss(active setting) * dt)``
  over the tenant's heartbeat intervals, in loss-seconds.  A tenant
  that rode out a power cap on its dynamic knobs shows the deficit
  here; a knob-poor tenant shows it as latency instead.

* **Admission rejections** — arrivals shed by the tenant's queue bound,
  straight from :class:`~repro.datacenter.tenants.TenantStats`.

Determinism: ledgers accumulate identical floats in identical order on
the serial and sharded backends (a shard worker replays exactly the
step sequence the serial scheduler would run on its machines), so bills
are byte-identical across backends — pinned by the parity tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.core.runtime import RunResult
from repro.datacenter.tenants import TenantReport

__all__ = [
    "BillingError",
    "CONSERVATION_TOLERANCE",
    "TenantLedger",
    "TenantBill",
    "qos_loss_seconds",
    "compose_bill",
    "conservation_summary",
]

CONSERVATION_TOLERANCE = 1e-9
"""Max tolerated relative error of billed + idle vs metered energy.

The invariant's contract, owned here next to the accounting that
defines it: the bench harness hard-fails timed runs against it, and the
tests/examples assert it.  Observed errors are float-summation noise
(~1e-16), so this bound has orders of magnitude of slack.
"""


class BillingError(ValueError):
    """Raised for invalid metering input or inconsistent accounting."""


@dataclass
class TenantLedger:
    """Mutable per-tenant meter the engine charges while it schedules.

    One ledger rides on each
    :class:`~repro.datacenter.engine.InstanceBinding`; the engine calls
    :meth:`charge` with the machine-meter energy delta and clock delta
    of every ``step()`` it dispatches for that tenant (on whichever
    backend executed the step).

    Attributes:
        energy_joules: Watt-seconds of machine energy attributed so far.
        busy_seconds: Machine-clock seconds the tenant's steps consumed.
        steps: Number of ``step()`` dispatches charged (starved steps
            charge zero energy and zero time but still count).
    """

    energy_joules: float = 0.0
    busy_seconds: float = 0.0
    steps: int = 0

    def charge(self, energy_joules: float, seconds: float) -> None:
        """Attribute one step's metered energy and machine time.

        Both deltas come from monotone counters (integrated meter
        energy, the machine clock), so negative values indicate a
        metering bug and raise :class:`BillingError`.
        """
        if energy_joules < 0.0:
            raise BillingError(
                f"cannot charge negative energy {energy_joules!r} J"
            )
        if seconds < 0.0:
            raise BillingError(f"cannot charge negative time {seconds!r} s")
        self.energy_joules += energy_joules
        self.busy_seconds += seconds
        self.steps += 1


@dataclass(frozen=True)
class TenantBill:
    """One tenant's end-of-scenario bill.

    Attributes:
        tenant: Tenant name.
        machine_index: The machine the tenant's instance ran on.
        offered: Arrivals the trace offered.
        admitted: Arrivals accepted by admission control.
        rejected: Arrivals shed by the queue bound.
        completed: Requests fully served.
        busy_seconds: Machine-clock seconds attributed to the tenant's
            steps (co-resident tenants split their shared machine's
            time; idle gaps belong to nobody).
        energy_joules: Watt-seconds of metered machine energy
            attributed to those steps.
        qos_loss_seconds: Eq. 9–11 output distortion integrated over
            wall time (loss-seconds); see :func:`qos_loss_seconds`.
        mean_qos_loss: ``qos_loss_seconds`` divided by the tenant's
            first-to-last-beat span (0 when it never beat twice).
        attainment: Fraction of completed requests within the SLA bound.
        sla_met: Whether attainment reached the SLA target.
    """

    tenant: str
    machine_index: int
    offered: int
    admitted: int
    rejected: int
    completed: int
    busy_seconds: float
    energy_joules: float
    qos_loss_seconds: float
    mean_qos_loss: float
    attainment: float
    sla_met: bool

    def to_dict(self) -> dict[str, Any]:
        """The bill as a JSON-ready plain dict (field name -> value)."""
        return asdict(self)


def qos_loss_seconds(run: RunResult) -> float:
    """Integrate Eq. 9–11 QoS loss over a run's heartbeat intervals.

    A beat's timestamp marks the *start* of its item's execution (the
    runtime applies the setting, records the heartbeat, then executes),
    so the interval ``(t[i], t[i+1]]`` ran under ``settings[i]`` and is
    weighted by that setting's QoS loss.  The result is in
    loss-seconds: a tenant served exactly (baseline setting) integrates
    0 regardless of runtime; one served at a degraded setting accrues
    loss proportional to how long the degradation lasted.  The final
    item's tail beyond the last beat has no closing timestamp in the
    samples and is excluded — identically on every backend.
    """
    samples = run.samples
    settings = run.settings_used
    if len(samples) != len(settings):
        raise BillingError(
            f"run has {len(samples)} samples but {len(settings)} settings"
        )
    total = 0.0
    for index in range(len(samples) - 1):
        dt = samples[index + 1].time - samples[index].time
        total += settings[index].qos_loss * dt
    return total


def compose_bill(
    machine_index: int,
    report: TenantReport,
    ledger: TenantLedger,
    run: RunResult | Sequence[RunResult],
) -> TenantBill:
    """Assemble one tenant's :class:`TenantBill` from the run artifacts.

    ``run`` is a single :class:`RunResult` or, for a tenant the control
    plane migrated, its per-host run segments: QoS loss integrates and
    heartbeat spans sum *per segment*, so the clock discontinuity of a
    migration (machines keep independent virtual clocks) is never
    weighted by a knob setting.  ``machine_index`` is the tenant's
    final placement.

    Pure function of its inputs: the serial backend calls it in
    ``_collect_result`` and the sharded parent calls it on the
    reassembled worker payloads, so identical inputs yield bit-identical
    bills on both backends.
    """
    segments: Sequence[RunResult]
    if isinstance(run, RunResult):
        segments = (run,)
    else:
        segments = tuple(run)
        if not segments:
            raise BillingError("cannot bill an empty run-segment list")
    loss_seconds = 0.0
    span = 0.0
    for segment in segments:
        loss_seconds += qos_loss_seconds(segment)
        if len(segment.samples) >= 2:
            span += segment.samples[-1].time - segment.samples[0].time
    return TenantBill(
        tenant=report.name,
        machine_index=machine_index,
        offered=report.offered,
        admitted=report.admitted,
        rejected=report.rejected,
        completed=report.completed,
        busy_seconds=ledger.busy_seconds,
        energy_joules=ledger.energy_joules,
        qos_loss_seconds=loss_seconds,
        mean_qos_loss=loss_seconds / span if span > 0.0 else 0.0,
        attainment=report.attainment,
        sla_met=report.sla_met,
    )


def conservation_summary(
    bills: Sequence[TenantBill],
    idle_energy_joules: Sequence[float],
    total_energy_joules: float,
) -> dict[str, float]:
    """Energy-conservation accounting for a finished scenario.

    Returns a JSON-ready dict with the billed total, the unattributed
    idle total, the metered pool total, and ``rel_error`` — the
    relative mismatch between ``billed + idle`` and the metered total,
    which float-summation reordering keeps far below 1e-9.
    """
    billed = sum(bill.energy_joules for bill in bills)
    idle = sum(idle_energy_joules)
    if total_energy_joules > 0.0:
        rel_error = abs(billed + idle - total_energy_joules) / total_energy_joules
    else:
        rel_error = abs(billed + idle)
    return {
        "billed_energy_joules": billed,
        "unattributed_idle_joules": idle,
        "total_energy_joules": total_energy_joules,
        "rel_error": rel_error,
    }
