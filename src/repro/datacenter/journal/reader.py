"""Read a run journal back into typed records.

Line-by-line NDJSON parsing with errors that name the journal path,
the line number, and the record kind — a truncated *final* line (the
classic crash artifact: the process died mid-write) is tolerated and
dropped, since by construction everything before it is complete.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.datacenter.checkpoint import MachineCheckpoint, TenantCheckpoint
from repro.datacenter.controlplane.actions import (
    Action,
    FailureRecord,
    MigrationRecord,
)
from repro.datacenter.faults import FaultRecord, RetryRecord
from repro.datacenter.journal.codec import (
    JournalDecodeError,
    decode_action,
    decode_failure_record,
    decode_fault_record,
    decode_migration_record,
    decode_retry_record,
    decode_tenant_checkpoint,
    decode_machine_checkpoint,
)
from repro.datacenter.journal.writer import JOURNAL_SCHEMA_VERSION

__all__ = ["BarrierRecord", "Journal", "read_journal"]


@dataclass(frozen=True)
class BarrierRecord:
    """One journaled control barrier, fully decoded.

    Attributes:
        index: Zero-based barrier index (0 is the time-zero barrier).
        time: The barrier's facility time.
        actions: The policy's raw actions, decoded.
        budget_watts: Global budget in force after the barrier.
        caps: Enforced caps after the barrier (None before the first
            ``SetCaps``).
        tenants: Tenant checkpoints keyed by name — *pre-decision*
            state, with completions re-accumulated across barriers.
        machines: Machine checkpoints in pool order (pre-decision).
        migrations: Migrations applied at this barrier.
        failures: Machine failures applied at this barrier.
        faults: Gray faults that first bit at this barrier (sensor /
            actuator / straggler windows and straggler recoveries).
        retries: Applier retry attempts made at this barrier.
    """

    index: int
    time: float
    actions: tuple[Action, ...]
    budget_watts: float | None
    caps: tuple[float, ...] | None
    tenants: dict[str, TenantCheckpoint]
    machines: tuple[MachineCheckpoint, ...]
    migrations: tuple[MigrationRecord, ...]
    failures: tuple[FailureRecord, ...]
    faults: tuple[FaultRecord, ...] = ()
    retries: tuple[RetryRecord, ...] = ()


@dataclass(frozen=True)
class Journal:
    """A fully parsed run journal.

    Attributes:
        path: Where it was read from.
        header: The raw header record (scenario config, versions,
            backend provenance).
        barriers: Every complete barrier record, in time order.
        result: The canonical result payload, or None if the run never
            completed (a crash artifact — resume material).
    """

    path: str
    header: dict[str, Any]
    barriers: tuple[BarrierRecord, ...]
    result: dict[str, Any] | None = field(default=None)

    @property
    def complete(self) -> bool:
        """Whether the journaled run ran to completion."""
        return self.result is not None


def read_journal(path: str) -> Journal:
    """Parse a journal file into a :class:`Journal`.

    Raises :class:`~repro.datacenter.journal.codec.JournalDecodeError`
    naming the path, line, and record kind for malformed content; a
    truncated final line is dropped as a crash artifact.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise JournalDecodeError(f"cannot read journal: {error}", path)

    header: dict[str, Any] | None = None
    barriers: list[BarrierRecord] = []
    previous: dict[str, TenantCheckpoint] = {}
    result: dict[str, Any] | None = None
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        where = f"{path}:{number}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn final write from a crash; drop it
            raise JournalDecodeError("line is not valid JSON", where) from None
        if not isinstance(record, dict):
            raise JournalDecodeError(
                f"expected a JSON object, got {record!r}", where
            )
        kind = record.get("kind")
        if kind == "header":
            if header is not None:
                raise JournalDecodeError("duplicate header record", where)
            version = record.get("journal_schema")
            if version != JOURNAL_SCHEMA_VERSION:
                raise JournalDecodeError(
                    f"schema version {version!r} != supported "
                    f"{JOURNAL_SCHEMA_VERSION}",
                    where,
                )
            header = record
        elif kind == "barrier":
            if header is None:
                raise JournalDecodeError(
                    "barrier record before the header", where
                )
            where = f"{where} (barrier record)"
            try:
                tenants = {}
                for obj in record["tenants"]:
                    checkpoint = decode_tenant_checkpoint(
                        obj, previous.get(obj.get("tenant")), where
                    )
                    tenants[checkpoint.tenant] = checkpoint
                barrier = BarrierRecord(
                    index=record["index"],
                    time=record["time"],
                    actions=tuple(
                        decode_action(obj, where)
                        for obj in record["actions"]
                    ),
                    budget_watts=record["budget_watts"],
                    caps=(
                        None
                        if record["caps"] is None
                        else tuple(record["caps"])
                    ),
                    tenants=tenants,
                    machines=tuple(
                        decode_machine_checkpoint(obj, where)
                        for obj in record["machines"]
                    ),
                    migrations=tuple(
                        decode_migration_record(obj, where)
                        for obj in record["migrations"]
                    ),
                    failures=tuple(
                        decode_failure_record(obj, where)
                        for obj in record["failures"]
                    ),
                    faults=tuple(
                        decode_fault_record(obj, where)
                        for obj in record["faults"]
                    ),
                    retries=tuple(
                        decode_retry_record(obj, where)
                        for obj in record["retries"]
                    ),
                )
            except KeyError as error:
                raise JournalDecodeError(
                    f"missing field {error.args[0]!r}", where
                ) from None
            if barrier.index != len(barriers):
                raise JournalDecodeError(
                    f"barrier index {barrier.index} out of order "
                    f"(expected {len(barriers)})",
                    where,
                )
            barriers.append(barrier)
            previous = barrier.tenants
        elif kind == "result":
            if result is not None:
                raise JournalDecodeError("duplicate result record", where)
            result = record.get("payload")
            if not isinstance(result, dict):
                raise JournalDecodeError(
                    "result record has no payload object", where
                )
        else:
            raise JournalDecodeError(
                f"unknown record kind {kind!r}", where
            )
    if header is None:
        raise JournalDecodeError("no header record", path)
    return Journal(
        path=path,
        header=header,
        barriers=tuple(barriers),
        result=result,
    )
