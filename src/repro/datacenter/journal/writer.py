"""The append-only NDJSON journal writer.

One line per record, flushed as written, so a crash mid-run leaves a
valid journal ending at the last *complete* barrier (barrier records
are written after their actions applied — a crash inside a barrier
never leaves a half-applied record behind).  Record kinds:

``header``
    First line.  Schema and codec versions, the scenario builder and
    its full config (seeds included), backend provenance, and the
    initial budget — everything :func:`repro.datacenter.journal.
    replay.replay` needs to rebuild the run with zero other inputs.
``barrier``
    One per control barrier, in time order: the barrier index and
    time, the policy's raw actions, the applied budget/caps, the
    cluster checkpoint (every tenant's warm state, cursor, and ledger
    delta; every machine's metered state), and this barrier's applied
    migration and failure records.
``result``
    Written once, after the run completes: the canonical
    ``DatacenterResult`` payload replay verifies against.  A journal
    without one is an interrupted run — :func:`~repro.datacenter.
    journal.replay.resume` picks it up from the last barrier.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

from repro.datacenter.journal.codec import (
    CODEC_VERSION,
    JournalError,
    canonical_json,
)

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalWriter",
    "prepare_journal_path",
]

JOURNAL_SCHEMA_VERSION = 2
"""Version of the journal's record layout (kinds and their fields).

Version 2 (the gray-failure layer): barrier records and the result
payload carry ``faults`` / ``retries`` arrays — every injected fault
window and applier retry attempt — and scenario configs may embed a
fault plan.  Version-1 journals are refused rather than replayed
without their faults."""


def prepare_journal_path(path: str) -> None:
    """Validate a journal destination before any simulation time is spent.

    Raises :class:`~repro.datacenter.journal.codec.JournalError` when
    the path is unwritable (missing or read-only parent directory, or
    the path is a directory) or names an existing journal with a
    mismatched schema version — the CLI turns these into an exit code
    of 2 instead of a mid-run traceback.  An existing journal with the
    *current* schema version is allowed and will be overwritten.
    """
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        raise JournalError(
            f"cannot write journal {path!r}: directory {parent!r} does not "
            "exist"
        )
    if os.path.isdir(path):
        raise JournalError(f"cannot write journal {path!r}: is a directory")
    if os.path.exists(path):
        if not os.access(path, os.W_OK):
            raise JournalError(f"cannot write journal {path!r}: not writable")
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if first:
            try:
                header = json.loads(first)
            except json.JSONDecodeError:
                raise JournalError(
                    f"refusing to overwrite {path!r}: existing file is not "
                    "a run journal (first line is not JSON)"
                ) from None
            if (
                not isinstance(header, dict)
                or header.get("kind") != "header"
            ):
                raise JournalError(
                    f"refusing to overwrite {path!r}: existing file is not "
                    "a run journal (no header record)"
                )
            version = header.get("journal_schema")
            if version != JOURNAL_SCHEMA_VERSION:
                raise JournalError(
                    f"journal {path!r} has schema version {version!r}; this "
                    f"build writes version {JOURNAL_SCHEMA_VERSION} — "
                    "replay it with a matching build or choose a new path"
                )
    elif not os.access(parent, os.W_OK):
        raise JournalError(
            f"cannot write journal {path!r}: directory {parent!r} is not "
            "writable"
        )


class JournalWriter:
    """Append-only, per-line-flushed NDJSON journal of one run.

    Opened with the run's header payload (written immediately as the
    first record, stamped with the schema and codec versions); the
    engine then streams one ``barrier`` record per control barrier
    through :meth:`write_record`, and the journal-aware run helper
    appends the final ``result`` record.  Usable as a context manager.
    """

    def __init__(self, path: str, header: Mapping[str, Any]) -> None:
        prepare_journal_path(path)
        self.path = path
        try:
            self._handle = open(path, "w", encoding="utf-8")
        except OSError as error:
            raise JournalError(
                f"cannot write journal {path!r}: {error}"
            ) from error
        self.write_record(
            {
                "kind": "header",
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "codec": CODEC_VERSION,
                **dict(header),
            }
        )

    def write_record(self, record: Mapping[str, Any]) -> None:
        """Append one record as a canonical JSON line and flush it."""
        if self._handle is None:
            raise JournalError(
                f"journal {self.path!r} is closed; cannot append"
            )
        self._handle.write(canonical_json(dict(record)) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        """Context-manager entry: the open writer itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the journal."""
        self.close()
