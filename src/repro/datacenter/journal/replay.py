"""Re-execute, resume, and verify runs from their journals.

Three consumers of :func:`~repro.datacenter.journal.reader.read_journal`
live here:

* :func:`replay` — rebuild the engine from the journal header's
  scenario config (zero other inputs), re-issue the journaled actions
  at every barrier, and assert the fresh
  :class:`~repro.datacenter.engine.DatacenterResult` matches the
  journaled one byte for byte (invariant 7: every run is a pure
  function of its journal).
* :func:`resume` — finish a run whose journal ends mid-run (a crash
  left no ``result`` record).  The scenario re-executes under the
  *live* policy with every journaled barrier attested: the re-decided
  actions must match the journal's raw actions, and at the last
  journaled barrier the freshly captured cluster checkpoint — warm
  :class:`~repro.core.runtime.RuntimeSnapshot`\\ s included — must
  match the journaled one, proving the run passed through exactly the
  state the crash interrupted.
* :func:`journaled_run` — the recording half: attach a writer, run,
  and append the canonical result record that :func:`replay` verifies
  against.

Scenario configs name a *builder* registered via
:func:`register_scenario_builder`; the header also records the
builder's defining module so a fresh process can import it on demand.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import asdict
from typing import Any, Callable, Mapping

from repro.datacenter.engine import DatacenterEngine, DatacenterResult
from repro.datacenter.journal.codec import (
    JournalError,
    canonical_json,
    encode_action,
    encode_bill,
    encode_failure_record,
    encode_fault_record,
    encode_migration_record,
    encode_retry_record,
    encode_tenant_checkpoint,
)
from repro.datacenter.journal.reader import Journal, read_journal
from repro.datacenter.journal.writer import JournalWriter

__all__ = [
    "SCENARIO_BUILDERS",
    "register_scenario_builder",
    "build_engine_from_header",
    "ReplayPolicy",
    "result_payload",
    "journaled_run",
    "replay",
    "resume",
]

SCENARIO_BUILDERS: dict[str, Callable[..., DatacenterEngine]] = {}
"""Registered scenario builders, by the name journal headers record."""


def register_scenario_builder(
    name: str, builder: Callable[..., DatacenterEngine]
) -> None:
    """Register a scenario builder for journal replay.

    ``builder(config, backend=..., workers=..., journal=...)`` must
    rebuild a fresh engine from the plain-data ``config`` the journal
    header stores.  Registration is idempotent for the same callable;
    re-registering a name with a *different* callable raises
    :class:`~repro.datacenter.journal.codec.JournalError` (a silent
    swap would make old journals replay the wrong scenario).
    """
    existing = SCENARIO_BUILDERS.get(name)
    if existing is not None and existing is not builder:
        raise JournalError(
            f"scenario builder {name!r} is already registered to a "
            "different callable"
        )
    SCENARIO_BUILDERS[name] = builder


def build_engine_from_header(
    header: Mapping[str, Any],
    backend: str | None = None,
    workers: int | None = None,
    journal=None,
    step_mode: str = "scalar",
) -> DatacenterEngine:
    """Rebuild a journaled run's engine from its header alone.

    Looks the header's scenario builder up in the registry, importing
    the recorded defining module first if needed (modules register
    their builders at import time).  ``backend``/``workers`` override
    the recorded ones — replay is backend-independent by construction,
    so any backend must reproduce the same result.  ``step_mode``
    likewise stays a caller choice, never a header field: the batched
    kernel is bit-equal to scalar, so a journal recorded either way
    replays under either kernel.
    """
    scenario = header.get("scenario")
    if not isinstance(scenario, Mapping):
        raise JournalError(
            "journal header has no scenario section; cannot rebuild the run"
        )
    for key in ("builder", "module", "config"):
        if key not in scenario:
            raise JournalError(
                f"journal header's scenario section is missing {key!r}"
            )
    name = scenario["builder"]
    if name not in SCENARIO_BUILDERS:
        try:
            importlib.import_module(scenario["module"])
        except ImportError as error:
            raise JournalError(
                f"cannot import scenario module {scenario['module']!r} "
                f"for builder {name!r}: {error}"
            ) from error
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise JournalError(
            f"scenario builder {name!r} is not registered (module "
            f"{scenario['module']!r} imported but did not register it)"
        )
    return builder(
        scenario["config"],
        backend=backend if backend is not None else "serial",
        workers=workers,
        journal=journal,
        step_mode=step_mode,
    )


class ReplayPolicy:
    """A control policy that re-issues a journal's recorded actions.

    Replaces the live policy during :func:`replay`: at every barrier it
    returns exactly the raw actions the journal recorded, after
    asserting the barrier arrived at the journaled instant.  Declares
    ``may_fail_machines`` so the engine keeps checkpointing — replayed
    ``FailMachine`` actions restore victims from the same-barrier
    checkpoints just as the recorded run did.
    """

    may_fail_machines = True

    def __init__(self, journal: Journal) -> None:
        self._journal = journal
        self._cursor = 0

    def initial_budget_watts(self) -> float | None:
        """The recorded initial budget."""
        return self._journal.header.get("initial_budget_watts")

    def barrier_times(self, horizon: float) -> tuple[float, ...]:
        """Every journaled barrier instant (time zero is implicit)."""
        return tuple(
            barrier.time
            for barrier in self._journal.barriers
            if barrier.time > 0.0
        )

    def decide(self, view) -> list:
        """Return the journaled actions for the next barrier."""
        barriers = self._journal.barriers
        if self._cursor >= len(barriers):
            raise JournalError(
                f"replay reached barrier {self._cursor} at t={view.time!r} "
                f"but the journal records only {len(barriers)} barriers"
            )
        barrier = barriers[self._cursor]
        if view.time != barrier.time:
            raise JournalError(
                f"replay barrier {self._cursor} arrived at t={view.time!r} "
                f"but the journal records t={barrier.time!r}"
            )
        self._cursor += 1
        return list(barrier.actions)


def _hex(value: float | None) -> str:
    """Lossless float token for the sample digest (None-safe)."""
    return "none" if value is None else float(value).hex()


def result_payload(result: DatacenterResult) -> dict[str, Any]:
    """A :class:`DatacenterResult` as the canonical JSON result record.

    Everything scalar is encoded through the shared codec; the
    per-heartbeat run samples (thousands of floats per tenant) are
    folded into a SHA-256 digest over their exact ``float.hex`` forms,
    so the record stays small while still pinning every sample bit.
    """
    digest = hashlib.sha256()
    for name in sorted(result.run_results):
        run = result.run_results[name]
        digest.update(name.encode("utf-8"))
        digest.update(
            f"|{_hex(run.energy_joules)}|{_hex(run.elapsed)}\n".encode("utf-8")
        )
        for sample in run.samples:
            digest.update(
                "|".join(
                    (
                        str(sample.beat),
                        _hex(sample.time),
                        _hex(sample.window_rate),
                        _hex(sample.normalized_performance),
                        _hex(sample.knob_gain),
                        _hex(sample.commanded_speedup),
                        _hex(sample.frequency_ghz),
                    )
                ).encode("utf-8")
                + b"\n"
            )
    return {
        "bills": [encode_bill(bill) for bill in result.bills],
        "tenant_reports": [asdict(report) for report in result.tenant_reports],
        "cap_history": [
            [time, list(caps)] for time, caps in result.cap_history
        ],
        "budget_history": [
            [time, watts] for time, watts in result.budget_history
        ],
        "migrations": [
            encode_migration_record(record) for record in result.migrations
        ],
        "failures": [
            encode_failure_record(record) for record in result.failures
        ],
        "faults": [
            encode_fault_record(record) for record in result.faults
        ],
        "retries": [
            encode_retry_record(record) for record in result.retries
        ],
        "idle_energy_joules": list(result.idle_energy_joules),
        "machine_mean_power": list(result.machine_mean_power),
        "total_energy_joules": result.total_energy_joules,
        "makespan": result.makespan,
        "budget_watts": result.budget_watts,
        "samples_digest": digest.hexdigest(),
    }


def journaled_run(engine: DatacenterEngine, writer: JournalWriter):
    """Run ``engine`` with ``writer`` attached and record the result.

    The recording half of the replay contract: barrier records stream
    out as the run executes, and the closing ``result`` record pins the
    canonical payload :func:`replay` verifies against.
    """
    engine.journal = writer
    engine._checkpointing = True
    result = engine.run()
    writer.write_record({"kind": "result", "payload": result_payload(result)})
    return result


def _diff_payloads(
    fresh: Mapping[str, Any], recorded: Mapping[str, Any]
) -> str:
    """Name the first result field whose canonical bytes differ."""
    for key in sorted(set(fresh) | set(recorded)):
        if canonical_json(fresh.get(key)) != canonical_json(recorded.get(key)):
            return key
    return "<none>"


def replay(
    path: str,
    backend: str | None = None,
    workers: int | None = None,
    step_mode: str = "scalar",
) -> DatacenterResult:
    """Re-execute a journaled run and assert byte-exact reproduction.

    The engine is rebuilt from the journal header's scenario config
    (no other inputs), driven by a :class:`ReplayPolicy` that re-issues
    the recorded actions, and the fresh result's canonical payload is
    compared byte-for-byte against the journal's ``result`` record —
    raising :class:`~repro.datacenter.journal.codec.JournalError`
    naming the first differing field on any mismatch.  ``backend``
    defaults to serial regardless of how the run was recorded; parity
    across backends means any choice must reproduce the same bytes.
    """
    journal = read_journal(path)
    if not journal.complete:
        raise JournalError(
            f"journal {path!r} records an interrupted run (no result "
            "record); use resume() to finish it"
        )
    engine = build_engine_from_header(
        journal.header, backend=backend, workers=workers, step_mode=step_mode
    )
    engine.policy = ReplayPolicy(journal)
    engine._checkpointing = True
    result = engine.run()
    payload = result_payload(result)
    if canonical_json(payload) != canonical_json(journal.result):
        raise JournalError(
            f"replay of {path!r} diverged from the journaled result: "
            f"field {_diff_payloads(payload, journal.result)!r} differs"
        )
    return result


class _AttestingPolicy:
    """The live policy, with every journaled barrier cross-checked.

    Used by :func:`resume`: barriers within the journaled prefix must
    re-decide exactly the recorded raw actions (control decisions are
    pure functions of the view, so any divergence means the scenario
    config and the journal disagree), and at the last journaled barrier
    the freshly captured tenant checkpoints must byte-match the
    journaled ones — warm runtime snapshots included.
    """

    may_fail_machines = True

    def __init__(self, inner, journal: Journal) -> None:
        self._inner = inner
        self._journal = journal
        self._cursor = 0
        self._engine: DatacenterEngine | None = None

    def attach(self, engine: DatacenterEngine) -> None:
        """Give the attestor the engine whose checkpoints it verifies."""
        self._engine = engine

    def initial_budget_watts(self) -> float | None:
        """Delegates to the live policy."""
        return self._inner.initial_budget_watts()

    def barrier_times(self, horizon: float):
        """Delegates to the live policy."""
        return self._inner.barrier_times(horizon)

    @property
    def attested_barriers(self) -> int:
        """How many journaled barriers have been verified so far."""
        return min(self._cursor, len(self._journal.barriers))

    def decide(self, view) -> list:
        """Live decision, attested against the journal's prefix."""
        actions = list(self._inner.decide(view))
        barriers = self._journal.barriers
        if self._cursor < len(barriers):
            barrier = barriers[self._cursor]
            if view.time != barrier.time:
                raise JournalError(
                    f"resume: live barrier {self._cursor} arrived at "
                    f"t={view.time!r} but the journal records "
                    f"t={barrier.time!r}"
                )
            live = [encode_action(action) for action in actions]
            recorded = [encode_action(action) for action in barrier.actions]
            if canonical_json(live) != canonical_json(recorded):
                raise JournalError(
                    f"resume: the live policy diverged from the journal at "
                    f"barrier {self._cursor} (t={view.time!r}); the journal "
                    "does not belong to this scenario config"
                )
            if self._cursor == len(barriers) - 1:
                self._attest_checkpoints(barrier)
        self._cursor += 1
        return actions

    def _attest_checkpoints(self, barrier) -> None:
        """Byte-compare live cluster state against the crash barrier."""
        engine = self._engine
        if engine is None or engine._last_checkpoints is None:
            raise JournalError(
                "resume: no live checkpoints to attest against the journal "
                "(engine not checkpointing?)"
            )
        for name, recorded in barrier.tenants.items():
            fresh = engine._last_checkpoints.get(name)
            if fresh is None:
                raise JournalError(
                    f"resume: journaled tenant {name!r} is missing from the "
                    "live run"
                )
            if canonical_json(encode_tenant_checkpoint(fresh)) != (
                canonical_json(encode_tenant_checkpoint(recorded))
            ):
                raise JournalError(
                    f"resume: tenant {name!r}'s live state at the crash "
                    f"barrier (t={barrier.time!r}) does not match the "
                    "journaled checkpoint"
                )


def resume(
    path: str,
    backend: str | None = None,
    workers: int | None = None,
    journal_path: str | None = None,
    step_mode: str = "scalar",
) -> DatacenterResult:
    """Finish a crashed run from its journal, attesting the prefix.

    The scenario re-executes deterministically under its *live* policy
    (rebuilt from the journal header's config, chaos seeds included);
    every barrier the journal recorded is attested — re-decided actions
    must match the recorded ones, and the cluster checkpoint at the
    last journaled barrier must byte-match the journal's, warm runtime
    snapshots included — before the run continues past the crash point
    to completion.  Because re-execution is exact, the resumed result's
    bills are identical to what the uncrashed run would have produced,
    and billing conservation holds to the usual tolerance.

    ``journal_path`` optionally records a fresh, complete journal of
    the resumed run (it may equal ``path`` only on filesystems where
    the old journal has been fully read first — it has: reading happens
    before the writer truncates).
    """
    journal = read_journal(path)
    writer: JournalWriter | None = None
    if journal_path is not None:
        header = {
            key: value
            for key, value in journal.header.items()
            if key not in ("kind", "journal_schema", "codec")
        }
        writer = JournalWriter(journal_path, header)
    try:
        engine = build_engine_from_header(
            journal.header,
            backend=backend,
            workers=workers,
            journal=writer,
            step_mode=step_mode,
        )
        attestor = _AttestingPolicy(engine.policy, journal)
        attestor.attach(engine)
        engine.policy = attestor
        engine._checkpointing = True
        result = engine.run()
        if attestor.attested_barriers < len(journal.barriers):
            raise JournalError(
                f"resume: the live run held {attestor.attested_barriers} "
                f"barriers but the journal records {len(journal.barriers)} "
                "— the scenario config does not match the journal"
            )
        if writer is not None:
            writer.write_record(
                {"kind": "result", "payload": result_payload(result)}
            )
        return result
    finally:
        if writer is not None:
            writer.close()
