"""The one versioned JSON codec for control-plane and journal data.

Every serialized control-plane object in the repo — journal records,
the ``--bill`` CLI document, and any future telemetry stream — goes
through this module, so there is exactly one wire format to version.
Encoding is *canonical*: `sort_keys` plus minimal separators, floats
via Python's shortest-repr (which round-trips every IEEE-754 double
exactly), so ``encode(decode(encode(x))) == encode(x)`` byte for byte
— the property the journal's replay guarantee rests on.

Decode errors raise :class:`JournalDecodeError` naming the offending
record (and, via the reader, its line number) instead of surfacing a
bare ``KeyError`` from deep inside the engine.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.core.runtime import RuntimeSnapshot
from repro.datacenter.billing import TenantBill
from repro.datacenter.checkpoint import MachineCheckpoint, TenantCheckpoint
from repro.datacenter.controlplane.actions import (
    Action,
    FailMachine,
    FailureRecord,
    Migrate,
    MigrationRecord,
    SetBudget,
    SetCaps,
)
from repro.datacenter.faults import FaultRecord, RetryRecord
from repro.heartbeats.api import HeartbeatWindowState

__all__ = [
    "CODEC_VERSION",
    "JournalError",
    "JournalDecodeError",
    "canonical_json",
    "encode_action",
    "decode_action",
    "encode_migration_record",
    "decode_migration_record",
    "encode_failure_record",
    "decode_failure_record",
    "encode_fault_record",
    "decode_fault_record",
    "encode_retry_record",
    "decode_retry_record",
    "encode_snapshot",
    "decode_snapshot",
    "encode_tenant_checkpoint",
    "decode_tenant_checkpoint",
    "encode_machine_checkpoint",
    "decode_machine_checkpoint",
    "encode_bill",
    "decode_bill",
]

CODEC_VERSION = 1
"""Version of the JSON wire format this module reads and writes."""


class JournalError(RuntimeError):
    """Raised for journal I/O, schema, or replay-contract violations."""


class JournalDecodeError(JournalError):
    """A malformed record, naming what and where it is.

    Attributes:
        where: Human-readable locator — the record kind, and (when
            decoded by the reader) the journal path and line number.
    """

    def __init__(self, message: str, where: str = "") -> None:
        self.where = where
        super().__init__(f"{where}: {message}" if where else message)


def canonical_json(obj: Any) -> str:
    """Serialize to the codec's canonical byte form (one line, no NL).

    Sorted keys, minimal separators, shortest-repr floats: encoding
    the same values always yields the same bytes, and every finite
    float survives a decode/encode round trip exactly.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _require(obj: Mapping[str, Any], key: str, where: str) -> Any:
    if not isinstance(obj, Mapping):
        raise JournalDecodeError(f"expected an object, got {obj!r}", where)
    if key not in obj:
        raise JournalDecodeError(f"missing field {key!r}", where)
    return obj[key]


def encode_action(action: Action) -> dict[str, Any]:
    """One control action as a type-tagged JSON object."""
    if isinstance(action, SetCaps):
        return {"type": "set_caps", "caps": [float(c) for c in action.caps]}
    if isinstance(action, SetBudget):
        return {"type": "set_budget", "budget_watts": action.budget_watts}
    if isinstance(action, Migrate):
        return {
            "type": "migrate",
            "tenant": action.tenant,
            "dest_machine_index": action.dest_machine_index,
            "cost_seconds": action.cost_seconds,
            "warm": action.warm,
        }
    if isinstance(action, FailMachine):
        return {"type": "fail_machine", "machine_index": action.machine_index}
    raise JournalError(f"cannot encode unknown control action {action!r}")


def decode_action(obj: Mapping[str, Any], where: str = "action") -> Action:
    """The inverse of :func:`encode_action`, with actionable errors."""
    kind = _require(obj, "type", where)
    if kind == "set_caps":
        return SetCaps(caps=tuple(_require(obj, "caps", where)))
    if kind == "set_budget":
        return SetBudget(budget_watts=_require(obj, "budget_watts", where))
    if kind == "migrate":
        return Migrate(
            tenant=_require(obj, "tenant", where),
            dest_machine_index=_require(obj, "dest_machine_index", where),
            cost_seconds=_require(obj, "cost_seconds", where),
            warm=_require(obj, "warm", where),
        )
    if kind == "fail_machine":
        return FailMachine(machine_index=_require(obj, "machine_index", where))
    raise JournalDecodeError(f"unknown action type {kind!r}", where)


def encode_migration_record(record: MigrationRecord) -> dict[str, Any]:
    """One applied migration as a JSON object."""
    return {
        "time": record.time,
        "tenant": record.tenant,
        "source_machine_index": record.source_machine_index,
        "dest_machine_index": record.dest_machine_index,
        "cost_seconds": record.cost_seconds,
        "warm": record.warm,
    }


def decode_migration_record(
    obj: Mapping[str, Any], where: str = "migration record"
) -> MigrationRecord:
    """The inverse of :func:`encode_migration_record`."""
    return MigrationRecord(
        time=_require(obj, "time", where),
        tenant=_require(obj, "tenant", where),
        source_machine_index=_require(obj, "source_machine_index", where),
        dest_machine_index=_require(obj, "dest_machine_index", where),
        cost_seconds=_require(obj, "cost_seconds", where),
        warm=_require(obj, "warm", where),
    )


def encode_failure_record(record: FailureRecord) -> dict[str, Any]:
    """One applied machine failure (with its re-placements) as JSON."""
    return {
        "time": record.time,
        "machine_index": record.machine_index,
        "replacements": [
            encode_migration_record(r) for r in record.replacements
        ],
    }


def decode_failure_record(
    obj: Mapping[str, Any], where: str = "failure record"
) -> FailureRecord:
    """The inverse of :func:`encode_failure_record`."""
    return FailureRecord(
        time=_require(obj, "time", where),
        machine_index=_require(obj, "machine_index", where),
        replacements=tuple(
            decode_migration_record(r, where)
            for r in _require(obj, "replacements", where)
        ),
    )


def encode_fault_record(record: FaultRecord) -> dict[str, Any]:
    """One injected gray fault as a JSON object."""
    return {
        "time": record.time,
        "kind": record.kind,
        "machine_index": record.machine_index,
        "mode": record.mode,
    }


def decode_fault_record(
    obj: Mapping[str, Any], where: str = "fault record"
) -> FaultRecord:
    """The inverse of :func:`encode_fault_record`."""
    return FaultRecord(
        time=_require(obj, "time", where),
        kind=_require(obj, "kind", where),
        machine_index=_require(obj, "machine_index", where),
        mode=_require(obj, "mode", where),
    )


def encode_retry_record(record: RetryRecord) -> dict[str, Any]:
    """One applier retry attempt as a JSON object."""
    return {
        "time": record.time,
        "machine_index": record.machine_index,
        "target_watts": record.target_watts,
        "applied_watts": record.applied_watts,
        "attempt": record.attempt,
        "outcome": record.outcome,
    }


def decode_retry_record(
    obj: Mapping[str, Any], where: str = "retry record"
) -> RetryRecord:
    """The inverse of :func:`encode_retry_record`."""
    return RetryRecord(
        time=_require(obj, "time", where),
        machine_index=_require(obj, "machine_index", where),
        target_watts=_require(obj, "target_watts", where),
        applied_watts=_require(obj, "applied_watts", where),
        attempt=_require(obj, "attempt", where),
        outcome=_require(obj, "outcome", where),
    )


def _encode_opaque(value: Any) -> Any:
    """Encode an opaque scalar tree (controller state) tuple-as-list."""
    if isinstance(value, (list, tuple)):
        return [_encode_opaque(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise JournalError(
        f"cannot encode opaque controller state containing {value!r}"
    )


def _decode_opaque(value: Any) -> Any:
    """Decode an opaque scalar tree, lists back to tuples."""
    if isinstance(value, list):
        return tuple(_decode_opaque(v) for v in value)
    return value


def encode_snapshot(snapshot: RuntimeSnapshot | None) -> dict[str, Any] | None:
    """A warm :class:`RuntimeSnapshot` as JSON (None stays None)."""
    if snapshot is None:
        return None
    window = snapshot.window
    return {
        "controller_state": _encode_opaque(snapshot.controller_state),
        "plan_speedup": snapshot.plan_speedup,
        "window": {
            "count": window.count,
            "last_timestamp": window.last_timestamp,
            "intervals": list(window.intervals),
            "window_sum": window.window_sum,
        },
        "beats_in_quantum": snapshot.beats_in_quantum,
        "quantum_start": snapshot.quantum_start,
        "taken_at": snapshot.taken_at,
    }


def decode_snapshot(
    obj: Mapping[str, Any] | None, where: str = "snapshot"
) -> RuntimeSnapshot | None:
    """The inverse of :func:`encode_snapshot`."""
    if obj is None:
        return None
    window_obj = _require(obj, "window", where)
    window = HeartbeatWindowState(
        count=_require(window_obj, "count", where),
        last_timestamp=window_obj.get("last_timestamp"),
        intervals=tuple(_require(window_obj, "intervals", where)),
        window_sum=_require(window_obj, "window_sum", where),
    )
    return RuntimeSnapshot(
        controller_state=_decode_opaque(
            _require(obj, "controller_state", where)
        ),
        plan_speedup=obj.get("plan_speedup"),
        window=window,
        beats_in_quantum=_require(obj, "beats_in_quantum", where),
        quantum_start=_require(obj, "quantum_start", where),
        taken_at=_require(obj, "taken_at", where),
    )


def encode_tenant_checkpoint(
    checkpoint: TenantCheckpoint,
    previous: TenantCheckpoint | None = None,
) -> dict[str, Any]:
    """One tenant checkpoint as JSON, completions as a delta.

    Completions only ever append, so each barrier records just the
    requests completed since ``previous`` (the same tenant's checkpoint
    at the previous journaled barrier) plus the cumulative count; the
    reader re-accumulates.  The billing ledger is recorded cumulatively
    *and* as this barrier's delta — the delta is what an auditor reads,
    the cumulative values are what a resume restores.
    """
    prior = 0 if previous is None else len(previous.completions)
    if checkpoint.completions[:prior] != (
        () if previous is None else previous.completions
    ):
        raise JournalError(
            f"tenant {checkpoint.tenant!r}: completions are not "
            "append-only against the previous checkpoint"
        )
    return {
        "tenant": checkpoint.tenant,
        "machine_index": checkpoint.machine_index,
        "offered": checkpoint.offered,
        "rejected": checkpoint.rejected,
        "completed_total": len(checkpoint.completions),
        "completions_delta": [
            [arrival, completion]
            for arrival, completion in checkpoint.completions[prior:]
        ],
        "next_request": checkpoint.next_request,
        "pending": [[index, arrival] for index, arrival in checkpoint.pending],
        "ledger": {
            "energy_joules": checkpoint.energy_joules,
            "busy_seconds": checkpoint.busy_seconds,
            "steps": checkpoint.steps,
        },
        "ledger_delta": {
            "energy_joules": checkpoint.energy_joules
            - (0.0 if previous is None else previous.energy_joules),
            "busy_seconds": checkpoint.busy_seconds
            - (0.0 if previous is None else previous.busy_seconds),
            "steps": checkpoint.steps
            - (0 if previous is None else previous.steps),
        },
        "finished": checkpoint.finished,
        "snapshot": encode_snapshot(checkpoint.snapshot),
    }


def decode_tenant_checkpoint(
    obj: Mapping[str, Any],
    previous: TenantCheckpoint | None = None,
    where: str = "tenant checkpoint",
) -> TenantCheckpoint:
    """The inverse of :func:`encode_tenant_checkpoint`.

    ``previous`` supplies the completions accumulated through the
    previous barrier; the record's delta extends them, and the
    cumulative count cross-checks the reconstruction.
    """
    base = () if previous is None else previous.completions
    delta = tuple(
        (arrival, completion)
        for arrival, completion in _require(obj, "completions_delta", where)
    )
    completions = base + delta
    total = _require(obj, "completed_total", where)
    if len(completions) != total:
        raise JournalDecodeError(
            f"completions reconstruct to {len(completions)} entries but the "
            f"record claims {total} (journal barriers missing or reordered?)",
            where,
        )
    ledger = _require(obj, "ledger", where)
    return TenantCheckpoint(
        tenant=_require(obj, "tenant", where),
        machine_index=_require(obj, "machine_index", where),
        offered=_require(obj, "offered", where),
        rejected=_require(obj, "rejected", where),
        completions=completions,
        next_request=_require(obj, "next_request", where),
        pending=tuple(
            (index, arrival)
            for index, arrival in _require(obj, "pending", where)
        ),
        energy_joules=_require(ledger, "energy_joules", where),
        busy_seconds=_require(ledger, "busy_seconds", where),
        steps=_require(ledger, "steps", where),
        finished=_require(obj, "finished", where),
        snapshot=decode_snapshot(obj.get("snapshot"), where),
    )


def encode_machine_checkpoint(checkpoint: MachineCheckpoint) -> dict[str, Any]:
    """One machine checkpoint as JSON."""
    return {
        "index": checkpoint.index,
        "now": checkpoint.now,
        "frequency_ghz": checkpoint.frequency_ghz,
        "energy_joules": checkpoint.energy_joules,
        "idle_energy_joules": checkpoint.idle_energy_joules,
        "mean_power": checkpoint.mean_power,
        "alive": checkpoint.alive,
    }


def decode_machine_checkpoint(
    obj: Mapping[str, Any], where: str = "machine checkpoint"
) -> MachineCheckpoint:
    """The inverse of :func:`encode_machine_checkpoint`."""
    return MachineCheckpoint(
        index=_require(obj, "index", where),
        now=_require(obj, "now", where),
        frequency_ghz=_require(obj, "frequency_ghz", where),
        energy_joules=_require(obj, "energy_joules", where),
        idle_energy_joules=_require(obj, "idle_energy_joules", where),
        mean_power=_require(obj, "mean_power", where),
        alive=_require(obj, "alive", where),
    )


_BILL_FIELDS = (
    "tenant",
    "machine_index",
    "offered",
    "admitted",
    "rejected",
    "completed",
    "busy_seconds",
    "energy_joules",
    "qos_loss_seconds",
    "mean_qos_loss",
    "attainment",
    "sla_met",
)


def encode_bill(bill: TenantBill) -> dict[str, Any]:
    """One :class:`~repro.datacenter.billing.TenantBill` as JSON."""
    return {field: getattr(bill, field) for field in _BILL_FIELDS}


def decode_bill(
    obj: Mapping[str, Any], where: str = "tenant bill"
) -> TenantBill:
    """The inverse of :func:`encode_bill`."""
    return TenantBill(
        **{field: _require(obj, field, where) for field in _BILL_FIELDS}
    )
