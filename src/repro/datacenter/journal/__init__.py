"""Deterministic run journals: record, replay, resume, and audit runs.

Every control barrier of a journaled run appends one NDJSON record —
the policy's raw actions, the applied budget/caps/migrations/failures,
and a full cluster checkpoint (warm runtime snapshots, arrival-stream
cursors, per-barrier billing ledger deltas) — under a header that
captures the complete scenario config, RNG seeds included.  That makes
the journal a *sufficient statistic* for the run (ARCHITECTURE.md
invariant 7): :func:`~repro.datacenter.journal.replay.replay`
re-executes it byte-identically with zero other inputs,
:func:`~repro.datacenter.journal.replay.resume` finishes a crashed run
with the journaled prefix attested barrier-by-barrier, and the chaos
scenarios lean on the same checkpoints to rebuild a dead machine's
tenants on survivors.

Module map:

* :mod:`~repro.datacenter.journal.codec` — the one versioned JSON
  codec every serialized control-plane object goes through (journal
  records, ``--bill`` output); canonical bytes, actionable decode
  errors.
* :mod:`~repro.datacenter.journal.writer` — the append-only,
  per-line-flushed NDJSON writer and destination validation
  (:func:`~repro.datacenter.journal.writer.prepare_journal_path`).
* :mod:`~repro.datacenter.journal.reader` — journal parsing into typed
  :class:`~repro.datacenter.journal.reader.BarrierRecord`\\ s, with
  crash-torn final lines tolerated.
* :mod:`~repro.datacenter.journal.replay` — the three consumers:
  ``replay()``, ``resume()``, and the ``journaled_run()`` recorder,
  plus the scenario-builder registry headers reference.
"""

from repro.datacenter.journal.codec import (
    CODEC_VERSION,
    JournalDecodeError,
    JournalError,
    canonical_json,
    decode_action,
    decode_bill,
    decode_fault_record,
    decode_retry_record,
    encode_action,
    encode_bill,
    encode_fault_record,
    encode_retry_record,
)
from repro.datacenter.journal.reader import (
    BarrierRecord,
    Journal,
    read_journal,
)
from repro.datacenter.journal.replay import (
    ReplayPolicy,
    build_engine_from_header,
    journaled_run,
    register_scenario_builder,
    replay,
    result_payload,
    resume,
)
from repro.datacenter.journal.writer import (
    JOURNAL_SCHEMA_VERSION,
    JournalWriter,
    prepare_journal_path,
)

__all__ = [
    "CODEC_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "JournalDecodeError",
    "JournalError",
    "JournalWriter",
    "BarrierRecord",
    "Journal",
    "ReplayPolicy",
    "build_engine_from_header",
    "canonical_json",
    "decode_action",
    "decode_bill",
    "decode_fault_record",
    "decode_retry_record",
    "encode_action",
    "encode_bill",
    "encode_fault_record",
    "encode_retry_record",
    "journaled_run",
    "prepare_journal_path",
    "read_journal",
    "register_scenario_builder",
    "replay",
    "result_payload",
    "resume",
]
