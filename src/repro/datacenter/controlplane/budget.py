"""Time-varying budgets: schedules of timestamped fleet-wide watt levels.

The paper's §5.4 study imposes one power cap on one machine; a
:class:`BudgetSchedule` generalizes the event to the fleet: a sequence
of ``(time, watts)`` levels — a demand-response trace, a brown-out, a
circuit de-rating — that the control plane applies as
:class:`~repro.datacenter.controlplane.actions.SetBudget` actions at
exactly the scheduled instants (schedule times become control
barriers).

Trace files are plain text, one ``<seconds> <watts>`` pair per line
(``#`` comments and blank lines ignored)::

    # demand-response event: shed 15% for a minute, then recover
    0    600
    30   510
    90   600

Parsing (:func:`parse_budget_trace` / :func:`load_budget_trace`)
reports actionable errors — the offending line, the non-monotonic
timestamp, the watt level below the fleet's enforceable floor — so a
bad trace fails before any simulation time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BudgetTraceError",
    "BudgetSchedule",
    "parse_budget_trace",
    "load_budget_trace",
]


class BudgetTraceError(ValueError):
    """Raised for malformed or unenforceable budget traces."""


@dataclass(frozen=True)
class BudgetSchedule:
    """A step function of fleet-wide budget levels over the run.

    Attributes:
        entries: ``(time_seconds, budget_watts)`` pairs with strictly
            increasing, non-negative times and positive watt levels.
            Between entries the budget holds the last level; before the
            first entry the scenario's base budget applies.
    """

    entries: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        last_time = None
        for index, (time, watts) in enumerate(self.entries):
            if time < 0.0:
                raise BudgetTraceError(
                    f"entry {index}: negative timestamp {time!r}"
                )
            if last_time is not None and time <= last_time:
                raise BudgetTraceError(
                    f"entry {index}: timestamp {time!r} does not increase "
                    f"(previous entry at {last_time!r} s)"
                )
            if watts <= 0.0:
                raise BudgetTraceError(
                    f"entry {index}: budget must be positive, got {watts!r} W"
                )
            last_time = time

    @property
    def times(self) -> tuple[float, ...]:
        """The scheduled change instants, in order."""
        return tuple(time for time, _ in self.entries)

    def budget_at(self, time: float, default: float | None = None) -> float | None:
        """The scheduled budget in force at ``time``.

        Returns the level of the latest entry with timestamp <= ``time``,
        or ``default`` when ``time`` precedes the whole schedule.
        """
        level = default
        for at, watts in self.entries:
            if at > time:
                break
            level = watts
        return level

    def check_floor(self, floor_watts: float) -> None:
        """Reject levels no cap assignment could enforce.

        Every machine stays powered on, so the fleet can never draw
        less than the sum of its per-machine cap floors; a trace level
        below that is a configuration error, reported with the
        offending entry.
        """
        for index, (time, watts) in enumerate(self.entries):
            if watts < floor_watts - 1e-9:
                raise BudgetTraceError(
                    f"entry {index} (t={time:g} s): budget {watts:g} W is "
                    f"below the fleet-wide cap floor {floor_watts:.1f} W "
                    "(machines pinned to their slowest P-state)"
                )


def parse_budget_trace(text: str) -> BudgetSchedule:
    """Parse budget-trace text into a :class:`BudgetSchedule`.

    One ``<seconds> <watts>`` pair per line; ``#`` starts a comment;
    blank lines are skipped.  Raises :class:`BudgetTraceError` naming
    the line for anything else — wrong field count, non-numeric values,
    non-monotonic timestamps.
    """
    entries: list[tuple[float, float]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 2:
            raise BudgetTraceError(
                f"line {line_number}: expected '<seconds> <watts>', "
                f"got {raw.strip()!r}"
            )
        try:
            time, watts = float(fields[0]), float(fields[1])
        except ValueError:
            raise BudgetTraceError(
                f"line {line_number}: non-numeric entry {raw.strip()!r}"
            ) from None
        if entries and time <= entries[-1][0]:
            raise BudgetTraceError(
                f"line {line_number}: timestamp {time:g} s does not increase "
                f"(previous entry at {entries[-1][0]:g} s) — trace "
                "timestamps must be strictly monotonic"
            )
        entries.append((time, watts))
    if not entries:
        raise BudgetTraceError("budget trace is empty (no data lines)")
    return BudgetSchedule(tuple(entries))


def load_budget_trace(path: str | Path) -> BudgetSchedule:
    """Read and parse a budget-trace file; errors name the file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise BudgetTraceError(
            f"cannot read budget trace {str(path)!r}: {error}"
        ) from None
    try:
        return parse_budget_trace(text)
    except BudgetTraceError as error:
        raise BudgetTraceError(f"{path}: {error}") from None
