"""The control plane's shared vocabulary: views in, actions out.

A :class:`ControlPolicy` never touches engine internals.  At every
control barrier it receives an immutable :class:`ClusterView` — the
machines (with their enforceable cap range and current cap), the
resident tenants (placement, SLA shortfall, queue depth, billing-ledger
snapshot), the current global budget, and the barrier time — and
returns a list of typed actions:

* :class:`SetCaps` — per-machine power caps (today's arbiter, now just
  one policy among several);
* :class:`SetBudget` — change the fleet-wide budget mid-run (the §5.4
  cap event fleet-wide: demand-response traces, circuit shocks);
* :class:`Migrate` — move a tenant's instance to another machine when
  moving watts alone cannot help (reallocation hit the cap ceiling);
* :class:`FailMachine` — fault injection: fail-stop one machine at this
  barrier and re-place its tenants from their journaled checkpoints
  (the chaos scenario family).

Every backend (serial, eager, sharded) validates and applies these
actions through the shared applier (:mod:`~repro.datacenter.
controlplane.applier`), which is what keeps results byte-identical
across backends: the *decision* is data, and the *application* is one
code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Union, runtime_checkable

__all__ = [
    "ControlError",
    "MachineView",
    "TenantView",
    "ClusterView",
    "SetCaps",
    "SetBudget",
    "Migrate",
    "FailMachine",
    "Action",
    "MigrationRecord",
    "FailureRecord",
    "ControlPolicy",
]


class ControlError(ValueError):
    """Raised for malformed control-plane views, actions, or plans."""


@dataclass(frozen=True)
class MachineView:
    """One machine as the control plane sees it.

    Attributes:
        index: Position in the engine's machine pool.
        cap_floor: Lowest enforceable cap (full-load power in the
            slowest P-state; machines are never powered off).
        cap_ceiling: Full-load power in the fastest P-state; caps above
            this are slack.
        cap_watts: The currently enforced cap, or ``None`` before the
            first :class:`SetCaps` of the run.
        alive: False once the machine has fail-stopped (chaos
            injection); policies must not migrate tenants onto — or
            expect capacity from — a dead machine.
        health: Telemetry-trust state, one of
            :data:`repro.heartbeats.health.MACHINE_HEALTH_STATES` —
            ``fresh`` (telemetry current), ``stale`` (telemetry aging,
            or the machine is inside its post-quarantine reintegration
            hysteresis window: hold last-known state), ``unresponsive``
            (telemetry past its deadline: quarantine the machine,
            reallocate its watts), or ``dead`` (``alive`` is False).
            Always ``fresh`` on runs without a fault plan.
    """

    index: int
    cap_floor: float
    cap_ceiling: float
    cap_watts: float | None
    alive: bool = True
    health: str = "fresh"


@dataclass(frozen=True)
class TenantView:
    """One tenant's control-relevant state at a barrier.

    Attributes:
        name: Tenant identifier.
        machine_index: Current placement (migrations move this).
        weight: Arbitration priority from the tenant's spec.
        sla_shortfall: ``max(0, attainment_target - recent attainment)``
            over the engine's attainment window; a silent-but-backlogged
            tenant counts as fully violating.
        pending_jobs: Requests queued but not yet started.
        finished: Whether the instance has drained (policies must not
            migrate finished tenants).
        energy_joules: Ledger snapshot — watt-seconds billed so far.
        busy_seconds: Ledger snapshot — machine seconds billed so far.
        steps: Ledger snapshot — ``step()`` dispatches charged so far.
    """

    name: str
    machine_index: int
    weight: float
    sla_shortfall: float
    pending_jobs: int
    finished: bool
    energy_joules: float
    busy_seconds: float
    steps: int


@dataclass(frozen=True)
class ClusterView:
    """Immutable cluster snapshot handed to policies at every barrier.

    Attributes:
        time: The barrier's facility time.
        budget_watts: Current global budget (None when the run is
            uncapped).
        machines: Per-machine cap state, in pool order.
        tenants: Per-tenant state, in engine binding order — policies
            that aggregate over tenants in this order produce the same
            floats on every backend.
    """

    time: float
    budget_watts: float | None
    machines: tuple[MachineView, ...]
    tenants: tuple[TenantView, ...]

    def machine_shortfalls(self) -> list[float]:
        """Aggregate weighted SLA shortfall per machine.

        Sums ``weight * sla_shortfall`` over tenants in view order —
        float-for-float the signal the pre-controlplane engine fed the
        arbiter, so cap allocations are unchanged by the refactor.
        """
        scores = [0.0] * len(self.machines)
        for tenant in self.tenants:
            scores[tenant.machine_index] += tenant.weight * tenant.sla_shortfall
        return scores

    def tenants_on(self, machine_index: int) -> tuple[TenantView, ...]:
        """The tenants currently placed on one machine, in view order."""
        return tuple(
            t for t in self.tenants if t.machine_index == machine_index
        )


@dataclass(frozen=True)
class SetCaps:
    """Enforce per-machine power caps (via DVFS), one per machine.

    Attributes:
        caps: Cap in watts for every machine, in pool order.  The
            applier validates each cap against the machine's
            ``[cap_floor, cap_ceiling]`` range and the sum against the
            current budget before anything is enforced.
    """

    caps: tuple[float, ...]


@dataclass(frozen=True)
class SetBudget:
    """Change the fleet-wide power budget from this barrier onward.

    Attributes:
        budget_watts: The new global budget.  Must cover the pool's
            aggregate cap floor (machines cannot be pushed below their
            slowest P-state's full-load power).
    """

    budget_watts: float


@dataclass(frozen=True)
class Migrate:
    """Move one tenant's instance to another machine.

    Either way the source host finishes the request in flight (metered
    to the tenant as usual), queued-but-unstarted requests move with
    the tenant, and ``cost_seconds`` is charged to the moving tenant's
    billing ledger.  A *cold* move (the default) then starts a fresh
    runtime on the destination — warm controller state is deliberately
    lost.  A *warm* move additionally ships the runtime's full control
    state (controller integrator, actuation-plan cache, heartbeat
    window, quantum phase) as a
    :class:`~repro.core.runtime.RuntimeSnapshot`, so the destination
    resumes at the source's learned power/performance operating point
    instead of re-converging from the baseline.

    Attributes:
        tenant: Name of the tenant to move.
        dest_machine_index: Target machine in the engine's pool.
        cost_seconds: Machine-seconds billed to the tenant's ledger for
            the move (energy is conserved: migration charges time, not
            watt-seconds).
        warm: Whether to carry the runtime's warm control state to the
            destination (live migration) instead of restarting cold.
    """

    tenant: str
    dest_machine_index: int
    cost_seconds: float = 0.0
    warm: bool = False


@dataclass(frozen=True)
class FailMachine:
    """Fail-stop one machine at this barrier (fault injection).

    The machine's meter and clock freeze at the barrier instant (the
    barrier settles every host first, so its books are exact), its cap
    is no longer enforced, and every resident tenant is re-placed onto
    a surviving machine from the checkpoint captured at this same
    barrier — the in-flight request (if any) is lost, queued requests
    and the arrival cursor are rebuilt, and the warm
    :class:`~repro.core.runtime.RuntimeSnapshot` restores the control
    state.  Requires an engine running with barrier checkpoints (a
    journal, or a policy declaring ``may_fail_machines``).

    Attributes:
        machine_index: The machine to kill.  Must currently be alive,
            and at least one machine must survive the barrier.
    """

    machine_index: int


Action = Union[SetCaps, SetBudget, Migrate, FailMachine]
"""Everything a policy may return from :meth:`ControlPolicy.decide`."""


@dataclass(frozen=True)
class MigrationRecord:
    """One applied migration, as recorded in the run result.

    Attributes:
        time: Barrier time the migration was applied at.
        tenant: The tenant that moved.
        source_machine_index: Machine the instance left.
        dest_machine_index: Machine the instance restarted on.
        cost_seconds: Ledger seconds charged for the move.
        warm: Whether the move carried warm control state (live
            migration) or restarted the instance cold.
    """

    time: float
    tenant: str
    source_machine_index: int
    dest_machine_index: int
    cost_seconds: float
    warm: bool = False


@dataclass(frozen=True)
class FailureRecord:
    """One applied machine failure, as recorded in the run result.

    Attributes:
        time: Barrier time the failure was injected at.
        machine_index: The machine that fail-stopped.
        replacements: One :class:`MigrationRecord` per re-placed victim
            tenant (``warm=True``, ``cost_seconds=0.0``; the source is
            the dead machine), in engine binding order.  Kept separate
            from ``DatacenterResult.migrations``, which records policy
            migrations only.
    """

    time: float
    machine_index: int
    replacements: tuple[MigrationRecord, ...] = ()


@runtime_checkable
class ControlPolicy(Protocol):
    """What the engine requires of a pluggable control policy.

    Structural protocol — any object with these three methods plugs
    into ``DatacenterEngine(policy=...)``.  Policies are free to keep
    state (cooldowns, schedules); on the sharded backend the policy
    runs only in the coordinating parent, so state never needs to
    cross process boundaries.
    """

    def initial_budget_watts(self) -> float | None:
        """The budget in force at time zero (None for uncapped runs)."""
        ...

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Extra barrier times (beyond the periodic ticks) to schedule.

        Lets time-triggered policies (budget traces) fire exactly at
        their timestamps instead of waiting for the next periodic tick.
        """
        ...

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Map a cluster snapshot to the actions to apply at a barrier."""
        ...
