"""The pluggable datacenter control plane: policies, actions, budgets.

Control decisions — how the facility budget becomes per-machine caps,
when the budget itself moves, when an instance migrates — used to be
hardwired into the engine's arbiter tick.  This package extracts them
behind one interface: a
:class:`~repro.datacenter.controlplane.actions.ControlPolicy` receives
an immutable
:class:`~repro.datacenter.controlplane.actions.ClusterView` at every
control barrier and returns typed actions (``SetCaps``, ``SetBudget``,
``Migrate``) that every backend validates and applies through the
shared applier — which is what keeps serial, eager, and sharded
results byte-identical, migrations and budget shocks included.

Module map:

* :mod:`~repro.datacenter.controlplane.actions` — views, actions, the
  ``ControlPolicy`` protocol, and migration records.
* :mod:`~repro.datacenter.controlplane.budget` — ``BudgetSchedule``
  and the ``--budget-trace`` file parser with actionable errors.
* :mod:`~repro.datacenter.controlplane.policy` — ``MigratingPolicy``,
  ``ScheduledBudgetPolicy``, and the ``build_policy`` registry behind
  the CLI's ``--policy`` flag.
* :mod:`~repro.datacenter.controlplane.applier` — central validation
  (``plan_actions``), cap enforcement, and the ``emigrate``/``absorb``
  halves of cold migration shared by all backends.
"""

from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    ControlError,
    ControlPolicy,
    FailMachine,
    FailureRecord,
    MachineView,
    Migrate,
    MigrationRecord,
    SetBudget,
    SetCaps,
    TenantView,
)
from repro.datacenter.controlplane.applier import (
    ControlPlan,
    MigrantState,
    RetryState,
    absorb,
    apply_failures,
    emigrate,
    enforce_caps,
    machine_limits,
    merge_run_results,
    migrate_instance,
    plan_actions,
    plan_failures,
    retry_backoff_seconds,
)
from repro.datacenter.controlplane.hierarchy import (
    DEFAULT_GROUPS,
    HierarchicalArbiter,
    round_robin_groups,
)
from repro.datacenter.controlplane.budget import (
    BudgetSchedule,
    BudgetTraceError,
    load_budget_trace,
    parse_budget_trace,
)
from repro.datacenter.controlplane.policy import (
    POLICY_NAMES,
    ChaosPolicy,
    ConsolidatingPolicy,
    DegradedModePolicy,
    MigratingPolicy,
    ScheduledBudgetPolicy,
    build_policy,
    chaos_kill_times,
)

__all__ = [
    "Action",
    "ClusterView",
    "ControlError",
    "ControlPolicy",
    "FailMachine",
    "FailureRecord",
    "MachineView",
    "Migrate",
    "MigrationRecord",
    "SetBudget",
    "SetCaps",
    "TenantView",
    "ControlPlan",
    "MigrantState",
    "RetryState",
    "absorb",
    "apply_failures",
    "emigrate",
    "enforce_caps",
    "machine_limits",
    "merge_run_results",
    "migrate_instance",
    "plan_actions",
    "plan_failures",
    "retry_backoff_seconds",
    "BudgetSchedule",
    "BudgetTraceError",
    "load_budget_trace",
    "parse_budget_trace",
    "DEFAULT_GROUPS",
    "HierarchicalArbiter",
    "round_robin_groups",
    "POLICY_NAMES",
    "ChaosPolicy",
    "ConsolidatingPolicy",
    "DegradedModePolicy",
    "MigratingPolicy",
    "ScheduledBudgetPolicy",
    "build_policy",
    "chaos_kill_times",
]
