"""Composable control policies beyond plain cap arbitration.

:class:`~repro.datacenter.arbiter.PowerArbiter` (static-equal or
SLA-aware water-filling) is the base cap policy; this module layers the
behaviours the paper's fixed-budget, fixed-placement study could not
express:

* :class:`ScheduledBudgetPolicy` — drives the fleet budget from a
  :class:`~repro.datacenter.controlplane.budget.BudgetSchedule`,
  emitting :class:`SetBudget` exactly at the scheduled instants
  (schedule times become control barriers) and handing the inner
  policy a view with the new budget already in force.
* :class:`MigratingPolicy` — watches for the regime where moving watts
  stops working: a machine pinned at its cap ceiling whose tenants
  still miss their SLAs.  Watt reallocation cannot help (the §5.4
  mechanism is saturated), so the policy moves the worst-off tenant to
  the machine with the most cap headroom instead, with a per-tenant
  cooldown to prevent thrashing.
* :class:`ConsolidatingPolicy` — the §5.5 consolidation story as a
  closed loop: during demand troughs it *packs* tenants onto fewer
  machines with warm (live) migrations and parks the emptied machines
  at their cap floor, handing the freed watts to the machines still
  serving; when SLA shortfall reappears it *spreads* tenants back onto
  the parked machines.  One move per barrier — multi-step placements
  emerge across consecutive barriers.

* :class:`ChaosPolicy` — fault injection: wraps any policy stack and
  fail-stops machines at seeded, deterministic instants mid-run
  (each kill instant becomes a control barrier, so the failure lands
  exactly when scheduled).  Victims' tenants are re-placed from the
  barrier's checkpoints; billing conservation holds across the kill.

:func:`build_policy` maps the CLI's ``--policy`` names to assembled
policy stacks.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Sequence

from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    ControlError,
    ControlPolicy,
    FailMachine,
    Migrate,
    SetBudget,
    SetCaps,
)
from repro.datacenter.controlplane.budget import BudgetSchedule
from repro.datacenter.faults import (
    FaultPlan,
    FaultPlanError,
    KillFault,
    kill_schedule,
)
from repro.heartbeats.health import (
    HEALTH_FRESH,
    HEALTH_STALE,
    HEALTH_UNRESPONSIVE,
)

__all__ = [
    "POLICY_NAMES",
    "ChaosPolicy",
    "ConsolidatingPolicy",
    "DegradedModePolicy",
    "MigratingPolicy",
    "ScheduledBudgetPolicy",
    "build_policy",
    "chaos_kill_times",
]

POLICY_NAMES = (
    "static-equal",
    "sla-aware",
    "hier-arbitrated",
    "migrating",
    "consolidating",
)
"""Policy names accepted by :func:`build_policy` and the CLI."""


class ScheduledBudgetPolicy:
    """Wrap a policy with a time-varying budget schedule.

    Args:
        inner: The policy deciding caps/migrations under the budget.
        schedule: Timestamped budget levels; each change is emitted as
            a :class:`SetBudget` at its scheduled instant and the inner
            policy decides against the updated budget in the same
            barrier.
    """

    def __init__(self, inner: ControlPolicy, schedule: BudgetSchedule) -> None:
        self.inner = inner
        self.schedule = schedule

    def initial_budget_watts(self) -> float | None:
        """The inner policy's base budget (schedule changes come later)."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Inner barriers plus every scheduled budget-change instant."""
        return tuple(self.inner.barrier_times(horizon)) + self.schedule.times

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Emit the scheduled budget change, then delegate under it."""
        target = self.schedule.budget_at(view.time, default=view.budget_watts)
        actions: list[Action] = []
        if target is not None and target != view.budget_watts:
            actions.append(SetBudget(target))
            view = replace(view, budget_watts=target)
        actions.extend(self.inner.decide(view))
        return actions


class MigratingPolicy:
    """Migrate tenants off machines where watt reallocation saturated.

    Args:
        inner: The cap policy whose allocations are inspected (usually
            an SLA-aware :class:`~repro.datacenter.arbiter.PowerArbiter`).
        cost_seconds: Machine-seconds charged to a moving tenant's
            billing ledger per migration.
        cooldown_seconds: Minimum barrier time between two migrations
            of the same tenant (hysteresis against thrashing).
        min_shortfall: Weighted per-machine SLA shortfall below which a
            saturated machine is left alone.
        warm: Whether emitted migrations carry warm control state
            (live migration) instead of restarting the mover cold.

    At most one migration is emitted per barrier: the highest-shortfall
    tenant on the most-violating ceiling-saturated machine moves to the
    machine with the most cap headroom (deterministic tie-breaks by
    machine/tenant order, so every backend decides identically).
    """

    def __init__(
        self,
        inner: ControlPolicy,
        cost_seconds: float = 2.0,
        cooldown_seconds: float = 30.0,
        min_shortfall: float = 0.02,
        warm: bool = False,
    ) -> None:
        if cost_seconds < 0.0:
            raise ControlError(
                f"migration cost must be >= 0, got {cost_seconds!r}"
            )
        if cooldown_seconds < 0.0:
            raise ControlError(
                f"cooldown must be >= 0, got {cooldown_seconds!r}"
            )
        self.inner = inner
        self.cost_seconds = cost_seconds
        self.cooldown_seconds = cooldown_seconds
        self.min_shortfall = min_shortfall
        self.warm = warm
        self._last_move: dict[str, float] = {}

    def initial_budget_watts(self) -> float | None:
        """Delegates to the inner cap policy."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Delegates to the inner cap policy."""
        return self.inner.barrier_times(horizon)

    def _pick_migration(
        self, view: ClusterView, caps: Sequence[float]
    ) -> Migrate | None:
        """The single best migration under the just-decided caps, if any."""
        shortfalls = view.machine_shortfalls()
        source = None
        for machine in view.machines:
            saturated = caps[machine.index] >= machine.cap_ceiling - 1e-6
            if not saturated or shortfalls[machine.index] <= self.min_shortfall:
                continue
            if source is None or shortfalls[machine.index] > shortfalls[source]:
                source = machine.index
        if source is None:
            return None
        dest = None
        best_headroom = 1e-6
        for machine in view.machines:
            if machine.index == source or not machine.alive:
                continue
            headroom = machine.cap_ceiling - caps[machine.index]
            if headroom > best_headroom:
                dest = machine.index
                best_headroom = headroom
        if dest is None:
            return None
        mover = None
        mover_key = 0.0
        for tenant in view.tenants_on(source):
            if tenant.finished:
                continue
            last = self._last_move.get(tenant.name)
            if last is not None and view.time - last < self.cooldown_seconds:
                continue
            key = tenant.weight * tenant.sla_shortfall
            if key > mover_key:
                mover = tenant
                mover_key = key
        if mover is None:
            return None
        return Migrate(mover.name, dest, self.cost_seconds, warm=self.warm)

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Inner caps first; append a migration if the caps saturated."""
        actions = list(self.inner.decide(view))
        caps = None
        for action in actions:
            if isinstance(action, SetCaps):
                caps = action.caps
        if caps is None:
            return actions
        migration = self._pick_migration(view, caps)
        if migration is not None:
            self._last_move[migration.tenant] = view.time
            actions.append(migration)
        return actions


class ConsolidatingPolicy:
    """Pack tenants onto fewer machines in troughs; spread back on demand.

    The §5.5 consolidation mechanism run as a closed loop on the live
    SLA signal instead of a precomputed utilization profile.  Each
    barrier the policy takes the inner cap policy's allocation, then:

    1. **Parks** every machine with no unfinished tenants at its cap
       floor and hands the freed watts to the machines still serving
       (by headroom, in machine order) — an emptied machine costs the
       fleet only its floor power.
    2. **Spreads** when demand is back: if some machine's weighted SLA
       shortfall exceeds ``spread_shortfall`` and a parked machine
       exists, the worst-off tenant moves onto the lowest-index parked
       machine.
    3. **Packs** when demand is low: if every machine's weighted
       shortfall is at most ``pack_shortfall``, the occupied machine
       with the fewest residents donates its cheapest-to-move tenant
       (fewest queued requests) to the occupied machine with the most
       residents below ``max_residents``.

    All moves are *warm* (live migration): the mover's controller
    state travels with it, so packing and spreading do not re-pay the
    control loop's convergence transient.  At most one move per
    barrier — multi-step placements (empty a machine tenant by tenant,
    then park it) emerge across consecutive barriers.  Every choice is
    deterministic: donor ties prefer the *higher* machine index and
    recipient/destination ties the *lower*, so fleets drain toward
    low-index machines and all backends decide identically.

    Args:
        inner: The cap policy whose allocation is reshaped (usually an
            SLA-aware :class:`~repro.datacenter.arbiter.PowerArbiter`).
        cost_seconds: Machine-seconds charged to a mover's ledger.
        cooldown_seconds: Minimum barrier time between two moves of
            the same tenant (hysteresis against pack/spread thrash).
        pack_shortfall: Fleet-quiet threshold — packing only happens
            while every machine's weighted shortfall is at or below it.
        spread_shortfall: Per-machine weighted shortfall above which a
            parked machine is brought back into service.
        max_residents: Co-residency bound packing will not exceed.
    """

    def __init__(
        self,
        inner: ControlPolicy,
        cost_seconds: float = 2.0,
        cooldown_seconds: float = 20.0,
        pack_shortfall: float = 0.01,
        spread_shortfall: float = 0.05,
        max_residents: int = 4,
    ) -> None:
        if cost_seconds < 0.0:
            raise ControlError(
                f"migration cost must be >= 0, got {cost_seconds!r}"
            )
        if cooldown_seconds < 0.0:
            raise ControlError(
                f"cooldown must be >= 0, got {cooldown_seconds!r}"
            )
        if max_residents < 1:
            raise ControlError(
                f"max_residents must be >= 1, got {max_residents!r}"
            )
        if spread_shortfall <= pack_shortfall:
            raise ControlError(
                f"spread_shortfall {spread_shortfall!r} must exceed "
                f"pack_shortfall {pack_shortfall!r} (hysteresis band)"
            )
        self.inner = inner
        self.cost_seconds = cost_seconds
        self.cooldown_seconds = cooldown_seconds
        self.pack_shortfall = pack_shortfall
        self.spread_shortfall = spread_shortfall
        self.max_residents = max_residents
        self._last_move: dict[str, float] = {}

    def initial_budget_watts(self) -> float | None:
        """Delegates to the inner cap policy."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Delegates to the inner cap policy."""
        return self.inner.barrier_times(horizon)

    def _occupancy(self, view: ClusterView) -> list[int]:
        """Unfinished residents per machine, in pool order."""
        counts = [0] * len(view.machines)
        for tenant in view.tenants:
            if not tenant.finished:
                counts[tenant.machine_index] += 1
        return counts

    def _movable(self, view: ClusterView, machine_index: int):
        """The machine's unfinished tenants off cooldown, in view order."""
        movable = []
        for tenant in view.tenants_on(machine_index):
            if tenant.finished:
                continue
            last = self._last_move.get(tenant.name)
            if last is not None and view.time - last < self.cooldown_seconds:
                continue
            movable.append(tenant)
        return movable

    def _pick_spread(
        self, view: ClusterView, occupancy: Sequence[int]
    ) -> Migrate | None:
        """Move the worst-off tenant onto a parked machine, if demand is back."""
        parked = [
            m.index
            for m in view.machines
            if m.alive and occupancy[m.index] == 0
        ]
        if not parked:
            return None
        shortfalls = view.machine_shortfalls()
        source = None
        for machine in view.machines:
            if occupancy[machine.index] < 2:
                # Spreading a machine's only tenant just relocates the
                # problem; contention relief needs >= 2 residents.
                continue
            if shortfalls[machine.index] <= self.spread_shortfall:
                continue
            if source is None or shortfalls[machine.index] > shortfalls[source]:
                source = machine.index
        if source is None:
            return None
        mover = None
        mover_key = 0.0
        for tenant in self._movable(view, source):
            key = tenant.weight * tenant.sla_shortfall
            if key > mover_key:
                mover = tenant
                mover_key = key
        if mover is None:
            return None
        return Migrate(mover.name, parked[0], self.cost_seconds, warm=True)

    def _pick_pack(
        self, view: ClusterView, occupancy: Sequence[int]
    ) -> Migrate | None:
        """Empty the lightest occupied machine into the fullest, if quiet."""
        if any(s > self.pack_shortfall for s in view.machine_shortfalls()):
            return None
        occupied = [m.index for m in view.machines if occupancy[m.index] > 0]
        if len(occupied) < 2:
            return None
        donor = max(occupied, key=lambda i: (-occupancy[i], i))
        recipient = None
        for index in occupied:
            if index == donor or occupancy[index] >= self.max_residents:
                continue
            if recipient is None or occupancy[index] > occupancy[recipient]:
                recipient = index
        if recipient is None:
            return None
        movable = self._movable(view, donor)
        if not movable:
            return None
        mover = min(movable, key=lambda t: t.pending_jobs)
        return Migrate(mover.name, recipient, self.cost_seconds, warm=True)

    def _reshaped_caps(
        self,
        view: ClusterView,
        caps: Sequence[float],
        arriving: int | None = None,
    ) -> tuple[float, ...]:
        """Park empty machines at their floor; give freed watts to the rest.

        ``arriving`` names a machine about to receive this barrier's
        migrant (caps are enforced before migrations apply): it counts
        as occupied, so a spread destination is never parked at its
        floor in the very barrier meant to relieve load onto it.
        """
        occupancy = self._occupancy(view)
        if arriving is not None:
            occupancy[arriving] += 1
        new_caps = list(caps)
        freed = 0.0
        for machine in view.machines:
            if occupancy[machine.index] == 0:
                freed += max(0.0, new_caps[machine.index] - machine.cap_floor)
                new_caps[machine.index] = machine.cap_floor
        if freed > 0.0:
            for machine in view.machines:
                if occupancy[machine.index] == 0:
                    continue
                headroom = machine.cap_ceiling - new_caps[machine.index]
                give = min(headroom, freed)
                if give > 0.0:
                    new_caps[machine.index] += give
                    freed -= give
                if freed <= 0.0:
                    break
        return tuple(new_caps)

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Inner caps reshaped around parked machines, plus one move.

        The time-zero barrier never migrates: before any request has
        arrived every tenant *looks* quiet, but that is absence of
        signal, not a trough — packing there would front-load moves a
        single busy period immediately undoes.
        """
        actions = list(self.inner.decide(view))
        occupancy = self._occupancy(view)
        migration = None
        if view.time > 0.0:
            migration = self._pick_spread(view, occupancy) or self._pick_pack(
                view, occupancy
            )
        arriving = migration.dest_machine_index if migration else None
        for index, action in enumerate(actions):
            if isinstance(action, SetCaps):
                actions[index] = SetCaps(
                    self._reshaped_caps(view, action.caps, arriving)
                )
        if migration is not None:
            self._last_move[migration.tenant] = view.time
            actions.append(migration)
        return actions


def chaos_kill_times(
    horizon: float,
    kills: int,
    seed: int,
    start_fraction: float = 0.3,
    end_fraction: float = 0.8,
) -> tuple[float, ...]:
    """The seeded, sorted machine-kill instants for a chaos run.

    A pure function of ``(horizon, kills, seed)`` so every consumer —
    :class:`ChaosPolicy`, a resumed run re-deriving its schedule, and
    the bench harness's event counter — computes identical floats.
    Kills land in the ``[start_fraction, end_fraction]`` span of the
    horizon: late enough that tenants have warm state worth losing,
    early enough that the recovered run still serves traffic.
    """
    # The schedule math lives in repro.datacenter.faults (shared with
    # FaultPlan.generate, so --chaos and a kills-only fault plan compute
    # byte-identical instants); this wrapper keeps the control plane's
    # error type.
    try:
        return kill_schedule(horizon, kills, seed, start_fraction, end_fraction)
    except FaultPlanError as error:
        raise ControlError(str(error)) from None


class ChaosPolicy:
    """Fault injection: fail-stop machines at seeded instants mid-run.

    Wraps any policy stack.  :func:`chaos_kill_times` schedules the
    kill instants (each becomes a control barrier, so the failure
    lands exactly when scheduled, not at the next periodic tick); at
    each one the policy picks a seeded victim among the machines still
    alive — preferring machines that actually host unfinished tenants,
    and never killing the last survivor — and emits
    :class:`~repro.datacenter.controlplane.actions.FailMachine` after
    the inner policy's actions.  Inner migrations that touch a machine
    dying at the same barrier are dropped (the failure re-places those
    tenants anyway).

    Setting the class attribute ``may_fail_machines`` tells the engine
    to capture cluster checkpoints at every barrier, which is what the
    failure recovery restores from.  Deterministic by construction:
    the kill schedule and victim choices are pure functions of the
    seed and the observed views, so replaying or resuming a chaos run
    reproduces the same failures.

    The cap arbiter still allocates dead machines their floor watts
    (they cannot be powered off, merely frozen); the consolidating
    policy's parking logic treats them as permanently parked.

    Since the gray-failure layer landed, the seeded schedule is just a
    kills-only :class:`~repro.datacenter.faults.FaultPlan` — ``--chaos``
    is sugar over ``--faults`` — and a plan's explicit
    :class:`~repro.datacenter.faults.KillFault` entries (optionally
    pinning victims) can be passed directly via ``kill_times``.

    Args:
        inner: The policy stack deciding caps/budget/migrations.
        kills: Number of machines to kill over the run (ignored when
            ``kill_times`` is given).
        seed: Seed for the kill schedule and victim choices.
        start_fraction: Earliest kill, as a fraction of the horizon.
        end_fraction: Latest kill, as a fraction of the horizon.
        kill_times: Explicit kill schedule — an iterable of
            :class:`~repro.datacenter.faults.KillFault` (or bare
            times), e.g. ``FaultPlan.kills`` from a ``--faults`` file —
            instead of the seeded schedule.  Entries with a pinned
            ``machine_index`` kill exactly that machine (skipped if it
            is already dead or the last survivor); unpinned entries use
            the seeded victim choice.
    """

    may_fail_machines = True

    def __init__(
        self,
        inner: ControlPolicy,
        kills: int = 1,
        seed: int = 0,
        start_fraction: float = 0.3,
        end_fraction: float = 0.8,
        kill_times: Sequence[KillFault | float] | None = None,
    ) -> None:
        # Validate eagerly (barrier_times may be a while away).
        chaos_kill_times(1.0, kills, seed, start_fraction, end_fraction)
        self.inner = inner
        self.seed = seed
        self.start_fraction = start_fraction
        self.end_fraction = end_fraction
        if kill_times is not None:
            self._scheduled: tuple[KillFault, ...] | None = tuple(
                sorted(
                    (
                        kill
                        if isinstance(kill, KillFault)
                        else KillFault(float(kill))
                        for kill in kill_times
                    ),
                    key=lambda kill: kill.time,
                )
            )
            self.kills = len(self._scheduled)
        else:
            self._scheduled = None
            self.kills = kills
        self._due: list[KillFault] | None = None
        self._victim_rng = random.Random(seed + 1)

    def initial_budget_watts(self) -> float | None:
        """Delegates to the inner policy."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Inner barriers plus the seeded (or explicit) kill instants."""
        if self._scheduled is not None:
            self._due = list(self._scheduled)
        else:
            plan = FaultPlan.generate(
                horizon=horizon,
                kills=self.kills,
                seed=self.seed,
                start_fraction=self.start_fraction,
                end_fraction=self.end_fraction,
            )
            self._due = list(plan.kills)
        return tuple(self.inner.barrier_times(horizon)) + tuple(
            kill.time for kill in self._due
        )

    def _pick_victim(
        self, view: ClusterView, dying: Sequence[int]
    ) -> int | None:
        """A seeded victim among the alive machines, or None to skip.

        Prefers machines hosting unfinished tenants (killing an empty
        machine exercises nothing) and never kills the last survivor.
        """
        alive = [
            m.index
            for m in view.machines
            if m.alive and m.index not in dying
        ]
        if len(alive) < 2:
            return None
        occupied = [
            index
            for index in alive
            if any(
                t.machine_index == index and not t.finished
                for t in view.tenants
            )
        ]
        pool = occupied or alive
        return pool[self._victim_rng.randrange(len(pool))]

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Inner actions, plus this barrier's scheduled kills (if due)."""
        actions = list(self.inner.decide(view))
        if self._due is None:
            raise ControlError(
                "ChaosPolicy.decide called before barrier_times scheduled "
                "the kills"
            )
        dying: list[int] = []
        while self._due and view.time >= self._due[0].time - 1e-9:
            kill = self._due.pop(0)
            if kill.machine_index is not None:
                alive = [
                    m.index
                    for m in view.machines
                    if m.alive and m.index not in dying
                ]
                victim = (
                    kill.machine_index
                    if kill.machine_index in alive and len(alive) >= 2
                    else None
                )
            else:
                victim = self._pick_victim(view, dying)
            if victim is not None:
                dying.append(victim)
        if not dying:
            return actions
        placement = {t.name: t.machine_index for t in view.tenants}
        doomed = set(dying)
        actions = [
            action
            for action in actions
            if not (
                isinstance(action, Migrate)
                and (
                    action.dest_machine_index in doomed
                    or placement.get(action.tenant) in doomed
                )
            )
        ]
        actions.extend(FailMachine(index) for index in dying)
        return actions


class DegradedModePolicy:
    """Graceful degradation under gray failures, for any policy stack.

    Wraps any inner policy.  While every machine reads ``fresh`` (or
    ``dead`` — fail-stop recovery is the arbiter's business), the inner
    actions pass through untouched, so wrapping costs nothing on
    healthy runs and a kills-only fault plan stays byte-identical to
    plain chaos.  When the engine's health derivation reports
    degradation, the wrapper transforms the inner actions
    deterministically:

    * **stale** machines hold their last-known caps — decisions based
      on aging telemetry stop chasing it, and a machine coming back
      from quarantine keeps its held allocation through the
      reintegration hysteresis window (it reads ``stale`` until the
      window elapses, then ``fresh`` again);
    * **unresponsive** machines are quarantined at their cap floor and
      their freed watts are redistributed to fresh machines by
      headroom (the arbiter's allocation intent, re-expressed over the
      machines that can actually be trusted to use it);
    * migrations whose source or destination machine is not ``fresh``
      are dropped — consolidation never packs tenants onto a machine
      the control plane cannot see clearly;
    * if holding stale caps would overflow the budget (it shrank since
      the cap was learned), fresh machines shave toward their floors
      first, then stale ones — all plain arithmetic, so serial and
      sharded runs degrade byte-identically.

    ``SetBudget`` and ``FailMachine`` actions pass through unchanged;
    ``may_fail_machines`` is inherited from the inner stack so the
    engine still checkpoints for an inner ``ChaosPolicy``.
    """

    def __init__(self, inner: ControlPolicy) -> None:
        self.inner = inner

    @property
    def may_fail_machines(self) -> bool:
        """Inherited from the inner stack (checkpointing trigger)."""
        return bool(getattr(self.inner, "may_fail_machines", False))

    def initial_budget_watts(self) -> float | None:
        """Delegates to the inner policy."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Delegates to the inner policy."""
        return self.inner.barrier_times(horizon)

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Inner actions, transformed for the cluster's health state."""
        actions = list(self.inner.decide(view))
        health = {machine.index: machine.health for machine in view.machines}
        if not any(
            state in (HEALTH_STALE, HEALTH_UNRESPONSIVE)
            for state in health.values()
        ):
            return actions
        budget = view.budget_watts
        placement = {t.name: t.machine_index for t in view.tenants}
        out: list[Action] = []
        for action in actions:
            if isinstance(action, SetBudget):
                budget = action.budget_watts
                out.append(action)
            elif isinstance(action, Migrate):
                if (
                    health.get(action.dest_machine_index) != HEALTH_FRESH
                    or health.get(placement.get(action.tenant)) != HEALTH_FRESH
                ):
                    continue
                out.append(action)
            elif isinstance(action, SetCaps):
                out.append(
                    SetCaps(caps=self._degrade_caps(view, action.caps, budget))
                )
            else:
                out.append(action)
        return out

    def _degrade_caps(
        self,
        view: ClusterView,
        caps: Sequence[float],
        budget: float | None,
    ) -> tuple[float, ...]:
        """Hold stale, quarantine unresponsive, rebalance the watts."""
        degraded = list(caps)
        fresh: list[int] = []
        held: list[int] = []
        for machine in view.machines:
            index = machine.index
            if not machine.alive:
                continue
            if machine.health == HEALTH_UNRESPONSIVE:
                degraded[index] = machine.cap_floor
            elif machine.health == HEALTH_STALE:
                if machine.cap_watts is not None:
                    degraded[index] = machine.cap_watts
                held.append(index)
            else:
                fresh.append(index)
        if budget is None:
            return tuple(degraded)
        floors = {m.index: m.cap_floor for m in view.machines}
        ceilings = {m.index: m.cap_ceiling for m in view.machines}
        slack = budget - sum(degraded)
        if slack > 0.0 and fresh:
            # Water-fill the freed watts into fresh machines by
            # headroom, never past a ceiling.
            headroom = sum(ceilings[i] - degraded[i] for i in fresh)
            if headroom > 0.0:
                fraction = min(1.0, slack / headroom)
                for index in fresh:
                    degraded[index] += fraction * (
                        ceilings[index] - degraded[index]
                    )
        elif slack < 0.0:
            # Holding stale caps overflowed a shrunken budget: shave
            # fresh machines toward their floors first, then the held
            # ones, so the validator never sees an over-budget plan.
            for group in (fresh, held):
                give = sum(degraded[i] - floors[i] for i in group)
                if give <= 0.0:
                    continue
                fraction = min(1.0, -slack / give)
                for index in group:
                    degraded[index] -= fraction * (
                        degraded[index] - floors[index]
                    )
                slack = budget - sum(degraded)
                if slack >= 0.0:
                    break
        return tuple(degraded)


def build_policy(
    name: str,
    budget_watts: float,
    machines: Sequence,
    gain: float = 8.0,
    schedule: BudgetSchedule | None = None,
    migration_cost_seconds: float = 2.0,
) -> ControlPolicy:
    """Assemble a named policy stack for a machine pool.

    ``name`` is one of :data:`POLICY_NAMES`: ``static-equal`` (even
    split), ``sla-aware`` (violation-weighted water-fill),
    ``hier-arbitrated`` (two-level group water-fill whose shard-local
    aggregates keep the sharded barrier payload at O(groups)),
    ``migrating`` (SLA-aware caps plus cold ceiling-saturation
    migration), or ``consolidating`` (SLA-aware caps plus warm
    pack/spread placement with cap-floor parking).  A ``schedule``
    wraps the stack in a :class:`ScheduledBudgetPolicy` after checking
    every level against the pool's cap floor.
    """
    # Imported here, not at module top: the arbiter module itself
    # imports controlplane.actions, so a module-level import would be
    # circular when loading starts from repro.datacenter.arbiter.
    from repro.datacenter.arbiter import ArbiterPolicy, PowerArbiter
    from repro.datacenter.controlplane.hierarchy import HierarchicalArbiter

    if name == "static-equal":
        policy: ControlPolicy = PowerArbiter(
            budget_watts, machines, policy=ArbiterPolicy.STATIC_EQUAL, gain=gain
        )
    elif name == "sla-aware":
        policy = PowerArbiter(
            budget_watts, machines, policy=ArbiterPolicy.SLA_AWARE, gain=gain
        )
    elif name == "hier-arbitrated":
        policy = HierarchicalArbiter(budget_watts, machines, gain=gain)
    elif name == "migrating":
        policy = MigratingPolicy(
            PowerArbiter(
                budget_watts, machines, policy=ArbiterPolicy.SLA_AWARE, gain=gain
            ),
            cost_seconds=migration_cost_seconds,
        )
    elif name == "consolidating":
        policy = ConsolidatingPolicy(
            PowerArbiter(
                budget_watts, machines, policy=ArbiterPolicy.SLA_AWARE, gain=gain
            ),
            cost_seconds=migration_cost_seconds,
        )
    else:
        raise ControlError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        )
    if schedule is not None:
        from repro.datacenter.controlplane.applier import machine_limits

        floors, _ = machine_limits(machines)
        schedule.check_floor(sum(floors))
        policy = ScheduledBudgetPolicy(policy, schedule)
    return policy
