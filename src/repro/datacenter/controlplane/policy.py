"""Composable control policies beyond plain cap arbitration.

:class:`~repro.datacenter.arbiter.PowerArbiter` (static-equal or
SLA-aware water-filling) is the base cap policy; this module layers the
behaviours the paper's fixed-budget, fixed-placement study could not
express:

* :class:`ScheduledBudgetPolicy` — drives the fleet budget from a
  :class:`~repro.datacenter.controlplane.budget.BudgetSchedule`,
  emitting :class:`SetBudget` exactly at the scheduled instants
  (schedule times become control barriers) and handing the inner
  policy a view with the new budget already in force.
* :class:`MigratingPolicy` — watches for the regime where moving watts
  stops working: a machine pinned at its cap ceiling whose tenants
  still miss their SLAs.  Watt reallocation cannot help (the §5.4
  mechanism is saturated), so the policy moves the worst-off tenant to
  the machine with the most cap headroom instead, with a per-tenant
  cooldown to prevent thrashing.

:func:`build_policy` maps the CLI's ``--policy`` names to assembled
policy stacks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    ControlError,
    ControlPolicy,
    Migrate,
    SetBudget,
    SetCaps,
)
from repro.datacenter.controlplane.budget import BudgetSchedule

__all__ = [
    "POLICY_NAMES",
    "MigratingPolicy",
    "ScheduledBudgetPolicy",
    "build_policy",
]

POLICY_NAMES = ("static-equal", "sla-aware", "migrating")
"""Policy names accepted by :func:`build_policy` and the CLI."""


class ScheduledBudgetPolicy:
    """Wrap a policy with a time-varying budget schedule.

    Args:
        inner: The policy deciding caps/migrations under the budget.
        schedule: Timestamped budget levels; each change is emitted as
            a :class:`SetBudget` at its scheduled instant and the inner
            policy decides against the updated budget in the same
            barrier.
    """

    def __init__(self, inner: ControlPolicy, schedule: BudgetSchedule) -> None:
        self.inner = inner
        self.schedule = schedule

    def initial_budget_watts(self) -> float | None:
        """The inner policy's base budget (schedule changes come later)."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Inner barriers plus every scheduled budget-change instant."""
        return tuple(self.inner.barrier_times(horizon)) + self.schedule.times

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Emit the scheduled budget change, then delegate under it."""
        target = self.schedule.budget_at(view.time, default=view.budget_watts)
        actions: list[Action] = []
        if target is not None and target != view.budget_watts:
            actions.append(SetBudget(target))
            view = replace(view, budget_watts=target)
        actions.extend(self.inner.decide(view))
        return actions


class MigratingPolicy:
    """Migrate tenants off machines where watt reallocation saturated.

    Args:
        inner: The cap policy whose allocations are inspected (usually
            an SLA-aware :class:`~repro.datacenter.arbiter.PowerArbiter`).
        cost_seconds: Machine-seconds charged to a moving tenant's
            billing ledger per migration.
        cooldown_seconds: Minimum barrier time between two migrations
            of the same tenant (hysteresis against thrashing).
        min_shortfall: Weighted per-machine SLA shortfall below which a
            saturated machine is left alone.

    At most one migration is emitted per barrier: the highest-shortfall
    tenant on the most-violating ceiling-saturated machine moves to the
    machine with the most cap headroom (deterministic tie-breaks by
    machine/tenant order, so every backend decides identically).
    """

    def __init__(
        self,
        inner: ControlPolicy,
        cost_seconds: float = 2.0,
        cooldown_seconds: float = 30.0,
        min_shortfall: float = 0.02,
    ) -> None:
        if cost_seconds < 0.0:
            raise ControlError(
                f"migration cost must be >= 0, got {cost_seconds!r}"
            )
        if cooldown_seconds < 0.0:
            raise ControlError(
                f"cooldown must be >= 0, got {cooldown_seconds!r}"
            )
        self.inner = inner
        self.cost_seconds = cost_seconds
        self.cooldown_seconds = cooldown_seconds
        self.min_shortfall = min_shortfall
        self._last_move: dict[str, float] = {}

    def initial_budget_watts(self) -> float | None:
        """Delegates to the inner cap policy."""
        return self.inner.initial_budget_watts()

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """Delegates to the inner cap policy."""
        return self.inner.barrier_times(horizon)

    def _pick_migration(
        self, view: ClusterView, caps: Sequence[float]
    ) -> Migrate | None:
        """The single best migration under the just-decided caps, if any."""
        shortfalls = view.machine_shortfalls()
        source = None
        for machine in view.machines:
            saturated = caps[machine.index] >= machine.cap_ceiling - 1e-6
            if not saturated or shortfalls[machine.index] <= self.min_shortfall:
                continue
            if source is None or shortfalls[machine.index] > shortfalls[source]:
                source = machine.index
        if source is None:
            return None
        dest = None
        best_headroom = 1e-6
        for machine in view.machines:
            if machine.index == source:
                continue
            headroom = machine.cap_ceiling - caps[machine.index]
            if headroom > best_headroom:
                dest = machine.index
                best_headroom = headroom
        if dest is None:
            return None
        mover = None
        mover_key = 0.0
        for tenant in view.tenants_on(source):
            if tenant.finished:
                continue
            last = self._last_move.get(tenant.name)
            if last is not None and view.time - last < self.cooldown_seconds:
                continue
            key = tenant.weight * tenant.sla_shortfall
            if key > mover_key:
                mover = tenant
                mover_key = key
        if mover is None:
            return None
        return Migrate(mover.name, dest, self.cost_seconds)

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """Inner caps first; append a migration if the caps saturated."""
        actions = list(self.inner.decide(view))
        caps = None
        for action in actions:
            if isinstance(action, SetCaps):
                caps = action.caps
        if caps is None:
            return actions
        migration = self._pick_migration(view, caps)
        if migration is not None:
            self._last_move[migration.tenant] = view.time
            actions.append(migration)
        return actions


def build_policy(
    name: str,
    budget_watts: float,
    machines: Sequence,
    gain: float = 8.0,
    schedule: BudgetSchedule | None = None,
    migration_cost_seconds: float = 2.0,
) -> ControlPolicy:
    """Assemble a named policy stack for a machine pool.

    ``name`` is one of :data:`POLICY_NAMES`: ``static-equal`` (even
    split), ``sla-aware`` (violation-weighted water-fill), or
    ``migrating`` (SLA-aware caps plus ceiling-saturation migration).
    A ``schedule`` wraps the stack in a :class:`ScheduledBudgetPolicy`
    after checking every level against the pool's cap floor.
    """
    # Imported here, not at module top: the arbiter module itself
    # imports controlplane.actions, so a module-level import would be
    # circular when loading starts from repro.datacenter.arbiter.
    from repro.datacenter.arbiter import ArbiterPolicy, PowerArbiter

    if name == "static-equal":
        policy: ControlPolicy = PowerArbiter(
            budget_watts, machines, policy=ArbiterPolicy.STATIC_EQUAL, gain=gain
        )
    elif name == "sla-aware":
        policy = PowerArbiter(
            budget_watts, machines, policy=ArbiterPolicy.SLA_AWARE, gain=gain
        )
    elif name == "migrating":
        policy = MigratingPolicy(
            PowerArbiter(
                budget_watts, machines, policy=ArbiterPolicy.SLA_AWARE, gain=gain
            ),
            cost_seconds=migration_cost_seconds,
        )
    else:
        raise ControlError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        )
    if schedule is not None:
        from repro.datacenter.controlplane.applier import machine_limits

        floors, _ = machine_limits(machines)
        schedule.check_floor(sum(floors))
        policy = ScheduledBudgetPolicy(policy, schedule)
    return policy
