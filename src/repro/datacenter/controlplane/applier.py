"""The one place control actions are validated and applied.

Policies return data (:mod:`~repro.datacenter.controlplane.actions`);
this module turns that data into engine state, identically on every
backend:

* :func:`plan_actions` — central validation.  Whatever a policy emits
  is checked here before anything is enforced: budgets must cover the
  fleet's cap floor, caps must be within every machine's
  ``[cap_floor, cap_ceiling]`` range and sum within the budget (errors
  name the offending machine), migrations must reference live tenants
  and real destinations.  The serial/eager engines and the sharded
  coordinator all plan through this function.
* :func:`enforce_caps` — cap -> DVFS application (the §5.4 mechanism).
* :func:`emigrate` / :func:`absorb` — the two halves of a migration,
  cold or warm.  Serial runs them back to back in process; the sharded
  backend runs :func:`emigrate` in the source worker, ships the
  returned :class:`MigrantState` through the coordinator, and runs
  :func:`absorb` in the destination worker.  A warm move additionally
  carries the source runtime's
  :class:`~repro.core.runtime.RuntimeSnapshot` inside the migrant
  state and replays it into the destination runtime.  Because both
  backends execute the same functions on identically-settled machine
  state, the results — ledgers, stats, run segments — are
  byte-identical.
* :func:`merge_run_results` — stitches a migrated tenant's per-host
  run segments into the single :class:`~repro.core.runtime.RunResult`
  exposed by ``DatacenterResult.run_results``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.runtime import RunResult, StepStatus
from repro.datacenter.caps import (
    ArbiterError,
    frequency_for_cap,
    machine_cap_ceiling,
    machine_cap_floor,
)
from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    ControlError,
    FailMachine,
    FailureRecord,
    Migrate,
    MigrationRecord,
    SetBudget,
    SetCaps,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.engine import DatacenterEngine, InstanceBinding

__all__ = [
    "ControlPlan",
    "MigrantState",
    "RetryState",
    "machine_limits",
    "plan_actions",
    "enforce_caps",
    "retry_backoff_seconds",
    "emigrate",
    "absorb",
    "migrate_instance",
    "plan_failures",
    "apply_failures",
    "merge_run_results",
]

_CAP_TOLERANCE = 1e-6
"""Float slack for cap-range and budget-sum validation (watts)."""


def machine_limits(machines: Sequence[Any]) -> tuple[list[float], list[float]]:
    """Per-machine enforceable cap floors and ceilings, in pool order."""
    floors = [machine_cap_floor(machine) for machine in machines]
    ceilings = [machine_cap_ceiling(machine) for machine in machines]
    return floors, ceilings


@dataclass(frozen=True)
class ControlPlan:
    """A validated, canonically ordered batch of control actions.

    Application order is always budget -> caps -> failures ->
    migrations, regardless of the order the policy emitted them: a new
    budget must govern the cap check, caps must be enforced before any
    placement changes, and failures must land before migrations so a
    migration never races a machine that died at the same barrier (the
    validator rejects such plans outright).

    Attributes:
        budget_watts: New global budget, or None if unchanged.
        caps: Validated per-machine caps, or None if this barrier
            leaves caps alone.
        failures: Machines to fail-stop, in policy order.
        migrations: Migrations to perform, in policy order.
    """

    budget_watts: float | None
    caps: tuple[float, ...] | None
    migrations: tuple[Migrate, ...]
    failures: tuple[FailMachine, ...] = ()


def plan_actions(
    actions: Sequence[Action],
    view: ClusterView,
    floors: Sequence[float],
    ceilings: Sequence[float],
    budget_watts: float | None,
) -> ControlPlan:
    """Validate a policy's actions against the cluster's hard limits.

    This is the control plane's single trust boundary: every backend
    plans through it, so no policy — built-in or user-supplied — can
    push a machine outside ``[cap_floor, cap_ceiling]``, overspend the
    budget, or migrate a tenant that does not exist.  Violations raise
    :class:`~repro.datacenter.arbiter.ArbiterError` (cap/budget limits,
    naming the offending machine) or :class:`ControlError` (malformed
    action batches).
    """
    new_budget: float | None = None
    caps: tuple[float, ...] | None = None
    migrations: list[Migrate] = []
    failures: list[FailMachine] = []
    tenants = {tenant.name: tenant for tenant in view.tenants}

    for action in actions:
        if isinstance(action, SetBudget):
            if new_budget is not None:
                raise ControlError(
                    "policy emitted more than one SetBudget in a single "
                    "decision"
                )
            if action.budget_watts < sum(floors) - _CAP_TOLERANCE:
                raise ArbiterError(
                    f"budget {action.budget_watts!r} W is below the pool's "
                    f"floor {sum(floors):.1f} W ({len(floors)} machines "
                    "pinned to their slowest P-state)"
                )
            new_budget = float(action.budget_watts)
        elif isinstance(action, SetCaps):
            if caps is not None:
                raise ControlError(
                    "policy emitted more than one SetCaps in a single "
                    "decision"
                )
            caps = tuple(float(cap) for cap in action.caps)
        elif isinstance(action, Migrate):
            tenant = tenants.get(action.tenant)
            if tenant is None:
                raise ControlError(
                    f"cannot migrate unknown tenant {action.tenant!r}"
                )
            if tenant.finished:
                raise ControlError(
                    f"cannot migrate finished tenant {action.tenant!r}"
                )
            if not 0 <= action.dest_machine_index < len(view.machines):
                raise ControlError(
                    f"migration destination {action.dest_machine_index!r} "
                    f"out of range for {len(view.machines)} machines"
                )
            if action.dest_machine_index == tenant.machine_index:
                raise ControlError(
                    f"tenant {action.tenant!r} is already on machine "
                    f"{tenant.machine_index}"
                )
            if action.cost_seconds < 0.0:
                raise ControlError(
                    f"migration cost must be >= 0, got {action.cost_seconds!r}"
                )
            if any(m.tenant == action.tenant for m in migrations):
                raise ControlError(
                    f"tenant {action.tenant!r} migrated twice in one decision"
                )
            migrations.append(action)
        elif isinstance(action, FailMachine):
            if not 0 <= action.machine_index < len(view.machines):
                raise ControlError(
                    f"cannot fail machine {action.machine_index!r}: out of "
                    f"range for {len(view.machines)} machines"
                )
            if not view.machines[action.machine_index].alive:
                raise ControlError(
                    f"machine {action.machine_index} is already dead"
                )
            if any(f.machine_index == action.machine_index for f in failures):
                raise ControlError(
                    f"machine {action.machine_index} failed twice in one "
                    "decision"
                )
            failures.append(action)
        else:
            raise ControlError(f"unknown control action {action!r}")

    if failures:
        dying = {failure.machine_index for failure in failures}
        survivors = [
            m for m in view.machines if m.alive and m.index not in dying
        ]
        if not survivors:
            raise ControlError(
                "plan fails every remaining machine; at least one must "
                "survive to host the victims' tenants"
            )
    else:
        dying = set()
    for migration in migrations:
        dest = view.machines[migration.dest_machine_index]
        if not dest.alive or migration.dest_machine_index in dying:
            raise ControlError(
                f"cannot migrate tenant {migration.tenant!r} to dead "
                f"machine {migration.dest_machine_index}"
            )
        if tenants[migration.tenant].machine_index in dying:
            raise ControlError(
                f"cannot migrate tenant {migration.tenant!r} off machine "
                f"{tenants[migration.tenant].machine_index}, which fails "
                "at this same barrier (failure recovery re-places it)"
            )

    if caps is not None:
        effective_budget = new_budget if new_budget is not None else budget_watts
        if len(caps) != len(floors):
            raise ArbiterError(
                f"expected {len(floors)} caps, got {len(caps)}"
            )
        for index, (cap, floor, ceiling) in enumerate(
            zip(caps, floors, ceilings)
        ):
            if cap < floor - _CAP_TOLERANCE:
                raise ArbiterError(
                    f"machine {index}: cap {cap:.3f} W below its floor "
                    f"{floor:.3f} W"
                )
            if cap > ceiling + _CAP_TOLERANCE:
                raise ArbiterError(
                    f"machine {index}: cap {cap:.3f} W above its ceiling "
                    f"{ceiling:.3f} W"
                )
        if (
            effective_budget is not None
            and sum(caps) > effective_budget + _CAP_TOLERANCE
        ):
            raise ArbiterError(
                f"caps sum to {sum(caps):.3f} W, exceeding the "
                f"{effective_budget:.3f} W budget"
            )
    return ControlPlan(
        budget_watts=new_budget,
        caps=caps,
        migrations=tuple(migrations),
        failures=tuple(failures),
    )


def enforce_caps(machines: Sequence[Any], caps: Sequence[float]) -> None:
    """Apply validated caps as DVFS settings, one machine at a time."""
    for machine, cap in zip(machines, caps):
        machine.set_frequency(frequency_for_cap(machine, cap))


@dataclass(frozen=True)
class RetryState:
    """One machine's in-flight cap-application retry loop.

    Opened by the engine's actuation step when a ``SetCaps``
    application fails (or lands only partially) under an injected
    actuator fault; closed when an attempt succeeds, a new target
    supersedes it, or the deadline expires and the target is
    abandoned.  Every attempt is journaled as a
    :class:`~repro.datacenter.faults.RetryRecord`.

    Attributes:
        target_watts: The cap the applier is trying to land.
        commanded_at: Barrier time of the first failed attempt — the
            retry deadline is measured from here.
        attempts: Attempts made so far (>= 1).
        next_attempt_at: Earliest barrier time the applier will try
            again (capped exponential backoff; attempts before this
            instant are skipped, not failed).
    """

    target_watts: float
    commanded_at: float
    attempts: int
    next_attempt_at: float


def retry_backoff_seconds(
    attempt: int, base_seconds: float, cap_seconds: float
) -> float:
    """Deterministic capped exponential backoff after a failed attempt.

    ``min(base * 2**(attempt - 1), cap)`` — no jitter, so every
    backend (and every replay) schedules byte-identical retries.
    """
    return min(base_seconds * (2.0 ** (attempt - 1)), cap_seconds)


@dataclass(frozen=True)
class MigrantState:
    """Everything that moves with a tenant in a migration.

    Plain data (picklable) so the sharded backend can ship it between
    the source and destination workers through the coordinator.

    Attributes:
        tenant: The moving tenant's name.
        source_machine_index: Machine the instance left.
        pending: ``(job, tag)`` pairs extracted from the source
            runtime's queue — requests admitted but not yet started.
        stats: The tenant's SLA/admission accounting (moves by value).
        ledger: The tenant's billing ledger (moves by value).
        run_segments: Completed :class:`RunResult` segments, one per
            host the instance has run on so far.
        next_request: The tenant's next request index.
        trace_pos: How many of the tenant's trace arrivals have been
            dispatched — the destination resumes its arrival cursor
            here.
        snapshot: The source runtime's warm control state
            (:class:`~repro.core.runtime.RuntimeSnapshot`) for a warm
            move, or None for a cold restart.
    """

    tenant: str
    source_machine_index: int
    pending: tuple[tuple[Any, Any], ...]
    stats: Any
    ledger: Any
    run_segments: tuple[RunResult, ...]
    next_request: int
    trace_pos: int
    snapshot: Any | None = None


def emigrate(
    engine: "DatacenterEngine",
    binding: "InstanceBinding",
    trace_pos: int,
    warm: bool = False,
) -> MigrantState:
    """Run the source half of a migration; returns the migrant.

    Queued-but-unstarted requests are extracted to move with the
    tenant; the request in flight (if any) is then drained to
    completion on the source host — every drain ``step()`` metered to
    the tenant exactly like scheduled steps — before the runtime is
    finished and its segment banked.  For a warm move the drained
    runtime's control state (controller integrator, plan cache,
    heartbeat window, quantum phase) is captured *after* the drain, so
    the destination resumes from the last operating point the source
    actually ran at.
    """
    host = engine.hosts[binding.machine_index]
    runtime = binding.runtime
    pending = tuple(runtime.extract_pending())
    runtime.close_input()
    while not binding.finished:
        if engine._metered_step(host, binding) is StepStatus.FINISHED:
            binding.finished = True
    segment = runtime.finish()
    host.instances.remove(binding)
    return MigrantState(
        tenant=binding.tenant.name,
        source_machine_index=binding.machine_index,
        pending=pending,
        stats=binding.stats,
        ledger=binding.ledger,
        run_segments=tuple(binding.run_segments) + (segment,),
        next_request=binding.next_request,
        trace_pos=trace_pos,
        snapshot=runtime.snapshot() if warm else None,
    )


def absorb(
    engine: "DatacenterEngine",
    binding: "InstanceBinding",
    migrant: MigrantState,
    dest_machine_index: int,
    cost_seconds: float,
) -> None:
    """Run the destination half of a migration.

    Rebuilds the tenant's runtime on the destination machine via the
    binding's ``runtime_factory``, restores the shipped stats/ledger/
    segments, re-feeds the moved pending requests (completion hooks
    re-attached to the shipped stats), and charges ``cost_seconds`` to
    the tenant's ledger (time only — migration conserves energy).  When
    the migrant carries a warm snapshot, it is replayed into the fresh
    runtime before any request runs, so the destination's first control
    period continues from the source's last instead of the baseline.
    """
    if binding.runtime_factory is None:
        raise ControlError(
            f"tenant {binding.tenant.name!r} has no runtime_factory; "
            "migration requires one to rebuild the instance on the "
            "destination machine"
        )
    machine = engine.machines[dest_machine_index]
    runtime = binding.runtime_factory(machine)
    if runtime.machine is not machine:
        raise ControlError(
            f"runtime_factory for tenant {binding.tenant.name!r} returned a "
            "runtime bound to the wrong machine"
        )
    binding.runtime = runtime
    binding.machine_index = dest_machine_index
    binding.stats = migrant.stats
    binding.ledger = migrant.ledger
    binding.run_segments = list(migrant.run_segments)
    binding.next_request = migrant.next_request
    binding.finished = False
    binding.starved = False
    runtime.begin()
    if migrant.snapshot is not None:
        runtime.restore(migrant.snapshot)
    stats = binding.stats
    for job, tag in migrant.pending:
        _, arrival = tag
        runtime.feed(
            job,
            on_complete=lambda completion, arrival=arrival: (
                stats.record_completion(arrival, completion)
            ),
            tag=tag,
        )
    engine.hosts[dest_machine_index].instances.append(binding)
    binding.ledger.charge(0.0, cost_seconds)


def migrate_instance(
    engine: "DatacenterEngine",
    migration: Migrate,
    now: float,
) -> MigrationRecord:
    """In-process migration: emigrate and absorb back to back.

    The serial and eager backends use this directly; the sharded
    backend runs the same :func:`emigrate`/:func:`absorb` pair split
    across its source and destination workers.  In process the
    tenant's arrival stream stays where it is (dispatch re-routes
    through the binding's updated ``machine_index``), so the
    ``trace_pos`` recorded in the intermediate migrant state is unused
    and reported as 0 — only shard workers, where the arrival cursor
    really changes hands, track it.
    """
    binding = next(
        b for b in engine.bindings if b.tenant.name == migration.tenant
    )
    source = binding.machine_index
    migrant = emigrate(engine, binding, trace_pos=0, warm=migration.warm)
    absorb(
        engine, binding, migrant, migration.dest_machine_index,
        migration.cost_seconds,
    )
    return MigrationRecord(
        time=now,
        tenant=migration.tenant,
        source_machine_index=source,
        dest_machine_index=migration.dest_machine_index,
        cost_seconds=migration.cost_seconds,
        warm=migration.warm,
    )


def plan_failures(
    placements: Sequence[tuple[str, int]],
    machine_count: int,
    dead: set[int],
    failed: Sequence[int],
) -> list[tuple[int, list[tuple[str, int]]]]:
    """Deterministically re-place the victims of this barrier's failures.

    Pure placement math shared by the serial applier and the sharded
    coordinator, so both compute identical destinations.  ``placements``
    is ``(tenant, machine_index)`` in engine binding order; the victims
    of each failed machine are re-placed, in that order, onto the
    surviving machine with the fewest resident tenants (ties break to
    the lowest index), counting victims as they land.  Returns
    ``(failed_machine_index, [(tenant, dest_machine_index), ...])`` per
    failure, in ``failed`` order.
    """
    dead_after = dead | set(failed)
    survivors = [i for i in range(machine_count) if i not in dead_after]
    if not survivors:
        raise ControlError("no machine survives to host the victims")
    occupancy = {index: 0 for index in survivors}
    victims: dict[int, list[str]] = {index: [] for index in failed}
    for tenant, placement in placements:
        if placement in occupancy:
            occupancy[placement] += 1
        elif placement in victims:
            victims[placement].append(tenant)
    moves = []
    for index in failed:
        machine_moves = []
        for tenant in victims[index]:
            dest = min(occupancy, key=lambda i: (occupancy[i], i))
            occupancy[dest] += 1
            machine_moves.append((tenant, dest))
        moves.append((index, machine_moves))
    return moves


def apply_failures(
    engine: "DatacenterEngine",
    failed: Sequence[int],
    now: float,
) -> list[FailureRecord]:
    """Fail-stop machines in process and re-place their tenants.

    The serial and eager backends use this directly (the sharded
    coordinator runs the same :func:`plan_failures` math and ships the
    checkpoints to destination workers instead).  All failing machines
    are marked dead first — their meters and clocks freeze at the
    already-settled barrier instant — then each victim is rebuilt on
    its surviving destination from the checkpoint captured at this
    barrier via
    :func:`~repro.datacenter.checkpoint.restore_from_checkpoint`.
    """
    from repro.datacenter.checkpoint import restore_from_checkpoint

    checkpoints = engine._last_checkpoints
    if checkpoints is None:
        raise ControlError(
            "FailMachine requires barrier checkpoints: run with a journal "
            "attached or a policy declaring may_fail_machines (e.g. "
            "ChaosPolicy)"
        )
    placements = [
        (binding.tenant.name, binding.machine_index)
        for binding in engine.bindings
    ]
    moves = plan_failures(
        placements, len(engine.machines), set(engine.dead_machines), failed
    )
    engine.dead_machines.update(failed)
    by_name = {binding.tenant.name: binding for binding in engine.bindings}
    records = []
    for index, machine_moves in moves:
        engine.hosts[index].instances.clear()
        replacements = []
        for tenant, dest in machine_moves:
            restore_from_checkpoint(
                engine, by_name[tenant], checkpoints[tenant], dest
            )
            replacements.append(
                MigrationRecord(
                    time=now,
                    tenant=tenant,
                    source_machine_index=index,
                    dest_machine_index=dest,
                    cost_seconds=0.0,
                    warm=True,
                )
            )
        records.append(
            FailureRecord(
                time=now, machine_index=index, replacements=tuple(replacements)
            )
        )
    return records


def merge_run_results(segments: Sequence[RunResult]) -> RunResult:
    """Stitch per-host run segments into one tenant-facing result.

    A never-migrated tenant has one segment, returned untouched.  For
    migrated tenants, samples/outputs/settings concatenate in execution
    order, energy and elapsed sum, and ``mean_power`` is ``None`` —
    a mean across different machines' meters has no single referent
    (use ``DatacenterResult.bills`` for attributed energy instead).
    """
    if not segments:
        raise ControlError("cannot merge an empty run-segment list")
    if len(segments) == 1:
        return segments[0]
    return RunResult(
        samples=[s for segment in segments for s in segment.samples],
        outputs_by_job=[o for segment in segments for o in segment.outputs_by_job],
        settings_used=[s for segment in segments for s in segment.settings_used],
        mean_power=None,
        energy_joules=sum(segment.energy_joules for segment in segments),
        elapsed=sum(segment.elapsed for segment in segments),
    )
