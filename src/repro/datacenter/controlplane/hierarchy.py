"""Hierarchical budget arbitration: group aggregates, then local fills.

The flat :class:`~repro.datacenter.arbiter.PowerArbiter` water-fills
the global budget across every machine in one pass — O(machines) state
through the decision point every barrier.  At 1024 machines that pass
is what the shard barrier has to ship.  This module splits the
decision into two levels so the *cross-shard* half touches only
O(groups) numbers:

1. Machines are assigned to a **fixed set of arbitration groups**
   (round-robin by machine index).  Each group is summarized by the
   knee points of its aggregate demand curve — total bidding weight,
   total cap floor, total cap ceiling.  Those three numbers are all
   the parent needs: below the aggregate floor the group is infeasible,
   above the aggregate ceiling extra watts are worthless, and in
   between the group absorbs watts in proportion to its total weight.
2. The parent water-fills the budget **across group aggregates** into
   per-group sub-budgets, then each group water-fills its sub-budget
   **locally** over its own members.

Both levels reuse :func:`~repro.datacenter.arbiter.water_fill`
unchanged.  The group count is a property of the *policy*, never of
the backend: a serial run and 1/2/4-worker sharded runs group machines
identically, so :meth:`HierarchicalArbiter.decide` is a pure function
of the view and byte-parity across backends holds per policy
(ARCHITECTURE.md invariant 4).  On the sharded backend the
``aggregation = "machine-demand"`` marker lets the shard coordinator
ship per-machine demand scores instead of full tenant views — the
barrier payload the hierarchy was built to shrink.
"""

from __future__ import annotations

from typing import Sequence

from repro.datacenter.caps import (
    ArbiterError,
    machine_cap_ceiling,
    machine_cap_floor,
)
from repro.datacenter.controlplane.actions import (
    Action,
    ClusterView,
    SetCaps,
)
from repro.hardware.machine import Machine

__all__ = ["DEFAULT_GROUPS", "HierarchicalArbiter", "round_robin_groups"]

DEFAULT_GROUPS = 8
"""Default arbitration-group count (clamped to the machine count)."""


def round_robin_groups(machine_count: int, groups: int) -> list[list[int]]:
    """Assign machine indices to ``groups`` round-robin buckets.

    Machine ``i`` lands in group ``i % groups`` (clamped to at most one
    group per machine), so membership depends only on the machine count
    and the configured group count — never on backend or worker count —
    and indices within each group are ascending, which pins the
    floating-point summation order of the group aggregates.
    """
    if machine_count <= 0:
        raise ArbiterError("grouping needs at least one machine")
    if groups <= 0:
        raise ArbiterError(f"group count must be >= 1, got {groups!r}")
    width = min(groups, machine_count)
    buckets: list[list[int]] = [[] for _ in range(width)]
    for index in range(machine_count):
        buckets[index % width].append(index)
    return buckets


class HierarchicalArbiter:
    """Two-level water-fill: budget -> group sub-budgets -> machine caps.

    Args:
        budget_watts: The global budget; must cover the pool's cap
            floors (same feasibility contract as the flat arbiter).
        machines: The machine pool being arbitrated.
        gain: SLA-aware bidding sensitivity — a machine with weighted
            shortfall ``v`` bids ``1 + gain * v``, exactly the flat
            SLA-aware weighting, so the hierarchy changes *where* the
            arithmetic happens, not what demand means.
        groups: Arbitration-group count (clamped to the machine count).
            Fixed per policy so every backend groups identically.
    """

    aggregation = "machine-demand"
    """Barrier-plane marker: this policy consumes per-machine demand
    scores, so a shard coordinator may ship scores instead of tenant
    views when nothing else (journal, faults) needs the full view."""

    def __init__(
        self,
        budget_watts: float,
        machines: Sequence[Machine],
        gain: float = 8.0,
        groups: int = DEFAULT_GROUPS,
    ) -> None:
        if not machines:
            raise ArbiterError("arbiter needs at least one machine")
        if gain < 0:
            raise ArbiterError(f"gain must be >= 0, got {gain!r}")
        self.machines = list(machines)
        self.gain = gain
        self.groups = round_robin_groups(len(self.machines), groups)
        self.floors = [machine_cap_floor(m) for m in self.machines]
        self.ceilings = [machine_cap_ceiling(m) for m in self.machines]
        if budget_watts < sum(self.floors) - 1e-9:
            raise ArbiterError(
                f"budget {budget_watts!r} W is below the pool's floor "
                f"{sum(self.floors):.1f} W ({len(self.machines)} machines "
                "pinned to their slowest P-state)"
            )
        self.budget_watts = float(budget_watts)

    def caps_for_demand(
        self,
        scores: Sequence[float],
        budget_watts: float | None = None,
        floors: Sequence[float] | None = None,
        ceilings: Sequence[float] | None = None,
    ) -> list[float]:
        """Per-machine caps from per-machine demand scores.

        The one arithmetic path of the hierarchy: :meth:`decide` and
        the shard coordinator's demand protocol both land here, so caps
        cannot depend on which side asked.  ``floors``/``ceilings``
        default to the construction-time pool limits; views pass their
        own (identical) copies.  Group aggregates are summed over
        ascending member indices — the float order is part of the
        cross-backend parity contract.
        """
        # Deferred: importing water_fill at module scope closes a cycle
        # (arbiter -> controlplane.actions -> this package -> arbiter).
        from repro.datacenter.arbiter import water_fill

        if len(scores) != len(self.machines):
            raise ArbiterError(
                f"expected {len(self.machines)} scores, got {len(scores)!r}"
            )
        if any(score < 0 for score in scores):
            raise ArbiterError("violation scores must be >= 0")
        floors = self.floors if floors is None else floors
        ceilings = self.ceilings if ceilings is None else ceilings
        budget = self.budget_watts if budget_watts is None else budget_watts
        if budget < sum(floors) - 1e-9:
            raise ArbiterError(
                f"budget {budget!r} W is below the pool's floor "
                f"{sum(floors):.1f} W"
            )
        weights = [1.0 + self.gain * score for score in scores]
        group_weights = [sum(weights[i] for i in g) for g in self.groups]
        group_floors = [sum(floors[i] for i in g) for g in self.groups]
        group_ceilings = [sum(ceilings[i] for i in g) for g in self.groups]
        sub_budgets = water_fill(
            group_weights, group_floors, group_ceilings, budget
        )
        caps = [0.0] * len(self.machines)
        for members, sub_budget in zip(self.groups, sub_budgets):
            local = water_fill(
                [weights[i] for i in members],
                [floors[i] for i in members],
                [ceilings[i] for i in members],
                sub_budget,
            )
            for member, cap in zip(members, local):
                caps[member] = cap
        return caps

    # ------------------------------------------------------------------
    # ControlPolicy protocol
    # ------------------------------------------------------------------
    def initial_budget_watts(self) -> float | None:
        """The construction-time budget governs from time zero."""
        return self.budget_watts

    def barrier_times(self, horizon: float) -> Sequence[float]:
        """The hierarchy needs no barriers beyond the periodic ticks."""
        return ()

    def decide(self, view: ClusterView) -> Sequence[Action]:
        """One ``SetCaps`` from the two-level fill of the view's pool."""
        if len(view.machines) != len(self.machines):
            raise ArbiterError(
                f"arbiter configured for {len(self.machines)} machines got "
                f"a view of {len(view.machines)}"
            )
        caps = self.caps_for_demand(
            view.machine_shortfalls(),
            view.budget_watts,
            [m.cap_floor for m in view.machines],
            [m.cap_ceiling for m in view.machines],
        )
        return [SetCaps(tuple(caps))]
