"""Seeded, declarative gray-failure injection plans.

PR 6's :class:`~repro.datacenter.controlplane.policy.ChaosPolicy`
covers exactly one fault shape — a clean fail-stop with a checkpoint
restore.  Real clusters fail *gray*: heartbeats go stale or noisy, cap
commands get lost or half-applied, machines straggle without dying.
This module makes those regimes first-class and deterministic: a
:class:`FaultPlan` schedules typed faults —

* **sensor faults** — a machine's telemetry drops out, arrives
  delayed, or turns noisy for a window; the engine's control view
  serves held/delayed/perturbed tenant stats while the machine's true
  physics (and therefore billing) is untouched;
* **actuator faults** — a ``SetCaps`` application to a machine fails
  outright or applies only partially at a barrier, driving the
  applier's deadline-based retry loop;
* **stragglers** — a machine's effective clock runs slow for a window
  (its DVFS state is pinned to the slowest P-state regardless of the
  commanded cap), recovering on its own at the window's end;
* **kills** — the existing fail-stop injection, re-expressed in the
  same plan (``ChaosPolicy`` is now sugar over a kills-only plan).

A plan is a *pure function of its seed and config*: the same
:meth:`FaultPlan.generate` arguments always produce byte-identical
schedules, plans embed losslessly in journal headers via
:meth:`FaultPlan.to_config`/:meth:`FaultPlan.from_config`, and every
injected fault and applier retry is journaled as a typed record — so a
faulted run replays and resumes byte-exactly, and serial and sharded
backends stay byte-identical under every fault class.

Plans can also be written by hand and loaded with
:func:`load_fault_plan` (the CLI's ``--faults FILE``): one fault per
line, ``kind key=value ...``, with parse errors naming the line and
the offending field::

    # a gray afternoon
    sensor machine=0 mode=dropout start=8 end=18
    sensor machine=1 mode=noise start=5 end=15 amplitude=0.3
    actuator machine=1 mode=drop start=12 end=24
    straggler machine=0 start=24 end=32
    kill time=26
    config unresponsive_after=6 reintegrate=6
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Sequence

__all__ = [
    "ACTUATOR_MODES",
    "ActuatorFault",
    "FaultError",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "KillFault",
    "RETRY_OUTCOMES",
    "RetryRecord",
    "SENSOR_MODES",
    "SensorFault",
    "StragglerFault",
    "kill_schedule",
    "load_fault_plan",
    "parse_fault_plan",
]

SENSOR_MODES = ("dropout", "delay", "noise")
"""Recognized sensor-fault modes."""

ACTUATOR_MODES = ("drop", "partial")
"""Recognized actuator-fault modes."""

RETRY_OUTCOMES = ("failed", "partial", "succeeded", "abandoned")
"""Outcomes a journaled applier retry attempt may record."""

_EPS = 1e-9


class FaultError(ValueError):
    """Raised for invalid fault plans or fault-injection usage."""


class FaultPlanError(FaultError):
    """Raised for malformed fault-plan files or generation arguments."""


@dataclass(frozen=True)
class SensorFault:
    """One machine's telemetry misbehaves for a window.

    Attributes:
        machine_index: The machine whose heartbeat telemetry lies.
        start: Window start (facility seconds; inclusive).
        end: Window end (exclusive; the machine reports fresh
            telemetry again at the first barrier at or after ``end``).
        mode: ``dropout`` (the control plane sees the last fresh
            stats, aging), ``delay`` (it sees stats from
            ``delay`` seconds ago), or ``noise`` (fresh stats with the
            SLA-shortfall signal deterministically perturbed).
        amplitude: Relative perturbation magnitude for ``noise``.
        delay: Telemetry lag in seconds for ``delay``.
    """

    machine_index: int
    start: float
    end: float
    mode: str = "dropout"
    amplitude: float = 0.25
    delay: float = 5.0

    def __post_init__(self) -> None:
        _check_window(self)
        if self.mode not in SENSOR_MODES:
            raise FaultPlanError(
                f"unknown sensor mode {self.mode!r}; expected one of "
                f"{SENSOR_MODES}"
            )
        if self.amplitude < 0.0:
            raise FaultPlanError(
                f"field 'amplitude' must be >= 0, got {self.amplitude!r}"
            )
        if self.delay <= 0.0:
            raise FaultPlanError(
                f"field 'delay' must be > 0, got {self.delay!r}"
            )


@dataclass(frozen=True)
class ActuatorFault:
    """Cap applications to one machine fail for a window.

    Attributes:
        machine_index: The machine whose DVFS actuator misbehaves.
        start: Window start (inclusive).
        end: Window end (exclusive).
        mode: ``drop`` (the commanded cap is lost outright; the
            machine keeps its previous DVFS state) or ``partial`` (the
            cap moves only ``fraction`` of the way to its target).
        fraction: How far a ``partial`` application gets.
    """

    machine_index: int
    start: float
    end: float
    mode: str = "drop"
    fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self)
        if self.mode not in ACTUATOR_MODES:
            raise FaultPlanError(
                f"unknown actuator mode {self.mode!r}; expected one of "
                f"{ACTUATOR_MODES}"
            )
        if not 0.0 < self.fraction < 1.0:
            raise FaultPlanError(
                f"field 'fraction' must be in (0, 1), got {self.fraction!r}"
            )


@dataclass(frozen=True)
class StragglerFault:
    """One machine's clock runs slow for a window.

    The engine pins the machine to its slowest P-state (its cap floor)
    for the window regardless of the commanded cap — service rates sag
    exactly as a thermally throttled or noisy-neighbor machine's would
    — and restores the commanded state at the first barrier after
    ``end``.  Metering follows the *actual* frequency, so billing
    conservation is unaffected.

    Attributes:
        machine_index: The straggling machine.
        start: Window start (inclusive).
        end: Window end (exclusive).
    """

    machine_index: int
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self)


@dataclass(frozen=True)
class KillFault:
    """A scheduled fail-stop, optionally pinned to a machine.

    Attributes:
        time: The kill instant (becomes a control barrier).
        machine_index: The victim, or None to let the executing
            :class:`~repro.datacenter.controlplane.policy.ChaosPolicy`
            pick a seeded victim among the machines still alive.
    """

    time: float
    machine_index: int | None = None

    def __post_init__(self) -> None:
        if self.time <= 0.0:
            raise FaultPlanError(
                f"field 'time' must be > 0, got {self.time!r}"
            )
        if self.machine_index is not None and self.machine_index < 0:
            raise FaultPlanError(
                f"field 'machine' must be >= 0, got {self.machine_index!r}"
            )


def _check_window(fault: Any) -> None:
    """Shared window validation for the windowed fault types."""
    if fault.machine_index < 0:
        raise FaultPlanError(
            f"field 'machine' must be >= 0, got {fault.machine_index!r}"
        )
    if fault.start < 0.0:
        raise FaultPlanError(
            f"field 'start' must be >= 0, got {fault.start!r}"
        )
    if fault.end <= fault.start:
        raise FaultPlanError("field 'end' must be greater than field 'start'")


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as journaled at the barrier it first bites.

    Attributes:
        time: The barrier at which the fault became active.
        kind: ``sensor``, ``actuator``, ``straggler``, or ``recovered``
            (a straggler window ending and the commanded DVFS state
            being restored).
        machine_index: The affected machine.
        mode: The fault's mode (None for stragglers/recoveries).
    """

    time: float
    kind: str
    machine_index: int
    mode: str | None = None


@dataclass(frozen=True)
class RetryRecord:
    """One applier attempt against a faulted actuator, as journaled.

    Attributes:
        time: The barrier at which the attempt ran.
        machine_index: The machine being commanded.
        target_watts: The cap the applier was trying to land.
        applied_watts: What actually stuck (None when the command was
            dropped outright and the previous DVFS state survived).
        attempt: 1-based attempt counter for this target.
        outcome: One of :data:`RETRY_OUTCOMES` — ``failed`` (dropped,
            retry scheduled), ``partial`` (moved part-way, retry
            scheduled), ``succeeded`` (landed on a retry), or
            ``abandoned`` (the deadline expired; the applier gives up
            until the fault window clears or a new target arrives).
    """

    time: float
    machine_index: int
    target_watts: float
    applied_watts: float | None
    attempt: int
    outcome: str


def kill_schedule(
    horizon: float,
    kills: int,
    seed: int,
    start_fraction: float = 0.3,
    end_fraction: float = 0.8,
) -> tuple[float, ...]:
    """The seeded, sorted fail-stop instants of a generated plan.

    The pure schedule function shared by :meth:`FaultPlan.generate`
    and :func:`~repro.datacenter.controlplane.policy.chaos_kill_times`
    (which delegates here), so ``--chaos`` and a kills-only
    :class:`FaultPlan` compute identical floats for the same seed.
    Kills land in the ``[start_fraction, end_fraction]`` span of the
    horizon: late enough that tenants have warm state worth losing,
    early enough that the recovered run still serves traffic.
    """
    if kills < 0:
        raise FaultPlanError(f"kills must be >= 0, got {kills!r}")
    if not 0.0 < start_fraction < end_fraction <= 1.0:
        raise FaultPlanError(
            f"kill span [{start_fraction!r}, {end_fraction!r}] must satisfy "
            "0 < start < end <= 1"
        )
    rng = random.Random(seed)
    span = (end_fraction - start_fraction) * horizon
    return tuple(
        sorted(
            start_fraction * horizon + rng.random() * span
            for _ in range(kills)
        )
    )


# config-line short names -> FaultPlan tuning field names (also the
# keyword names `generate()` accepts).
_TUNING_FIELDS = {
    "seed": "seed",
    "stale_after": "stale_after_seconds",
    "unresponsive_after": "unresponsive_after_seconds",
    "reintegrate": "reintegrate_seconds",
    "retry_base": "retry_base_seconds",
    "retry_cap": "retry_cap_seconds",
    "retry_deadline": "retry_deadline_seconds",
}


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, fully deterministic gray-failure schedule.

    The plan is pure data: the engine consults it at every control
    barrier (``sensor_at``/``actuator_at``/``straggler_at``) and the
    window edges and kill instants become control barriers themselves
    (:meth:`barrier_times`), so every fault lands exactly when
    scheduled on every backend.

    Attributes:
        sensors: Sensor-fault windows.
        actuators: Actuator-fault windows.
        stragglers: Straggler windows.
        kills: Scheduled fail-stops.
        seed: The plan's seed (victim selection for unpinned kills
            uses ``seed + 1``, matching ``ChaosPolicy``).
        stale_after_seconds: Telemetry age beyond which a machine's
            health degrades from ``fresh`` to ``stale``.
        unresponsive_after_seconds: Telemetry age beyond which it
            degrades to ``unresponsive`` (quarantine).
        reintegrate_seconds: Hysteresis window: a recovered machine
            stays ``stale`` this long after telemetry returns before
            being ``fresh`` again.
        retry_base_seconds: First retry backoff after a failed cap
            application.
        retry_cap_seconds: Backoff ceiling (capped exponential).
        retry_deadline_seconds: Give-up deadline per target, measured
            from the first failed attempt.
    """

    sensors: tuple[SensorFault, ...] = ()
    actuators: tuple[ActuatorFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    kills: tuple[KillFault, ...] = ()
    seed: int = 0
    stale_after_seconds: float = 0.0
    unresponsive_after_seconds: float = 12.0
    reintegrate_seconds: float = 8.0
    retry_base_seconds: float = 4.0
    retry_cap_seconds: float = 16.0
    retry_deadline_seconds: float = 48.0

    def __post_init__(self) -> None:
        if self.stale_after_seconds < 0.0:
            raise FaultPlanError(
                f"field 'stale_after' must be >= 0, "
                f"got {self.stale_after_seconds!r}"
            )
        if self.unresponsive_after_seconds <= self.stale_after_seconds:
            raise FaultPlanError(
                "field 'unresponsive_after' must be greater than "
                "field 'stale_after'"
            )
        for name, value in (
            ("reintegrate", self.reintegrate_seconds),
            ("retry_base", self.retry_base_seconds),
            ("retry_cap", self.retry_cap_seconds),
            ("retry_deadline", self.retry_deadline_seconds),
        ):
            if value <= 0.0:
                raise FaultPlanError(
                    f"field {name!r} must be > 0, got {value!r}"
                )
        object.__setattr__(self, "kills", tuple(
            sorted(self.kills, key=lambda kill: kill.time)
        ))

    # ------------------------------------------------------------------
    # Schedule queries (the engine's per-barrier interface)
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan schedules no faults at all."""
        return not (
            self.sensors or self.actuators or self.stragglers or self.kills
        )

    def max_machine_index(self) -> int:
        """The largest machine index any fault references (-1 if none)."""
        indices = [f.machine_index for f in self.sensors]
        indices += [f.machine_index for f in self.actuators]
        indices += [f.machine_index for f in self.stragglers]
        indices += [
            k.machine_index for k in self.kills if k.machine_index is not None
        ]
        return max(indices, default=-1)

    def barrier_times(self, horizon: float) -> tuple[float, ...]:
        """Every instant the control plane must observe, sorted.

        Window starts and ends (so degradation and recovery land at
        their scheduled instants, not the next periodic tick) plus the
        kill times; the engine deduplicates against its periodic
        barriers and filters to ``(0, horizon]``.
        """
        times: set[float] = set()
        for window in (*self.sensors, *self.actuators, *self.stragglers):
            times.add(window.start)
            times.add(window.end)
        times.update(kill.time for kill in self.kills)
        return tuple(sorted(t for t in times if 0.0 < t <= horizon))

    def _active(
        self, faults: Sequence[Any], machine_index: int, now: float
    ) -> Any | None:
        """The first fault of ``faults`` covering ``machine`` at ``now``."""
        for fault in faults:
            if (
                fault.machine_index == machine_index
                and fault.start - _EPS <= now < fault.end - _EPS
            ):
                return fault
        return None

    def sensor_at(self, machine_index: int, now: float) -> SensorFault | None:
        """The sensor fault active on a machine at ``now``, if any."""
        return self._active(self.sensors, machine_index, now)

    def actuator_at(
        self, machine_index: int, now: float
    ) -> ActuatorFault | None:
        """The actuator fault active on a machine at ``now``, if any."""
        return self._active(self.actuators, machine_index, now)

    def straggler_at(
        self, machine_index: int, now: float
    ) -> StragglerFault | None:
        """The straggler window active on a machine at ``now``, if any."""
        return self._active(self.stragglers, machine_index, now)

    def delayed_machines(self) -> frozenset[int]:
        """Machines with any ``delay``-mode sensor fault (the engine
        keeps a barrier-view history only for these)."""
        return frozenset(
            fault.machine_index
            for fault in self.sensors
            if fault.mode == "delay"
        )

    def noise_unit(self, machine_index: int, now: float) -> float:
        """A deterministic noise draw in ``[-1, 1]``.

        Pure in ``(seed, machine, barrier time)`` via integer seed
        mixing (no string hashing), so every process — serial, sharded
        coordinator, replay, resume — perturbs identically.
        """
        mixed = (
            self.seed * 1000003
            + machine_index * 8191
            + int(round(now * 1e6))
        )
        return 2.0 * random.Random(mixed).random() - 1.0

    # ------------------------------------------------------------------
    # Construction: seeded generation and config round-trips
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        horizon: float,
        machines: int = 0,
        seed: int = 0,
        kills: int = 0,
        sensor_dropouts: int = 0,
        sensor_noise: int = 0,
        actuator_drops: int = 0,
        stragglers: int = 0,
        start_fraction: float = 0.3,
        end_fraction: float = 0.8,
        window_fraction: float = 0.25,
        **tuning: float,
    ) -> "FaultPlan":
        """Generate a seeded plan — a pure function of its arguments.

        Fault windows land in the ``[start_fraction, end_fraction]``
        span of the horizon with lengths up to ``window_fraction`` of
        it; each fault class draws from its own ``seed``-derived RNG
        stream (``seed + 1`` is reserved for kill-victim selection),
        so adding one class never reshuffles another.  ``tuning``
        accepts the plan's threshold/retry fields by their config-line
        short names (``stale_after``, ``unresponsive_after``,
        ``reintegrate``, ``retry_base``, ``retry_cap``,
        ``retry_deadline``).
        """
        if horizon <= 0.0:
            raise FaultPlanError(f"horizon must be > 0, got {horizon!r}")
        windowed = sensor_dropouts + sensor_noise + actuator_drops + stragglers
        if windowed > 0 and machines < 1:
            raise FaultPlanError(
                "windowed faults need a machine pool: pass machines >= 1"
            )
        for name, count in (
            ("sensor_dropouts", sensor_dropouts),
            ("sensor_noise", sensor_noise),
            ("actuator_drops", actuator_drops),
            ("stragglers", stragglers),
        ):
            if count < 0:
                raise FaultPlanError(f"{name} must be >= 0, got {count!r}")

        def windows(count: int, stream: int) -> list[tuple[int, float, float]]:
            rng = random.Random(seed + stream)
            spans = []
            for _ in range(count):
                machine = rng.randrange(machines)
                start = start_fraction * horizon + rng.random() * (
                    (end_fraction - start_fraction) * horizon
                )
                length = (0.2 + 0.8 * rng.random()) * window_fraction * horizon
                spans.append((machine, start, min(start + length, horizon)))
            return spans

        extra = {}
        for short, value in tuning.items():
            if short not in _TUNING_FIELDS:
                raise FaultPlanError(
                    f"unknown tuning field {short!r}; expected one of "
                    f"{tuple(_TUNING_FIELDS)}"
                )
            extra[_TUNING_FIELDS[short]] = value
        extra.pop("seed", None)
        return cls(
            sensors=tuple(
                SensorFault(machine, start, end)
                for machine, start, end in windows(sensor_dropouts, 2)
            )
            + tuple(
                SensorFault(machine, start, end, mode="noise")
                for machine, start, end in windows(sensor_noise, 3)
            ),
            actuators=tuple(
                ActuatorFault(machine, start, end)
                for machine, start, end in windows(actuator_drops, 4)
            ),
            stragglers=tuple(
                StragglerFault(machine, start, end)
                for machine, start, end in windows(stragglers, 5)
            ),
            kills=tuple(
                KillFault(time)
                for time in kill_schedule(
                    horizon, kills, seed, start_fraction, end_fraction
                )
            ),
            seed=seed,
            **extra,
        )

    def to_config(self) -> dict[str, Any]:
        """The plan as JSON-native data (journal-header embeddable).

        Byte-stable under the journal codec's canonical JSON: the same
        plan always serializes to the same bytes, and
        :meth:`from_config` round-trips it exactly.
        """
        return {
            "seed": self.seed,
            "stale_after": self.stale_after_seconds,
            "unresponsive_after": self.unresponsive_after_seconds,
            "reintegrate": self.reintegrate_seconds,
            "retry_base": self.retry_base_seconds,
            "retry_cap": self.retry_cap_seconds,
            "retry_deadline": self.retry_deadline_seconds,
            "sensors": [
                [f.machine_index, f.start, f.end, f.mode, f.amplitude, f.delay]
                for f in self.sensors
            ],
            "actuators": [
                [f.machine_index, f.start, f.end, f.mode, f.fraction]
                for f in self.actuators
            ],
            "stragglers": [
                [f.machine_index, f.start, f.end] for f in self.stragglers
            ],
            "kills": [[k.time, k.machine_index] for k in self.kills],
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_config` data (journal replay)."""
        try:
            return cls(
                sensors=tuple(
                    SensorFault(
                        int(machine),
                        float(start),
                        float(end),
                        str(mode),
                        float(amplitude),
                        float(delay),
                    )
                    for machine, start, end, mode, amplitude, delay in config[
                        "sensors"
                    ]
                ),
                actuators=tuple(
                    ActuatorFault(
                        int(machine),
                        float(start),
                        float(end),
                        str(mode),
                        float(fraction),
                    )
                    for machine, start, end, mode, fraction in config[
                        "actuators"
                    ]
                ),
                stragglers=tuple(
                    StragglerFault(int(machine), float(start), float(end))
                    for machine, start, end in config["stragglers"]
                ),
                kills=tuple(
                    KillFault(
                        float(time),
                        None if machine is None else int(machine),
                    )
                    for time, machine in config["kills"]
                ),
                seed=int(config["seed"]),
                stale_after_seconds=float(config["stale_after"]),
                unresponsive_after_seconds=float(config["unresponsive_after"]),
                reintegrate_seconds=float(config["reintegrate"]),
                retry_base_seconds=float(config["retry_base"]),
                retry_cap_seconds=float(config["retry_cap"]),
                retry_deadline_seconds=float(config["retry_deadline"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise FaultPlanError(
                f"malformed fault-plan config: {error}"
            ) from error


# ----------------------------------------------------------------------
# The --faults FILE format
# ----------------------------------------------------------------------

_LINE_FIELDS: dict[str, dict[str, Any]] = {
    "sensor": {
        "required": ("machine", "start", "end"),
        "optional": ("mode", "amplitude", "delay"),
    },
    "actuator": {
        "required": ("machine", "start", "end"),
        "optional": ("mode", "fraction"),
    },
    "straggler": {"required": ("machine", "start", "end"), "optional": ()},
    "kill": {"required": ("time",), "optional": ("machine",)},
    "config": {"required": (), "optional": tuple(_TUNING_FIELDS)},
}


def _parse_fields(
    tokens: Sequence[str], kind: str, line_number: int
) -> dict[str, str]:
    """Split ``key=value`` tokens, validating names against the kind."""
    spec = _LINE_FIELDS[kind]
    allowed = set(spec["required"]) | set(spec["optional"])
    parsed: dict[str, str] = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep or not key or not value:
            raise FaultPlanError(
                f"line {line_number}: expected key=value, got {token!r}"
            )
        if key not in allowed:
            raise FaultPlanError(
                f"line {line_number}: unknown field {key!r} for {kind!r} "
                f"(expected one of {tuple(sorted(allowed))})"
            )
        if key in parsed:
            raise FaultPlanError(
                f"line {line_number}: field {key!r} given twice"
            )
        parsed[key] = value
    for key in spec["required"]:
        if key not in parsed:
            raise FaultPlanError(
                f"line {line_number}: missing required field {key!r}"
            )
    return parsed


def _field_float(parsed: Mapping[str, str], key: str, line_number: int) -> float:
    """Parse one numeric field, naming it on failure."""
    try:
        return float(parsed[key])
    except ValueError:
        raise FaultPlanError(
            f"line {line_number}: field {key!r}: expected a number, "
            f"got {parsed[key]!r}"
        ) from None


def _field_int(parsed: Mapping[str, str], key: str, line_number: int) -> int:
    """Parse one integer field, naming it on failure."""
    try:
        return int(parsed[key])
    except ValueError:
        raise FaultPlanError(
            f"line {line_number}: field {key!r}: expected an integer, "
            f"got {parsed[key]!r}"
        ) from None


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the ``--faults FILE`` format into a :class:`FaultPlan`.

    One fault per line (``kind key=value ...``; blank lines and ``#``
    comments ignored); ``config`` lines tune plan-level thresholds.
    Raises :class:`FaultPlanError` naming the line number and the
    offending field for every malformed input.
    """
    sensors: list[SensorFault] = []
    actuators: list[ActuatorFault] = []
    stragglers: list[StragglerFault] = []
    kills: list[KillFault] = []
    tuning: dict[str, float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        kind, *tokens = line.split()
        if kind not in _LINE_FIELDS:
            raise FaultPlanError(
                f"line {line_number}: unknown fault kind {kind!r} "
                f"(expected one of {tuple(sorted(_LINE_FIELDS))})"
            )
        parsed = _parse_fields(tokens, kind, line_number)
        try:
            if kind == "sensor":
                sensors.append(
                    SensorFault(
                        machine_index=_field_int(parsed, "machine", line_number),
                        start=_field_float(parsed, "start", line_number),
                        end=_field_float(parsed, "end", line_number),
                        mode=parsed.get("mode", "dropout"),
                        amplitude=(
                            _field_float(parsed, "amplitude", line_number)
                            if "amplitude" in parsed
                            else 0.25
                        ),
                        delay=(
                            _field_float(parsed, "delay", line_number)
                            if "delay" in parsed
                            else 5.0
                        ),
                    )
                )
            elif kind == "actuator":
                actuators.append(
                    ActuatorFault(
                        machine_index=_field_int(parsed, "machine", line_number),
                        start=_field_float(parsed, "start", line_number),
                        end=_field_float(parsed, "end", line_number),
                        mode=parsed.get("mode", "drop"),
                        fraction=(
                            _field_float(parsed, "fraction", line_number)
                            if "fraction" in parsed
                            else 0.5
                        ),
                    )
                )
            elif kind == "straggler":
                stragglers.append(
                    StragglerFault(
                        machine_index=_field_int(parsed, "machine", line_number),
                        start=_field_float(parsed, "start", line_number),
                        end=_field_float(parsed, "end", line_number),
                    )
                )
            elif kind == "kill":
                kills.append(
                    KillFault(
                        time=_field_float(parsed, "time", line_number),
                        machine_index=(
                            _field_int(parsed, "machine", line_number)
                            if "machine" in parsed
                            else None
                        ),
                    )
                )
            else:  # config
                for short, value in parsed.items():
                    if short == "seed":
                        tuning["seed"] = _field_int(parsed, "seed", line_number)
                    else:
                        tuning[_TUNING_FIELDS[short]] = _field_float(
                            parsed, short, line_number
                        )
        except FaultPlanError as error:
            message = str(error)
            if message.startswith("line "):
                raise
            raise FaultPlanError(f"line {line_number}: {message}") from None
    try:
        return FaultPlan(
            sensors=tuple(sensors),
            actuators=tuple(actuators),
            stragglers=tuple(stragglers),
            kills=tuple(kills),
            **tuning,
        )
    except FaultPlanError as error:
        raise FaultPlanError(f"config: {error}") from None


def load_fault_plan(path: str) -> FaultPlan:
    """Load a fault plan file; errors name ``path`` and the line.

    Mirrors the ``--budget-trace`` convention:
    :class:`FaultPlanError` messages come out as
    ``<path>: line <n>: field '<name>' ...``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise FaultPlanError(f"{path}: cannot read fault plan: {error}")
    try:
        return parse_fault_plan(text)
    except FaultPlanError as error:
        raise FaultPlanError(f"{path}: {error}") from None
