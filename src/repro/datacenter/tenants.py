"""Tenants: per-stream SLAs, admission control, and attainment accounting.

A *tenant* is one request stream served by one live PowerDial-controlled
application instance.  Its service level agreement is latency-based (the
§5.4 motivation: power capping "may violate latency service level
agreements"): a request meets the SLA when its end-to-end latency —
arrival to last-item completion — is within ``latency_bound``, and the
tenant's SLA is *attained* over a window when at least
``attainment_target`` of the admitted requests that completed in the
window met it.

Admission control bounds each instance's queue: an arrival finding
``max_queue_depth`` requests already queued (not counting the one in
service) is rejected rather than enqueued, so a bursty tenant degrades
by shedding load instead of building unbounded backlog (rejections are
reported, and count against goodput but not against the latency
attainment of admitted requests).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.datacenter.traffic import TrafficTrace

__all__ = [
    "TenantError",
    "LatencySLA",
    "TenantSpec",
    "CompletedRequest",
    "TenantStats",
    "TenantReport",
]


class TenantError(ValueError):
    """Raised for invalid tenant configuration."""


@dataclass(frozen=True)
class LatencySLA:
    """A latency service level agreement.

    Attributes:
        latency_bound: Maximum acceptable end-to-end latency (seconds).
        attainment_target: Required fraction of admitted requests within
            the bound (e.g. 0.95 for a "95% under 2 s" SLA).
    """

    latency_bound: float
    attainment_target: float = 0.95

    def __post_init__(self) -> None:
        if self.latency_bound <= 0:
            raise TenantError(
                f"latency bound must be positive, got {self.latency_bound!r}"
            )
        if not 0.0 < self.attainment_target <= 1.0:
            raise TenantError(
                f"attainment target must be in (0, 1], got "
                f"{self.attainment_target!r}"
            )


@dataclass(frozen=True)
class TenantSpec:
    """Everything the engine needs to host one tenant.

    Attributes:
        name: Tenant identifier.
        trace: The tenant's request-arrival trace.
        sla: Its latency SLA.
        job_factory: Maps a request index to the application job that
            serves it.
        qos_cap: Accuracy tolerance — the knob table built for this
            tenant is restricted to settings with QoS loss <= this cap.
            ``0.0`` models a knob-poor tenant (exact service, baseline
            only) whose only remedy under contention is machine power;
            ``None`` leaves the full Pareto table available.
        max_queue_depth: Queued (not-yet-started) requests before
            admission control starts rejecting.
        weight: Relative importance in arbiter allocation.
    """

    name: str
    trace: TrafficTrace
    sla: LatencySLA
    job_factory: Callable[[int], Any]
    qos_cap: float | None = None
    max_queue_depth: int = 32
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise TenantError(
                f"max queue depth must be >= 1, got {self.max_queue_depth!r}"
            )
        if self.weight <= 0:
            raise TenantError(f"weight must be positive, got {self.weight!r}")
        if self.qos_cap is not None and self.qos_cap < 0:
            raise TenantError(f"qos cap must be >= 0, got {self.qos_cap!r}")


@dataclass(frozen=True)
class CompletedRequest:
    """One served request's timing.

    Attributes:
        arrival: Global arrival time.
        completion: Machine virtual time when its last item finished.
    """

    arrival: float
    completion: float

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.completion - self.arrival


@dataclass
class TenantStats:
    """Mutable per-tenant accounting the engine updates as it runs."""

    offered: int = 0
    rejected: int = 0
    completions: list[CompletedRequest] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        """Requests accepted by admission control."""
        return self.offered - self.rejected

    def record_offer(self) -> None:
        """Count one arrival (before the admission decision)."""
        self.offered += 1

    def record_rejection(self) -> None:
        """Count one arrival shed by admission control."""
        self.rejected += 1

    def record_completion(self, arrival: float, completion: float) -> None:
        """Record one served request (completions arrive in time order)."""
        if completion < arrival:
            raise TenantError(
                f"completion {completion!r} precedes arrival {arrival!r}"
            )
        self.completions.append(CompletedRequest(arrival, completion))

    def recent_attainment(
        self, bound: float, since: float, until: float
    ) -> float | None:
        """SLA attainment over completions in ``(since, until]``.

        Returns ``None`` when nothing completed in the window (the
        arbiter treats a silent-but-backlogged tenant as fully violating).
        """
        key = lambda record: record.completion
        lo = bisect.bisect_right(self.completions, since, key=key)
        hi = bisect.bisect_right(self.completions, until, key=key)
        window = self.completions[lo:hi]
        if not window:
            return None
        met = sum(1 for r in window if r.latency <= bound)
        return met / len(window)

    def report(self, name: str, sla: LatencySLA) -> "TenantReport":
        """Summarize the run for one tenant."""
        latencies = np.array([r.latency for r in self.completions])
        if latencies.size:
            mean = float(latencies.mean())
            p95 = float(np.percentile(latencies, 95))
            attainment = float((latencies <= sla.latency_bound).mean())
        else:
            mean = p95 = 0.0
            attainment = 0.0
        return TenantReport(
            name=name,
            offered=self.offered,
            admitted=self.admitted,
            rejected=self.rejected,
            completed=len(self.completions),
            mean_latency=mean,
            p95_latency=p95,
            attainment=attainment,
            sla_met=attainment >= sla.attainment_target,
        )


@dataclass(frozen=True)
class TenantReport:
    """End-of-run summary for one tenant.

    Attributes:
        attainment: Fraction of admitted-and-completed requests within
            the latency bound.
        sla_met: Whether attainment reached the SLA's target.
    """

    name: str
    offered: int
    admitted: int
    rejected: int
    completed: int
    mean_latency: float
    p95_latency: float
    attainment: float
    sla_met: bool
