"""A lightweight knobbed service application for datacenter scenarios.

The four paper benchmarks compute real signal-processing kernels and are
too heavy to run thousands of requests through in a multi-tenant sweep.
``ServiceApp`` keeps the paper's computational pattern — initialization
derives control variables, the main loop reads them per item — but with a
perfectly predictable trade-off space: one knob ``n`` sets the inner
iteration count, work is exactly ``n`` units per item, and output error
shrinks like ``1/n``.  Calibrating it through the regular PowerDial
pipeline (influence tracing, calibration, Pareto restriction) yields a
knob table with speedups {1, 1.33, 2, 4} at QoS losses growing with the
skipped iterations, so a tenant's accuracy tolerance maps directly onto
the table's reach.

A *request* is one job: ``items_per_request`` main-loop items, each a
target value the service estimates.  ``request_stream`` builds the seeded
per-request job factory the tenant layer uses.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.apps.base import Application, ItemResult, WorkTracker
from repro.core.knobs import Parameter
from repro.core.qos import DistortionMetric, QoSMetric
from repro.tracing.variables import AddressSpace

__all__ = ["ServiceApp", "request_stream", "service_training_jobs"]

N_MAX = 800
N_VALUES = (200, 400, 600, N_MAX)

# Work units per inner iteration.  On the experiment machines (1e6 work
# units per GHz-second, 8 cores at 2.4 GHz) one item at the default knob
# takes ~42 ms of virtual time, so a service instance beats at ~24 Hz —
# the heartbeat granularity of the paper's benchmarks.
WORK_SCALE = 1.0e3


class ServiceApp(Application):
    """Estimates request values with a knob-controlled iteration count."""

    name = "service"

    @classmethod
    def parameters(cls) -> tuple[Parameter, ...]:
        return (Parameter("n", N_VALUES, default=N_MAX),)

    def initialize(self, config: Mapping[str, Any], space: AddressSpace) -> None:
        space.write("iterations", config["n"] * 1)

    def prepare(self, job: Any):
        # A request job is a list of target float values.
        return list(job)

    def process_item(
        self, item: Any, space: AddressSpace, tracker: WorkTracker
    ) -> ItemResult:
        iterations = int(space.read("iterations"))
        work = float(iterations) * WORK_SCALE
        tracker.add("serve", work)
        # Deterministic 1/n convergence toward the true value.
        estimate = item * (1.0 + 1.0 / iterations)
        return ItemResult(output=estimate, work=work)

    def batch_process(
        self, items: list[Any], space: AddressSpace, tracker: WorkTracker
    ) -> tuple[np.ndarray, float]:
        """Vectorized twin of :meth:`process_item` for the batched kernel.

        Processes ``items`` under the *current* knob configuration in one
        numpy expression, returning ``(outputs, work_per_item)``.  The
        contract (see :mod:`repro.core.batched`): outputs must be
        float-for-float equal to per-item :meth:`process_item` calls, and
        the per-item work must be a single constant for the whole batch —
        which holds here because work depends only on the knob, and the
        kernel never lets a batch span a knob change.
        """
        iterations = int(space.read("iterations"))
        work = float(iterations) * WORK_SCALE
        tracker.add("serve", work * len(items))
        # Same scalar multiplier as process_item, applied elementwise:
        # IEEE multiplication is bit-identical either way.
        outputs = np.asarray(items, dtype=float) * (1.0 + 1.0 / iterations)
        return outputs, work

    def qos_metric(self) -> QoSMetric:
        return DistortionMetric(lambda outputs: np.asarray(outputs, dtype=float))

    def threads(self) -> int:
        return 8


def request_stream(
    seed: int, items_per_request: int = 5
) -> Callable[[int], list[float]]:
    """A deterministic request-index -> job factory for one tenant.

    Each request is ``items_per_request`` positive floats; distinct
    request indices draw from independent, reproducible substreams.
    """
    if items_per_request < 1:
        raise ValueError(
            f"items_per_request must be >= 1, got {items_per_request!r}"
        )

    def make_job(index: int) -> list[float]:
        rng = np.random.default_rng((seed, index))
        return list(rng.uniform(1.0, 10.0, size=items_per_request))

    return make_job


def service_training_jobs(count: int = 3, items: int = 8, seed: int = 17):
    """Calibration inputs for :class:`ServiceApp`."""
    rng = np.random.default_rng(seed)
    return [list(rng.uniform(1.0, 10.0, size=items)) for _ in range(count)]
