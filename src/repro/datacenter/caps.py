"""Power-cap physics: what caps a machine can enforce, and how.

The leaf module under both the arbiter and the control plane: given a
:class:`~repro.hardware.machine.Machine`, what is the lowest cap it can
guarantee while staying powered on (:func:`machine_cap_floor`), the cap
above which capping is slack (:func:`machine_cap_ceiling`), and which
DVFS setting enforces a given cap (:func:`frequency_for_cap` — the
paper's §5.4 mechanism: the fastest P-state whose full-load system
power stays under the cap, so the cap holds even at saturation).

:class:`ArbiterError` lives here too so cap validation anywhere in the
control plane can raise it without importing the arbiter's allocation
machinery (re-exported from :mod:`repro.datacenter.arbiter`, its
historical home).
"""

from __future__ import annotations

from repro.hardware.machine import Machine

__all__ = [
    "ArbiterError",
    "machine_cap_floor",
    "machine_cap_ceiling",
    "frequency_for_cap",
]


class ArbiterError(ValueError):
    """Raised for invalid arbitration or cap-validation input."""


def machine_cap_floor(machine: Machine) -> float:
    """Lowest enforceable cap: full-load power in the slowest P-state.

    Machines stay powered on (the paper's testbed never powers servers
    off), so no DVFS setting can guarantee less than this under load.
    """
    slowest = machine.processor.pstates[-1]
    return machine.power_model.power(
        1.0,
        slowest,
        machine.processor.max_frequency_ghz,
        machine.processor.pstates[0].voltage,
    )


def machine_cap_ceiling(machine: Machine) -> float:
    """Full-load power in the fastest P-state; caps above this are slack."""
    fastest = machine.processor.pstates[0]
    return machine.power_model.power(
        1.0,
        fastest,
        machine.processor.max_frequency_ghz,
        machine.processor.pstates[0].voltage,
    )


def frequency_for_cap(machine: Machine, cap_watts: float) -> float:
    """The fastest frequency whose full-load power respects ``cap_watts``.

    Falls back to the slowest P-state when the cap is below the floor
    (the machine cannot do better while staying on).
    """
    processor = machine.processor
    v_max = processor.pstates[0].voltage
    for pstate in processor.pstates:  # ordered fastest first
        watts = machine.power_model.power(
            1.0, pstate, processor.max_frequency_ghz, v_max
        )
        if watts <= cap_watts + 1e-9:
            return pstate.frequency_ghz
    return processor.pstates[-1].frequency_ghz
