"""Event-driven datacenter serving: many PowerDial instances, one budget.

The paper evaluates PowerDial one instance at a time (§5.4 power capping)
or through a closed-form cluster model (§5.5 consolidation).  This
package is the shared-infrastructure layer between those two views: a
discrete-event simulation of N live, interleaved PowerDial-controlled
instances on M machines, serving open per-tenant request streams under a
single facility power budget.

Module map:

* :mod:`~repro.datacenter.engine` — the discrete-event core: an
  incrementally merged global event stream (arrivals, control
  barriers) interleaving per-machine virtual clocks; cooperative
  round-robin scheduling of instances via the runtime's resumable
  ``step()`` API; per-request latency accounting.  Idle machines are
  skipped per event and settled in O(1) when they next matter, so cost
  scales with events, not events × machines.
* :mod:`~repro.datacenter.controlplane` — the pluggable control plane:
  a :class:`~repro.datacenter.controlplane.actions.ControlPolicy`
  receives an immutable cluster view at every barrier and returns
  typed actions (``SetCaps``, ``SetBudget``, ``Migrate``) that every
  backend validates and applies through one shared applier — budget
  schedules (demand-response traces, §5.4-style fleet-wide cap
  shocks) and instance migration live here.
* :mod:`~repro.datacenter.faults` — seeded, declarative gray-failure
  injection: a :class:`~repro.datacenter.faults.FaultPlan` schedules
  sensor dropout/delay/noise windows, actuator drop/partial windows,
  stragglers, and fail-stop kills as a pure function of (seed,
  config); the engine observes through the plan, retries failed cap
  applications with capped deterministic backoff, and journals every
  fault and retry attempt.
* :mod:`~repro.datacenter.shard` — the multiprocess backend: machines
  partitioned across forked workers that run independently between
  control barriers and exchange only tenant views, validated plans,
  and migrant states, with results identical to the serial scheduler.
* :mod:`~repro.datacenter.billing` — the per-tenant metering layer:
  ledgers the engine charges per dispatched ``step()``, end-of-run
  :class:`~repro.datacenter.billing.TenantBill` composition (energy,
  Eq. 9–11 QoS-loss-seconds, admission rejections), and the
  energy-conservation accounting (billed + unattributed idle == total
  metered pool energy).
* :mod:`~repro.datacenter.traffic` — open-loop arrival traces: Poisson,
  diurnal, bursty, and epoch profiles reusing
  :class:`~repro.cluster.workload.LoadProfile`.
* :mod:`~repro.datacenter.tenants` — tenant specs, latency SLAs,
  admission control limits, and attainment accounting.
* :mod:`~repro.datacenter.caps` — power-cap physics: enforceable cap
  floors/ceilings per machine and the cap -> P-state mapping.
* :mod:`~repro.datacenter.arbiter` — the hierarchical power arbiter:
  global budget -> per-machine DVFS caps -> each instance's existing
  heartbeat controller, with periodic reallocation toward SLA-violating
  tenants; now a thin :class:`~repro.datacenter.controlplane.actions.
  ControlPolicy` adapter over the water-filling math.
* :mod:`~repro.datacenter.service` — a lightweight knobbed service
  application whose calibrated trade-off space is exactly predictable,
  so datacenter sweeps stay fast.
"""

from repro.datacenter.arbiter import (
    ArbiterError,
    ArbiterPolicy,
    PowerArbiter,
    frequency_for_cap,
    machine_cap_ceiling,
    machine_cap_floor,
    water_fill,
)
from repro.datacenter.checkpoint import (
    MachineCheckpoint,
    TenantCheckpoint,
)
from repro.datacenter.controlplane import (
    POLICY_NAMES,
    BudgetSchedule,
    BudgetTraceError,
    ChaosPolicy,
    ClusterView,
    ConsolidatingPolicy,
    ControlError,
    ControlPolicy,
    DegradedModePolicy,
    FailMachine,
    FailureRecord,
    HierarchicalArbiter,
    MachineView,
    MigratingPolicy,
    Migrate,
    MigrationRecord,
    ScheduledBudgetPolicy,
    SetBudget,
    SetCaps,
    TenantView,
    build_policy,
    chaos_kill_times,
    load_budget_trace,
    parse_budget_trace,
)
from repro.datacenter.billing import (
    CONSERVATION_TOLERANCE,
    BillingError,
    TenantBill,
    TenantLedger,
    compose_bill,
    conservation_summary,
    qos_loss_seconds,
)
from repro.datacenter.engine import (
    ENGINE_BACKENDS,
    DatacenterEngine,
    DatacenterResult,
    EngineError,
    InstanceBinding,
)
from repro.datacenter.faults import (
    ActuatorFault,
    FaultError,
    FaultPlan,
    FaultPlanError,
    FaultRecord,
    KillFault,
    RetryRecord,
    SensorFault,
    StragglerFault,
    kill_schedule,
    load_fault_plan,
    parse_fault_plan,
)
from repro.datacenter.shard import fork_available, partition_machines
from repro.datacenter.service import (
    ServiceApp,
    request_stream,
    service_training_jobs,
)
from repro.datacenter.tenants import (
    CompletedRequest,
    LatencySLA,
    TenantError,
    TenantReport,
    TenantSpec,
    TenantStats,
)
from repro.datacenter.traffic import (
    TrafficError,
    TrafficTrace,
    burst_trace,
    diurnal_trace,
    poisson_trace,
    profile_trace,
)

__all__ = [
    "ArbiterError",
    "ArbiterPolicy",
    "PowerArbiter",
    "frequency_for_cap",
    "machine_cap_ceiling",
    "machine_cap_floor",
    "water_fill",
    "POLICY_NAMES",
    "BudgetSchedule",
    "BudgetTraceError",
    "ChaosPolicy",
    "ClusterView",
    "ConsolidatingPolicy",
    "ControlError",
    "ControlPolicy",
    "DegradedModePolicy",
    "FailMachine",
    "FailureRecord",
    "HierarchicalArbiter",
    "MachineCheckpoint",
    "MachineView",
    "MigratingPolicy",
    "Migrate",
    "MigrationRecord",
    "ScheduledBudgetPolicy",
    "SetBudget",
    "SetCaps",
    "TenantCheckpoint",
    "TenantView",
    "build_policy",
    "chaos_kill_times",
    "load_budget_trace",
    "parse_budget_trace",
    "BillingError",
    "CONSERVATION_TOLERANCE",
    "TenantBill",
    "TenantLedger",
    "compose_bill",
    "conservation_summary",
    "qos_loss_seconds",
    "ENGINE_BACKENDS",
    "DatacenterEngine",
    "DatacenterResult",
    "EngineError",
    "InstanceBinding",
    "ActuatorFault",
    "FaultError",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "KillFault",
    "RetryRecord",
    "SensorFault",
    "StragglerFault",
    "kill_schedule",
    "load_fault_plan",
    "parse_fault_plan",
    "fork_available",
    "partition_machines",
    "ServiceApp",
    "request_stream",
    "service_training_jobs",
    "CompletedRequest",
    "LatencySLA",
    "TenantError",
    "TenantReport",
    "TenantSpec",
    "TenantStats",
    "TrafficError",
    "TrafficTrace",
    "burst_trace",
    "diurnal_trace",
    "poisson_trace",
    "profile_trace",
]
