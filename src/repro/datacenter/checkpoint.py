"""Per-barrier cluster checkpoints: the unit of crash recovery.

PR 5's warm migration proved a tenant instance is fully described by
plain data — a :class:`~repro.core.runtime.RuntimeSnapshot`, the queued
``(job, tag)`` pairs, the stats/ledger values, and the arrival-stream
cursor.  This module generalizes that observation from "one migrating
instance" to "every tenant, every barrier": a
:class:`TenantCheckpoint` / :class:`MachineCheckpoint` pair captures
the whole cluster's recoverable state at a control barrier, *without*
disturbing the live run (the runtime is peeked, never drained).

Two consumers:

* the run journal (:mod:`repro.datacenter.journal`) writes the
  checkpoints into every barrier record, which is what makes a crashed
  run resumable and a chaos run explainable;
* machine-failure injection (:class:`~repro.datacenter.controlplane.
  actions.FailMachine`) re-places a dead machine's tenants from the
  checkpoint captured at the same barrier, via
  :func:`restore_from_checkpoint`.

Checkpoints are captured *before* the barrier's control decision runs,
with every host settled to the barrier instant — so the values are
exact on every backend, and a restore rebuilds precisely the state the
policy saw.

Rebuilding pending requests relies on the tenant's ``job_factory``
being a pure function of the request index (true for every factory in
this repo — jobs derive from a seeded per-index RNG); the checkpoint
carries only the ``(index, arrival)`` tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.datacenter.tenants import CompletedRequest, TenantStats
from repro.datacenter.billing import TenantLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.engine import DatacenterEngine, InstanceBinding

__all__ = [
    "TenantCheckpoint",
    "MachineCheckpoint",
    "capture_tenant_checkpoint",
    "capture_machine_checkpoint",
    "restore_from_checkpoint",
]


@dataclass(frozen=True)
class TenantCheckpoint:
    """One tenant's full recoverable state at a control barrier.

    Plain data (floats, ints, tuples) so it pickles across shard
    workers and serializes into the journal unchanged.

    Attributes:
        tenant: The tenant's name.
        machine_index: Placement at the barrier.
        offered: Arrivals dispatched so far — also the tenant's
            arrival-stream cursor (every dispatched arrival records an
            offer exactly once, so ``trace_pos == offered``).
        rejected: Admission rejections so far.
        completions: ``(arrival, completion)`` pairs of every served
            request so far, in completion order.
        next_request: The tenant's next request index.
        pending: ``(index, arrival)`` tags of requests admitted but not
            yet started; jobs are rebuilt from the tenant's
            ``job_factory`` on restore.
        energy_joules: Billing-ledger watt-seconds at the barrier.
        busy_seconds: Billing-ledger machine-seconds at the barrier.
        steps: Billing-ledger step count at the barrier.
        finished: Whether the instance had drained.
        snapshot: The runtime's warm control state
            (:class:`~repro.core.runtime.RuntimeSnapshot`).
    """

    tenant: str
    machine_index: int
    offered: int
    rejected: int
    completions: tuple[tuple[float, float], ...]
    next_request: int
    pending: tuple[tuple[int, float], ...]
    energy_joules: float
    busy_seconds: float
    steps: int
    finished: bool
    snapshot: Any


@dataclass(frozen=True)
class MachineCheckpoint:
    """One machine's metered state at a control barrier.

    Attributes:
        index: Position in the engine's machine pool.
        now: The machine clock at the barrier (hosts are settled to the
            barrier instant before capture).
        frequency_ghz: Current DVFS frequency — the *applied* ground
            truth, which under an actuator fault or straggler window
            (:mod:`repro.datacenter.faults`) may lag the commanded cap
            recorded in the barrier's ``caps``.
        energy_joules: Total metered energy so far.
        idle_energy_joules: Unattributed idle energy so far.
        mean_power: Meter mean power so far (0.0 before observations).
        alive: False once the machine has fail-stopped.
    """

    index: int
    now: float
    frequency_ghz: float
    energy_joules: float
    idle_energy_joules: float
    mean_power: float
    alive: bool


def capture_tenant_checkpoint(
    binding: "InstanceBinding",
) -> TenantCheckpoint:
    """Checkpoint one tenant binding without disturbing the live run."""
    stats = binding.stats
    return TenantCheckpoint(
        tenant=binding.tenant.name,
        machine_index=binding.machine_index,
        offered=stats.offered,
        rejected=stats.rejected,
        completions=tuple(
            (done.arrival, done.completion) for done in stats.completions
        ),
        next_request=binding.next_request,
        pending=tuple(tag for _, tag in binding.runtime.peek_pending()),
        energy_joules=binding.ledger.energy_joules,
        busy_seconds=binding.ledger.busy_seconds,
        steps=binding.ledger.steps,
        finished=binding.finished,
        snapshot=binding.runtime.snapshot(),
    )


def capture_machine_checkpoint(
    engine: "DatacenterEngine", index: int
) -> MachineCheckpoint:
    """Checkpoint one machine's metered state at a settled barrier."""
    machine = engine.machines[index]
    try:
        mean_power = machine.meter.mean_power()
    except Exception:
        mean_power = 0.0
    return MachineCheckpoint(
        index=index,
        now=machine.now,
        frequency_ghz=machine.processor.frequency_ghz,
        energy_joules=machine.meter.energy_joules,
        idle_energy_joules=engine.idle_energy_joules[index],
        mean_power=mean_power,
        alive=index not in engine.dead_machines,
    )


def restore_from_checkpoint(
    engine: "DatacenterEngine",
    binding: "InstanceBinding",
    checkpoint: TenantCheckpoint,
    dest_machine_index: int,
) -> None:
    """Rebuild a tenant on ``dest_machine_index`` from a checkpoint.

    The crash-recovery half of machine failure: a fresh runtime is
    built via the binding's ``runtime_factory``, the checkpoint's warm
    snapshot restores the control state, stats and ledger are rebuilt
    to the checkpointed values, and the pending queue is re-fed from
    the checkpoint's ``(index, arrival)`` tags with fresh completion
    hooks.  The request that was in flight on the dead machine (if
    any) is lost — fail-stop semantics — but every joule it burned
    stayed metered and billed on the dead machine, so billing
    conservation is unaffected.  Identical code runs on the serial and
    sharded backends (in the destination worker), which is what keeps
    post-failure runs byte-identical across backends.
    """
    from repro.datacenter.controlplane.actions import ControlError

    if binding.runtime_factory is None:
        raise ControlError(
            f"tenant {binding.tenant.name!r} has no runtime_factory; "
            "failure recovery requires one to rebuild the instance on a "
            "surviving machine"
        )
    machine = engine.machines[dest_machine_index]
    runtime = binding.runtime_factory(machine)
    if runtime.machine is not machine:
        raise ControlError(
            f"runtime_factory for tenant {binding.tenant.name!r} returned "
            "a runtime bound to the wrong machine"
        )
    stats = TenantStats(
        offered=checkpoint.offered,
        rejected=checkpoint.rejected,
        completions=[
            CompletedRequest(arrival, completion)
            for arrival, completion in checkpoint.completions
        ],
    )
    binding.runtime = runtime
    binding.machine_index = dest_machine_index
    binding.stats = stats
    binding.ledger = TenantLedger(
        energy_joules=checkpoint.energy_joules,
        busy_seconds=checkpoint.busy_seconds,
        steps=checkpoint.steps,
    )
    # The dead machine's runtime segment died with it: queued samples
    # from the lost segment are unrecoverable by design (the billing
    # ledger, not the segment, is the source of truth for charges).
    binding.run_segments = []
    binding.next_request = checkpoint.next_request
    binding.finished = False
    binding.starved = False
    runtime.begin()
    if checkpoint.snapshot is not None:
        runtime.restore(checkpoint.snapshot)
    for index, arrival in checkpoint.pending:
        job = binding.tenant.job_factory(index)
        runtime.feed(
            job,
            on_complete=lambda completion, arrival=arrival: (
                stats.record_completion(arrival, completion)
            ),
            tag=(index, arrival),
        )
    engine.hosts[dest_machine_index].instances.append(binding)
