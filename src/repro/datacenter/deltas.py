"""Typed, byte-stable delta codec for the shard barrier plane.

The sharded backend's barrier-protocol v2 (:mod:`repro.datacenter.
shard`) moves bulk barrier state through preallocated
``multiprocessing.shared_memory`` segments instead of pickling whole
snapshots over pipes.  This module is the wire format of those
segments: fixed-width little-endian records, one codec shared by the
worker (encode) and coordinator (decode) sides, with zero pickling on
the hot path.

Three record types cross the barrier plane:

* **tenant records** — the dynamic fields of one
  :class:`~repro.datacenter.controlplane.actions.TenantView`
  (placement, queue depth, SLA shortfall, billing-ledger counters,
  finished flag) keyed by the tenant's binding index.  The static
  fields (name, weight) never change, so both sides hold them in
  tables and a record is a *full snapshot of the dynamic fields* —
  applying any record sequence ending in the current one reproduces
  the in-process view bit-for-bit, which is what makes the deltas
  composable (ARCHITECTURE.md invariant 10).
* **score records** — one machine's weighted SLA-shortfall demand
  (the per-machine aggregate a hierarchical arbiter consumes), keyed
  by machine index.
* **cap records** — one machine's applied cap in watts, keyed by
  machine index (the downstream half of the barrier).

"Delta" means *which* keys get records, never lossy field diffs:
a sender ships a record exactly when its packed bytes differ from the
bytes it last shipped for that key, so the receiver's resident table
is always bitwise equal to the sender's current state.  Encoding is
canonical (struct-packed, no hashing, no compression), so the same
values always produce the same bytes — byte-stable across processes,
runs, and platforms of the same endianness convention (the format
pins little-endian explicitly).

Every segment starts with a :data:`HEADER` — ``(seq, count)`` — where
``seq`` is the barrier ordinal (1-based; a freshly zeroed segment
reads ``seq == 0``, i.e. "nothing published") and ``count`` is the
number of records that follow.  Writers publish payload first and the
header's ``seq`` word last, so a reader that observes the expected
``seq`` is guaranteed a complete payload.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.datacenter.controlplane.actions import TenantView

__all__ = [
    "CAP_RECORD",
    "HEADER",
    "SCORE_RECORD",
    "TENANT_RECORD",
    "decode_cap_records",
    "decode_score_records",
    "decode_tenant_records",
    "encode_cap_record",
    "encode_score_record",
    "encode_tenant_record",
    "publish",
    "read_header",
]

HEADER = struct.Struct("<qq")
"""Segment header: ``(seq, count)``; ``seq`` is written last."""

TENANT_RECORD = struct.Struct("<iiqq?ddd")
"""One tenant-view delta: ``(binding_index, machine_index,
pending_jobs, steps, finished, sla_shortfall, energy_joules,
busy_seconds)`` — every dynamic :class:`TenantView` field, exact."""

SCORE_RECORD = struct.Struct("<id")
"""One machine-demand delta: ``(machine_index, weighted_shortfall)``."""

CAP_RECORD = struct.Struct("<id")
"""One applied-cap delta: ``(machine_index, cap_watts)``."""


def encode_tenant_record(binding_index: int, view: TenantView) -> bytes:
    """Pack one tenant view's dynamic fields into its wire record.

    Ints and bools pack exactly; floats pack as IEEE-754 doubles, so
    decoding reproduces every field bit-for-bit.  The static fields
    (``name``, ``weight``) are supplied from resident tables at decode
    time — they are immutable per binding index for the whole run.
    """
    return TENANT_RECORD.pack(
        binding_index,
        view.machine_index,
        view.pending_jobs,
        view.steps,
        view.finished,
        view.sla_shortfall,
        view.energy_joules,
        view.busy_seconds,
    )


def decode_tenant_records(
    buffer,
    count: int,
    names: Sequence[str],
    weights: Sequence[float],
) -> list[tuple[int, TenantView]]:
    """Unpack ``count`` tenant records into full :class:`TenantView`\\ s.

    ``names``/``weights`` are the static per-binding tables both sides
    hold.  Returns ``(binding_index, view)`` pairs in wire order;
    applying them over the receiver's resident table (last write per
    index wins) reproduces the sender's views bit-for-bit.
    """
    views: list[tuple[int, TenantView]] = []
    offset = HEADER.size
    for _ in range(count):
        (
            binding_index,
            machine_index,
            pending_jobs,
            steps,
            finished,
            sla_shortfall,
            energy_joules,
            busy_seconds,
        ) = TENANT_RECORD.unpack_from(buffer, offset)
        offset += TENANT_RECORD.size
        views.append(
            (
                binding_index,
                TenantView(
                    name=names[binding_index],
                    machine_index=machine_index,
                    weight=weights[binding_index],
                    sla_shortfall=sla_shortfall,
                    pending_jobs=pending_jobs,
                    finished=finished,
                    energy_joules=energy_joules,
                    busy_seconds=busy_seconds,
                    steps=steps,
                ),
            )
        )
    return views


def encode_score_record(machine_index: int, score: float) -> bytes:
    """Pack one machine's weighted-shortfall demand record."""
    return SCORE_RECORD.pack(machine_index, score)


def decode_score_records(buffer, count: int) -> list[tuple[int, float]]:
    """Unpack ``count`` score records as ``(machine_index, score)``."""
    return list(
        SCORE_RECORD.iter_unpack(
            bytes(buffer[HEADER.size : HEADER.size + count * SCORE_RECORD.size])
        )
    )


def encode_cap_record(machine_index: int, cap_watts: float) -> bytes:
    """Pack one machine's applied-cap record."""
    return CAP_RECORD.pack(machine_index, cap_watts)


def decode_cap_records(buffer, count: int) -> list[tuple[int, float]]:
    """Unpack ``count`` cap records as ``(machine_index, cap_watts)``."""
    return list(
        CAP_RECORD.iter_unpack(
            bytes(buffer[HEADER.size : HEADER.size + count * CAP_RECORD.size])
        )
    )


def publish(buffer, seq: int, records: Iterable[bytes]) -> int:
    """Write ``records`` then the header into ``buffer``; return count.

    The payload and the header's ``count`` word land before the ``seq``
    word: a reader polling for ``seq`` therefore never observes a
    half-published barrier.  Returns the record count written.
    """
    offset = HEADER.size
    count = 0
    for record in records:
        end = offset + len(record)
        buffer[offset:end] = record
        offset = end
        count += 1
    # count first, seq last — seq is the ready flag.
    buffer[8:16] = struct.pack("<q", count)
    buffer[0:8] = struct.pack("<q", seq)
    return count


def read_header(buffer) -> tuple[int, int]:
    """Read ``(seq, count)`` from a segment's header."""
    return HEADER.unpack_from(buffer, 0)
