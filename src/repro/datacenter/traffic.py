"""Open-loop request-arrival traces for datacenter scenarios.

The paper's server experiments (§5.4–5.5) drive one instance at a time;
the datacenter engine instead serves *open* per-tenant request streams.
This module generates the arrival processes: homogeneous Poisson
(:func:`poisson_trace`), the diurnal load curve every user-facing service
sees (:func:`diurnal_trace`), on/off burst patterns
(:func:`burst_trace`), and epoch-wise traces driven by the §5.5
:class:`~repro.cluster.workload.LoadProfile` utilization profiles
(:func:`profile_trace`), so the closed-form consolidation sweeps and the
event-driven engine can be exercised at matching operating points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.queueing import poisson_arrivals
from repro.cluster.workload import LoadProfile

__all__ = [
    "TrafficError",
    "TrafficTrace",
    "poisson_trace",
    "diurnal_trace",
    "burst_trace",
    "profile_trace",
]


class TrafficError(ValueError):
    """Raised for invalid traffic-generation parameters."""


@dataclass(frozen=True)
class TrafficTrace:
    """One tenant's request arrivals over a simulation horizon.

    Attributes:
        name: Generator label (for reports).
        arrivals: Sorted arrival times in seconds, all within
            ``[0, duration)``.
        duration: Simulation horizon the trace covers.
    """

    name: str
    arrivals: tuple[float, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TrafficError(f"duration must be positive, got {self.duration!r}")
        if any(b < a for a, b in zip(self.arrivals, self.arrivals[1:])):
            raise TrafficError("arrival times must be sorted")
        if self.arrivals and not (
            self.arrivals[0] >= 0.0 and self.arrivals[-1] < self.duration
        ):
            raise TrafficError("arrivals must lie within [0, duration)")

    @property
    def count(self) -> int:
        """Total requests in the trace."""
        return len(self.arrivals)

    def mean_rate(self) -> float:
        """Average arrival rate over the horizon (requests/second)."""
        return len(self.arrivals) / self.duration


def poisson_trace(
    rate: float, duration: float, seed: int = 0, name: str = "poisson"
) -> TrafficTrace:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""
    arrivals = poisson_arrivals(rate, duration, seed=seed)
    return TrafficTrace(name=name, arrivals=tuple(arrivals), duration=duration)


def _thinned_poisson(
    intensity, peak_rate: float, duration: float, seed: int
) -> tuple[float, ...]:
    """Nonhomogeneous Poisson via thinning a ``peak_rate`` stream."""
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / peak_rate))
        if clock >= duration:
            return tuple(arrivals)
        if rng.uniform() * peak_rate < intensity(clock):
            arrivals.append(clock)


def diurnal_trace(
    peak_rate: float,
    duration: float,
    period: float = 120.0,
    trough_fraction: float = 0.2,
    seed: int = 0,
    name: str = "diurnal",
) -> TrafficTrace:
    """A day/night sinusoidal load curve compressed into ``period`` seconds.

    Intensity swings between ``trough_fraction * peak_rate`` and
    ``peak_rate`` on a sinusoid starting at the trough, so short horizons
    see a full quiet-then-busy cycle.
    """
    if peak_rate <= 0:
        raise TrafficError(f"peak rate must be positive, got {peak_rate!r}")
    if period <= 0:
        raise TrafficError(f"period must be positive, got {period!r}")
    if not 0.0 <= trough_fraction <= 1.0:
        raise TrafficError(
            f"trough fraction must be in [0, 1], got {trough_fraction!r}"
        )
    mid = 0.5 * (1.0 + trough_fraction)
    swing = 0.5 * (1.0 - trough_fraction)

    def intensity(t: float) -> float:
        return peak_rate * (mid - swing * np.cos(2.0 * np.pi * t / period))

    return TrafficTrace(
        name=name,
        arrivals=_thinned_poisson(intensity, peak_rate, duration, seed),
        duration=duration,
    )


def burst_trace(
    base_rate: float,
    burst_rate: float,
    duration: float,
    burst_every: float = 40.0,
    burst_length: float = 8.0,
    seed: int = 0,
    name: str = "burst",
) -> TrafficTrace:
    """A low baseline punctuated by periodic high-rate bursts.

    Mirrors the "intermittent load spikes" the paper cites from Barroso &
    Hölzle: intensity is ``base_rate`` except during the first
    ``burst_length`` seconds of every ``burst_every``-second window,
    where it is ``burst_rate``.
    """
    if base_rate < 0 or burst_rate <= 0:
        raise TrafficError("rates must be positive (base may be zero)")
    if burst_rate < base_rate:
        raise TrafficError(
            f"burst rate {burst_rate!r} must be >= base rate {base_rate!r}"
        )
    if not 0.0 < burst_length <= burst_every:
        raise TrafficError(
            f"burst length {burst_length!r} must be in (0, {burst_every!r}]"
        )

    def intensity(t: float) -> float:
        return burst_rate if (t % burst_every) < burst_length else base_rate

    return TrafficTrace(
        name=name,
        arrivals=_thinned_poisson(intensity, burst_rate, duration, seed),
        duration=duration,
    )


def profile_trace(
    profile: LoadProfile,
    peak_rate: float,
    seed: int = 0,
    name: str = "profile",
) -> TrafficTrace:
    """Arrivals following a §5.5 utilization profile.

    Each epoch of the :class:`~repro.cluster.workload.LoadProfile` offers
    Poisson load at ``utilization * peak_rate``, so the event-driven
    engine can be driven at exactly the operating points of the
    closed-form Figure 8 sweeps.
    """
    if peak_rate <= 0:
        raise TrafficError(f"peak rate must be positive, got {peak_rate!r}")
    duration = len(profile.utilizations) * profile.epoch_seconds

    def intensity(t: float) -> float:
        epoch = min(
            int(t // profile.epoch_seconds), len(profile.utilizations) - 1
        )
        return peak_rate * profile.utilizations[epoch]

    return TrafficTrace(
        name=name,
        arrivals=_thinned_poisson(intensity, peak_rate, duration, seed),
        duration=duration,
    )
