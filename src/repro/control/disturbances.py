"""Capacity disturbances and measurement noise for closed-loop studies.

The paper's experiments perturb the platform in two ways: power caps
(Section 5.4 drops the clock from 2.4 GHz to 1.6 GHz and later lifts the
cap -- a step down followed by a step up) and load spikes (Section 5.5 --
transient over-subscription).  This module expresses such perturbations
as *capacity profiles*: functions from the control step to the fraction
of baseline computational capacity the platform currently delivers, plus
a seeded measurement-noise model for the heart-rate sensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "CapacityProfile",
    "constant_profile",
    "step_profile",
    "pulse_profile",
    "ramp_profile",
    "sinusoid_profile",
    "MeasurementNoise",
]

CapacityProfile = Callable[[int], float]
"""Maps a control step ``t >= 0`` to delivered capacity (1.0 = baseline)."""


def constant_profile(capacity: float = 1.0) -> CapacityProfile:
    """A platform that always delivers ``capacity`` of its baseline."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    return lambda step: capacity


def step_profile(at_step: int, factor: float) -> CapacityProfile:
    """Capacity drops (or rises) to ``factor`` at ``at_step`` and stays.

    ``step_profile(100, 1.6 / 2.4)`` is the imposition of the paper's
    power cap as seen by a CPU-bound application.
    """
    if at_step < 0:
        raise ValueError(f"step index must be >= 0, got {at_step!r}")
    if factor <= 0:
        raise ValueError(f"capacity factor must be positive, got {factor!r}")
    return lambda step: factor if step >= at_step else 1.0


def pulse_profile(start: int, end: int, factor: float) -> CapacityProfile:
    """Capacity is ``factor`` on ``[start, end)`` and 1.0 elsewhere.

    This is the full Section 5.4 scenario: the cap is imposed about one
    quarter of the way through the run and lifted at three quarters.
    """
    if not 0 <= start < end:
        raise ValueError(f"need 0 <= start < end, got [{start!r}, {end!r})")
    if factor <= 0:
        raise ValueError(f"capacity factor must be positive, got {factor!r}")
    return lambda step: factor if start <= step < end else 1.0


def ramp_profile(start: int, end: int, factor: float) -> CapacityProfile:
    """Capacity slides linearly from 1.0 to ``factor`` over ``[start, end]``.

    Models gradual degradation (thermal throttling) rather than a step.
    """
    if not 0 <= start < end:
        raise ValueError(f"need 0 <= start < end, got [{start!r}, {end!r}]")
    if factor <= 0:
        raise ValueError(f"capacity factor must be positive, got {factor!r}")

    def profile(step: int) -> float:
        if step <= start:
            return 1.0
        if step >= end:
            return factor
        fraction = (step - start) / (end - start)
        return 1.0 + fraction * (factor - 1.0)

    return profile


def sinusoid_profile(
    period: int, amplitude: float, mean: float = 1.0
) -> CapacityProfile:
    """Capacity oscillates around ``mean`` with the given period.

    Models periodic interference (co-scheduled batch work, cyclic load).
    The minimum capacity ``mean - amplitude`` must stay positive.
    """
    if period < 2:
        raise ValueError(f"period must be >= 2 steps, got {period!r}")
    if amplitude < 0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude!r}")
    if mean - amplitude <= 0:
        raise ValueError(
            f"capacity must stay positive; mean={mean!r} amplitude={amplitude!r}"
        )
    angular = 2.0 * np.pi / period
    return lambda step: mean + amplitude * float(np.sin(angular * step))


@dataclass
class MeasurementNoise:
    """Seeded multiplicative noise on the heart-rate sensor.

    The observed rate is ``h * (1 + eps)`` with
    ``eps ~ Normal(0, sigma)`` truncated at ``+/- 3 sigma`` so a noisy
    sample can never report a negative rate for reasonable sigmas.

    Attributes:
        sigma: Relative standard deviation (0 disables noise).
        seed: RNG seed; runs are reproducible for a fixed seed.
    """

    sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma!r}")
        self._rng = np.random.default_rng(self.seed)

    def observe(self, heart_rate: float) -> float:
        """One noisy observation of the true ``heart_rate``."""
        if heart_rate < 0:
            raise ValueError(f"heart rate must be >= 0, got {heart_rate!r}")
        if self.sigma == 0.0:
            return heart_rate
        epsilon = float(self._rng.normal(0.0, self.sigma))
        epsilon = max(-3.0 * self.sigma, min(3.0 * self.sigma, epsilon))
        return heart_rate * max(0.0, 1.0 + epsilon)

    def reset(self) -> None:
        """Restart the noise stream from the seed."""
        self._rng = np.random.default_rng(self.seed)
