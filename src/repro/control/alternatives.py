"""Alternative speedup controllers (paper Section 6, related work).

The paper contrasts its control-theoretic decision mechanism with the
heuristic controllers of Green, Eon, and Chang/Karamcheti, which have "no
guaranteed convergence or predictability properties whatsoever".  To make
that comparison executable, this module implements representative members
of those families behind a shared protocol:

* :class:`PIDController` -- the textbook generalization; with ``kp = kd = 0``
  and ``ki = 1`` it reduces exactly to the paper's integral law (Eq. 4).
* :class:`HeuristicStepController` -- a Green/Eon-style rule: multiply the
  speedup by a fixed factor whenever the heart rate leaves a tolerance
  band around the target.  No model of the plant, hence no convergence
  guarantee; coarse steps make it limit-cycle around the target.
* :class:`BangBangController` -- the crudest policy: run flat out when
  behind, at the baseline when ahead.  Always oscillates unless one of
  the two extremes happens to hit the target exactly.

All controllers expose ``update(heart_rate) -> speedup``, ``reset()``, and
a ``speedup`` property, matching
:class:`~repro.core.controller.HeartRateController`, so the comparison
harness and the PowerDial runtime can drive any of them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.controller import ControllerError

__all__ = [
    "SpeedupController",
    "PIDController",
    "HeuristicStepController",
    "BangBangController",
]


@runtime_checkable
class SpeedupController(Protocol):
    """The controller interface the PowerDial runtime drives.

    Implementations observe the measured heart rate once per control
    period and command a speedup for the next period.
    """

    @property
    def speedup(self) -> float:
        """The most recently commanded speedup."""

    def update(self, heart_rate: float) -> float:
        """Observe ``h(t)`` and return the new commanded speedup."""

    def reset(self) -> None:
        """Return to the initial operating point."""


def _check_rates(target_rate: float, baseline_rate: float) -> tuple[float, float]:
    """Validate and coerce the (target, baseline) pair shared by controllers."""
    if target_rate <= 0:
        raise ControllerError(f"target rate must be positive, got {target_rate!r}")
    if baseline_rate <= 0:
        raise ControllerError(
            f"baseline rate must be positive, got {baseline_rate!r}"
        )
    return float(target_rate), float(baseline_rate)


class PIDController:
    """Discrete PID control of the heart rate.

    The error is normalized by the baseline gain ``b`` (as in Eq. 4), so
    the gains are dimensionless and ``kp = kd = 0, ki = 1`` reproduces the
    paper's deadbeat integral controller:

        s(t) = 1 + kp * e(t)/b + ki * sum(e)/b + kd * (e(t) - e(t-1))/b

    Args:
        target_rate: Desired heart rate ``g``.
        baseline_rate: Plant gain ``b``.
        kp: Proportional gain.
        ki: Integral gain.
        kd: Derivative gain.
        min_speedup: Lower clamp on the command.
        max_speedup: Optional upper clamp (``s_max``); the integral term
            freezes while saturated (anti-windup).
    """

    def __init__(
        self,
        target_rate: float,
        baseline_rate: float,
        kp: float = 0.0,
        ki: float = 1.0,
        kd: float = 0.0,
        min_speedup: float = 1.0,
        max_speedup: float | None = None,
    ) -> None:
        self._target, self._baseline = _check_rates(target_rate, baseline_rate)
        if ki < 0 or kp < 0 or kd < 0:
            raise ControllerError(
                f"PID gains must be >= 0, got kp={kp!r} ki={ki!r} kd={kd!r}"
            )
        if min_speedup <= 0:
            raise ControllerError(
                f"min speedup must be positive, got {min_speedup!r}"
            )
        if max_speedup is not None and max_speedup < min_speedup:
            raise ControllerError(
                f"max speedup {max_speedup!r} below min speedup {min_speedup!r}"
            )
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self._min_speedup = float(min_speedup)
        self._max_speedup = None if max_speedup is None else float(max_speedup)
        self._integral = 0.0
        self._previous_error: float | None = None
        self._speedup = max(1.0, self._min_speedup)

    @property
    def target_rate(self) -> float:
        """The setpoint ``g``."""
        return self._target

    @property
    def speedup(self) -> float:
        """The most recently commanded speedup."""
        return self._speedup

    def update(self, heart_rate: float) -> float:
        """One PID step on the normalized error ``e(t) / b``."""
        if heart_rate < 0:
            raise ControllerError(f"heart rate must be >= 0, got {heart_rate!r}")
        error = (self._target - heart_rate) / self._baseline
        derivative = 0.0
        if self._previous_error is not None:
            derivative = error - self._previous_error
        self._previous_error = error
        candidate_integral = self._integral + self.ki * error
        speedup = 1.0 + self.kp * error + candidate_integral + self.kd * derivative
        clamped = max(self._min_speedup, speedup)
        if self._max_speedup is not None:
            clamped = min(self._max_speedup, clamped)
        if clamped == speedup:
            # Anti-windup: only accumulate while the command is realizable.
            self._integral = candidate_integral
        self._speedup = clamped
        return clamped

    def reset(self) -> None:
        """Clear the integrator and derivative memory."""
        self._integral = 0.0
        self._previous_error = None
        self._speedup = max(1.0, self._min_speedup)


class HeuristicStepController:
    """A Green/Eon-style model-free step controller.

    Whenever the measured heart rate falls below ``(1 - tolerance) * g``
    the commanded speedup is multiplied by ``step_factor``; above
    ``(1 + tolerance) * g`` it is divided by the same factor; inside the
    band it is left alone.  There is no plant model, so the step size is
    a blind guess: too small converges slowly, too large limit-cycles
    around the target -- the predictability gap the paper calls out.

    Args:
        target_rate: Desired heart rate ``g``.
        step_factor: Multiplicative adjustment per period (> 1).
        tolerance: Half-width of the acceptance band, as a fraction of
            the target.
        min_speedup: Lower clamp on the command.
        max_speedup: Optional upper clamp.
    """

    def __init__(
        self,
        target_rate: float,
        step_factor: float = 1.25,
        tolerance: float = 0.05,
        min_speedup: float = 1.0,
        max_speedup: float | None = None,
    ) -> None:
        if target_rate <= 0:
            raise ControllerError(
                f"target rate must be positive, got {target_rate!r}"
            )
        if step_factor <= 1.0:
            raise ControllerError(
                f"step factor must be > 1, got {step_factor!r}"
            )
        if not 0.0 <= tolerance < 1.0:
            raise ControllerError(
                f"tolerance must be in [0, 1), got {tolerance!r}"
            )
        if min_speedup <= 0:
            raise ControllerError(
                f"min speedup must be positive, got {min_speedup!r}"
            )
        self._target = float(target_rate)
        self.step_factor = float(step_factor)
        self.tolerance = float(tolerance)
        self._min_speedup = float(min_speedup)
        self._max_speedup = None if max_speedup is None else float(max_speedup)
        self._speedup = max(1.0, self._min_speedup)

    @property
    def target_rate(self) -> float:
        """The setpoint ``g``."""
        return self._target

    @property
    def speedup(self) -> float:
        """The most recently commanded speedup."""
        return self._speedup

    def update(self, heart_rate: float) -> float:
        """Step the speedup up/down when outside the tolerance band."""
        if heart_rate < 0:
            raise ControllerError(f"heart rate must be >= 0, got {heart_rate!r}")
        low = self._target * (1.0 - self.tolerance)
        high = self._target * (1.0 + self.tolerance)
        speedup = self._speedup
        if heart_rate < low:
            speedup *= self.step_factor
        elif heart_rate > high:
            speedup /= self.step_factor
        speedup = max(self._min_speedup, speedup)
        if self._max_speedup is not None:
            speedup = min(self._max_speedup, speedup)
        self._speedup = speedup
        return speedup

    def reset(self) -> None:
        """Return to the initial operating point."""
        self._speedup = max(1.0, self._min_speedup)


class BangBangController:
    """Two-level control: full speed when behind, baseline when ahead.

    Included as the degenerate end of the heuristic family; with any
    plant whose extremes straddle the target it oscillates forever
    between them, maximizing unnecessary QoS loss.

    Args:
        target_rate: Desired heart rate ``g``.
        high_speedup: The speedup commanded when behind (``s_max``).
        low_speedup: The speedup commanded when at/ahead of target.
    """

    def __init__(
        self,
        target_rate: float,
        high_speedup: float,
        low_speedup: float = 1.0,
    ) -> None:
        if target_rate <= 0:
            raise ControllerError(
                f"target rate must be positive, got {target_rate!r}"
            )
        if low_speedup <= 0 or high_speedup < low_speedup:
            raise ControllerError(
                f"need 0 < low <= high, got low={low_speedup!r} "
                f"high={high_speedup!r}"
            )
        self._target = float(target_rate)
        self.high_speedup = float(high_speedup)
        self.low_speedup = float(low_speedup)
        self._speedup = self.low_speedup

    @property
    def target_rate(self) -> float:
        """The setpoint ``g``."""
        return self._target

    @property
    def speedup(self) -> float:
        """The most recently commanded speedup."""
        return self._speedup

    def update(self, heart_rate: float) -> float:
        """Switch between the two levels around the target."""
        if heart_rate < 0:
            raise ControllerError(f"heart rate must be >= 0, got {heart_rate!r}")
        self._speedup = (
            self.high_speedup if heart_rate < self._target else self.low_speedup
        )
        return self._speedup

    def reset(self) -> None:
        """Return to the low (baseline) level."""
        self._speedup = self.low_speedup
