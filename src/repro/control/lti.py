"""Rational transfer functions in the Z-domain (paper Eq. 5-8).

The paper analyzes its control loop by composing the controller transfer
function ``F(z) = z / (b (z - 1))`` (Eq. 5) with the plant ``G(z) = b / z``
(Eq. 6) and closing the loop (Eq. 7) to obtain ``F_loop(z) = 1/z``
(Eq. 8).  :class:`TransferFunction` implements exactly that algebra --
polynomial coefficients in descending powers of ``z``, cascade and
unity-feedback composition, pole/zero extraction, DC gain, and
time-domain simulation via the associated difference equation -- so the
paper's derivation can be executed and checked rather than taken on
faith, and perturbed (a mis-modeled gain ``b``) to study robustness.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "TransferFunction",
    "TransferFunctionError",
    "heartbeat_controller_tf",
    "heartbeat_plant_tf",
    "powerdial_closed_loop",
]

_COEFF_EPS = 1e-12


class TransferFunctionError(ValueError):
    """Raised for invalid transfer-function construction or queries."""


def _trimmed(coefficients: Iterable[float]) -> tuple[float, ...]:
    """Coefficients with leading (highest-power) zeros removed."""
    values = [float(c) for c in coefficients]
    index = 0
    while index < len(values) - 1 and abs(values[index]) < _COEFF_EPS:
        index += 1
    return tuple(values[index:])


class TransferFunction:
    """A causal rational transfer function ``H(z) = N(z) / D(z)``.

    Coefficients are given in descending powers of ``z`` (numpy's
    polynomial convention), so ``TransferFunction([1], [1, -1])`` is
    ``1 / (z - 1)`` -- the discrete integrator.

    Args:
        numerator: Coefficients of ``N(z)``, highest power first.
        denominator: Coefficients of ``D(z)``, highest power first.  The
            denominator degree must be >= the numerator degree (a causal,
            realizable system) and its leading coefficient non-zero.
    """

    __slots__ = ("_num", "_den")

    def __init__(
        self, numerator: Sequence[float], denominator: Sequence[float]
    ) -> None:
        num = _trimmed(numerator)
        den = _trimmed(denominator)
        if not den or abs(den[0]) < _COEFF_EPS:
            raise TransferFunctionError("denominator must be a non-zero polynomial")
        if len(num) > len(den):
            raise TransferFunctionError(
                f"non-causal transfer function: numerator degree {len(num) - 1} "
                f"exceeds denominator degree {len(den) - 1}"
            )
        # Normalize so the denominator is monic; keeps compositions tidy.
        lead = den[0]
        self._num = tuple(c / lead for c in num)
        self._den = tuple(c / lead for c in den)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def numerator(self) -> tuple[float, ...]:
        """``N(z)`` coefficients, highest power first (denominator monic)."""
        return self._num

    @property
    def denominator(self) -> tuple[float, ...]:
        """``D(z)`` coefficients, highest power first (monic)."""
        return self._den

    @property
    def order(self) -> int:
        """Degree of the denominator."""
        return len(self._den) - 1

    def __repr__(self) -> str:
        return f"TransferFunction({list(self._num)}, {list(self._den)})"

    def __call__(self, z: complex) -> complex:
        """Evaluate ``H(z)`` at a point of the complex plane."""
        num = complex(np.polyval(self._num, z))
        den = complex(np.polyval(self._den, z))
        if abs(den) < _COEFF_EPS:
            raise TransferFunctionError(f"H(z) has a pole at z = {z!r}")
        return num / den

    # ------------------------------------------------------------------
    # Analysis (the Section 2.3.2 properties)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_python_roots(coefficients: Sequence[float]) -> tuple[complex, ...]:
        """Polynomial roots as plain Python numbers, sorted by magnitude."""
        roots = []
        for root in np.roots(coefficients):
            value = complex(root)
            roots.append(value.real if value.imag == 0.0 else value)
        return tuple(sorted(roots, key=abs))

    def poles(self) -> tuple[complex, ...]:
        """Roots of ``D(z)`` ("a pole is a point p such that H(p) = inf")."""
        if len(self._den) == 1:
            return ()
        return self._as_python_roots(self._den)

    def zeros(self) -> tuple[complex, ...]:
        """Roots of ``N(z)``."""
        if len(self._num) <= 1:
            return ()
        return self._as_python_roots(self._num)

    def is_stable(self) -> bool:
        """True when every pole lies strictly inside the unit circle."""
        return all(abs(pole) < 1.0 for pole in self.poles())

    def dominant_pole(self) -> complex:
        """The pole of largest magnitude (0 for a pole-free gain)."""
        poles = self.poles()
        if not poles:
            return 0.0 + 0.0j
        return max(poles, key=abs)

    def dc_gain(self) -> float:
        """Steady-state gain ``H(1)`` (paper: unit gain implies convergence)."""
        value = self(1.0)
        if abs(value.imag) > 1e-9:  # pragma: no cover - real coefficients
            raise TransferFunctionError(f"complex DC gain {value!r}")
        return value.real

    def convergence_time(self) -> float:
        """Settling estimate ``t_c ~ -4 / log10(|p_d|)`` from [24].

        Returns 0.0 for a deadbeat system (dominant pole at the origin)
        and ``inf`` for an unstable or marginally stable one.
        """
        magnitude = abs(self.dominant_pole())
        if magnitude == 0.0:
            return 0.0
        if magnitude >= 1.0:
            return math.inf
        return -4.0 / math.log10(magnitude)

    # ------------------------------------------------------------------
    # Loop algebra (Eq. 7)
    # ------------------------------------------------------------------
    def cascade(self, other: "TransferFunction") -> "TransferFunction":
        """Series composition ``self * other``."""
        return TransferFunction(
            np.polymul(self._num, other._num), np.polymul(self._den, other._den)
        )

    def parallel(self, other: "TransferFunction") -> "TransferFunction":
        """Additive composition ``self + other``."""
        num = np.polyadd(
            np.polymul(self._num, other._den), np.polymul(other._num, self._den)
        )
        return TransferFunction(num, np.polymul(self._den, other._den))

    def feedback(self, other: "TransferFunction" | None = None) -> "TransferFunction":
        """Negative-feedback closure ``self / (1 + self * other)``.

        With ``other`` omitted the loop is closed with unity feedback, the
        Eq. 7 form ``F_loop = F G / (1 + F G)`` applied to the open loop
        ``self = F G``:  ``n / (d + n)``.  With a feedback element the
        closure is ``n_s d_o / (d_s d_o + n_s n_o)``.
        """
        if other is None:
            num: Sequence[float] = self._num
            den = np.polyadd(self._den, self._num)
        else:
            num = np.polymul(self._num, other._den)
            den = np.polyadd(
                np.polymul(self._den, other._den),
                np.polymul(self._num, other._num),
            )
        return TransferFunction(num, den)

    # ------------------------------------------------------------------
    # Time domain
    # ------------------------------------------------------------------
    def simulate(self, inputs: Sequence[float]) -> list[float]:
        """Drive the difference equation from rest with ``inputs``.

        For ``H(z) = (b0 z^n + ... + bn) / (z^n + a1 z^(n-1) + ... + an)``
        (numerator zero-padded to the denominator's length) the output is
        ``y[k] = sum_i b_i u[k-i] - sum_{i>=1} a_i y[k-i]``.
        """
        order = len(self._den) - 1
        padded = (0.0,) * (len(self._den) - len(self._num)) + self._num
        outputs: list[float] = []
        for k in range(len(inputs)):
            acc = 0.0
            for i, b in enumerate(padded):
                if k - i >= 0:
                    acc += b * inputs[k - i]
            for i in range(1, order + 1):
                if k - i >= 0:
                    acc -= self._den[i] * outputs[k - i]
            outputs.append(acc)
        return outputs

    def impulse_response(self, steps: int) -> list[float]:
        """Response to the unit impulse ``u = [1, 0, 0, ...]``."""
        if steps < 1:
            raise TransferFunctionError(f"steps must be >= 1, got {steps!r}")
        return self.simulate([1.0] + [0.0] * (steps - 1))

    def step_response(self, steps: int) -> list[float]:
        """Response to the unit step ``u = [1, 1, 1, ...]``."""
        if steps < 1:
            raise TransferFunctionError(f"steps must be >= 1, got {steps!r}")
        return self.simulate([1.0] * steps)

    def settling_steps(self, tolerance: float = 0.02, horizon: int = 1000) -> int:
        """First step after which the step response stays within
        ``tolerance * |final|`` of its final value.

        Returns the step index, or raises :class:`TransferFunctionError`
        for an unstable system (which never settles).
        """
        if not self.is_stable():
            raise TransferFunctionError("unstable system never settles")
        if not 0.0 < tolerance < 1.0:
            raise TransferFunctionError(
                f"tolerance must be in (0, 1), got {tolerance!r}"
            )
        final = self.dc_gain()
        band = tolerance * max(abs(final), _COEFF_EPS)
        response = self.step_response(horizon)
        settled_from = horizon
        for index in range(horizon - 1, -1, -1):
            if abs(response[index] - final) > band:
                break
            settled_from = index
        return settled_from


# ----------------------------------------------------------------------
# The paper's loop (Eq. 5, 6, 8)
# ----------------------------------------------------------------------
def heartbeat_controller_tf(baseline_rate: float) -> TransferFunction:
    """Eq. 5: ``F(z) = z / (b (z - 1))`` -- the integral control law."""
    if baseline_rate <= 0:
        raise TransferFunctionError(
            f"baseline rate must be positive, got {baseline_rate!r}"
        )
    return TransferFunction([1.0 / baseline_rate, 0.0], [1.0, -1.0])


def heartbeat_plant_tf(baseline_rate: float) -> TransferFunction:
    """Eq. 6: ``G(z) = b / z`` -- the one-step-delay performance model."""
    if baseline_rate <= 0:
        raise TransferFunctionError(
            f"baseline rate must be positive, got {baseline_rate!r}"
        )
    return TransferFunction([baseline_rate], [1.0, 0.0])


def powerdial_closed_loop(
    baseline_rate: float, gain_error: float = 1.0
) -> TransferFunction:
    """Eq. 7-8 with an optional mis-modeled gain.

    The controller is built for ``b`` while the true plant gain is
    ``gain_error * b``.  With ``gain_error == 1`` this reduces exactly to
    Eq. 8, ``F_loop(z) = 1/z``; otherwise the closed-loop pole moves to
    ``1 - gain_error``, trading deadbeat convergence for a geometric tail
    (and instability once ``gain_error >= 2``).
    """
    if gain_error <= 0:
        raise TransferFunctionError(
            f"gain error must be positive, got {gain_error!r}"
        )
    controller = heartbeat_controller_tf(baseline_rate)
    plant = heartbeat_plant_tf(baseline_rate * gain_error)
    return controller.cascade(plant).feedback()
