"""Discrete-time control toolkit (paper Section 2.3.2 and Section 6).

The paper justifies its integral controller with a Z-domain argument
(Eq. 5-8): the closed loop ``F_loop(z) = 1/z`` has unit DC gain, a single
pole at the origin, and deadbeat convergence.  This subpackage builds the
machinery behind that argument as a small reusable library:

* :mod:`repro.control.lti` -- rational transfer functions in ``z`` with
  pole/zero/stability analysis, time-domain simulation, and the loop
  algebra (cascade, feedback) used to derive Eq. 8 from Eq. 5-6.
* :mod:`repro.control.alternatives` -- the controller families the paper's
  related-work section compares against (PID, Green/Eon-style heuristic
  step controllers, bang-bang), all sharing the update protocol of
  :class:`~repro.core.controller.HeartRateController`.
* :mod:`repro.control.disturbances` -- capacity profiles (power-cap steps,
  ramps, periodic load) and measurement-noise models for closed-loop
  experiments.
* :mod:`repro.control.comparison` -- a closed-loop evaluation harness that
  scores any controller on the paper's plant model ``h(t+1) = c(t) b s(t)``
  (settling time, overshoot, ITAE, oscillation), backing the controller
  ablation bench.
"""

from repro.control.alternatives import (
    BangBangController,
    HeuristicStepController,
    PIDController,
    SpeedupController,
)
from repro.control.comparison import (
    ClosedLoopScenario,
    ControllerEvaluation,
    evaluate_controller,
)
from repro.control.disturbances import (
    CapacityProfile,
    MeasurementNoise,
    constant_profile,
    pulse_profile,
    ramp_profile,
    sinusoid_profile,
    step_profile,
)
from repro.control.lti import (
    TransferFunction,
    TransferFunctionError,
    heartbeat_controller_tf,
    heartbeat_plant_tf,
    powerdial_closed_loop,
)

__all__ = [
    "TransferFunction",
    "TransferFunctionError",
    "heartbeat_controller_tf",
    "heartbeat_plant_tf",
    "powerdial_closed_loop",
    "SpeedupController",
    "PIDController",
    "HeuristicStepController",
    "BangBangController",
    "CapacityProfile",
    "MeasurementNoise",
    "constant_profile",
    "step_profile",
    "pulse_profile",
    "ramp_profile",
    "sinusoid_profile",
    "ClosedLoopScenario",
    "ControllerEvaluation",
    "evaluate_controller",
]
