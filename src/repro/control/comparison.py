"""Closed-loop controller evaluation harness.

Simulates any :class:`~repro.control.alternatives.SpeedupController`
against the paper's plant model extended with a capacity disturbance:

    h(t + 1) = c(t) * b * s(t)

where ``c(t)`` is a :data:`~repro.control.disturbances.CapacityProfile`
(1.0 = uncapped platform) and the controller sees a possibly noisy
measurement of ``h``.  The evaluation reports the control-science metrics
the paper's Section 6 argument rests on -- settling time after a
disturbance, overshoot, steady-state error, oscillation -- plus the ITAE
(integral of time-weighted absolute error) aggregate, enabling the
controller ablation bench to quantify "provably good convergence and
predictability" against the heuristic alternatives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from repro.control.alternatives import SpeedupController
from repro.control.disturbances import (
    CapacityProfile,
    MeasurementNoise,
    constant_profile,
)

__all__ = ["ClosedLoopScenario", "ControllerEvaluation", "evaluate_controller"]


@dataclass
class ClosedLoopScenario:
    """One closed-loop experiment definition.

    Attributes:
        target_rate: Setpoint ``g`` the controller should hold.
        baseline_rate: True plant gain ``b`` (heart rate at speedup 1 on
            the uncapped platform).
        steps: Number of control periods to simulate.
        capacity: Capacity profile ``c(t)`` (default: uncapped).
        noise: Measurement noise on the heart-rate sensor (default: none).
        max_speedup: The plant saturates at this speedup (``s_max`` of the
            knob table); commands above it deliver only ``max_speedup``.
    """

    target_rate: float
    baseline_rate: float
    steps: int
    capacity: CapacityProfile = field(default_factory=constant_profile)
    noise: MeasurementNoise = field(default_factory=MeasurementNoise)
    max_speedup: float = math.inf

    def __post_init__(self) -> None:
        if self.target_rate <= 0:
            raise ValueError(
                f"target rate must be positive, got {self.target_rate!r}"
            )
        if self.baseline_rate <= 0:
            raise ValueError(
                f"baseline rate must be positive, got {self.baseline_rate!r}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps!r}")
        if self.max_speedup <= 0:
            raise ValueError(
                f"max speedup must be positive, got {self.max_speedup!r}"
            )


@dataclass
class ControllerEvaluation:
    """Metrics and raw series from one closed-loop run.

    Attributes:
        heart_rates: True (noise-free) heart rate per step.
        speedups: Commanded speedup per step.
        errors: Normalized error ``(g - h) / g`` per step.
        itae: Sum of ``t * |e(t)|`` over the run (lower is better).
        mean_abs_error: Mean of ``|e(t)|``.
        max_overshoot: Largest positive excursion of ``h`` above the
            target, as a fraction of the target, after the first step.
        oscillation_crossings: Number of sign changes of the error in the
            final third of the run -- a settled loop has (near) none, a
            limit-cycling one flips every few periods.
    """

    heart_rates: list[float]
    speedups: list[float]
    errors: list[float]
    itae: float
    mean_abs_error: float
    max_overshoot: float
    oscillation_crossings: int

    def settling_step(
        self, after: int = 0, tolerance: float = 0.02, hold: int = 10
    ) -> int | None:
        """First step ``>= after`` from which the error stays within
        ``tolerance`` for at least ``hold`` consecutive steps.

        Returns ``None`` when the loop never settles in the simulated
        window (the fate of a limit-cycling heuristic).
        """
        if not 0 <= after < len(self.errors):
            raise ValueError(
                f"after must be a valid step index, got {after!r}"
            )
        run = 0
        for step in range(after, len(self.errors)):
            if abs(self.errors[step]) <= tolerance:
                run += 1
                if run >= hold:
                    return step - hold + 1
            else:
                run = 0
        return None

    def settled_within(
        self, after: int, budget: int, tolerance: float = 0.02
    ) -> bool:
        """Did the loop settle within ``budget`` steps of ``after``?"""
        step = self.settling_step(after=after, tolerance=tolerance)
        return step is not None and step - after <= budget


def evaluate_controller(
    controller: SpeedupController, scenario: ClosedLoopScenario
) -> ControllerEvaluation:
    """Run ``controller`` through ``scenario`` and score it.

    The controller is reset, then driven for ``scenario.steps`` periods of
    the plant ``h(t+1) = c(t) * b * min(s(t), s_max)``; the measurement
    passed to the controller is ``noise.observe(h)``.
    """
    controller.reset()
    scenario.noise.reset()
    target = scenario.target_rate
    heart_rates: list[float] = []
    speedups: list[float] = []
    errors: list[float] = []
    speedup = min(controller.speedup, scenario.max_speedup)
    itae = 0.0
    for step in range(scenario.steps):
        capacity = scenario.capacity(step)
        if capacity <= 0:
            raise ValueError(
                f"capacity profile must stay positive, got {capacity!r} "
                f"at step {step!r}"
            )
        rate = capacity * scenario.baseline_rate * speedup
        heart_rates.append(rate)
        error = (target - rate) / target
        errors.append(error)
        itae += step * abs(error)
        observed = scenario.noise.observe(rate)
        speedup = min(controller.update(observed), scenario.max_speedup)
        speedups.append(controller.speedup)

    overshoots = [
        (rate - target) / target for rate in heart_rates[1:] if rate > target
    ]
    tail_start = 2 * len(errors) // 3
    crossings = sum(
        1
        for previous, current in zip(
            errors[tail_start:], errors[tail_start + 1 :]
        )
        if previous * current < 0
    )
    return ControllerEvaluation(
        heart_rates=heart_rates,
        speedups=speedups,
        errors=errors,
        itae=itae,
        mean_abs_error=sum(abs(e) for e in errors) / len(errors),
        max_overshoot=max(overshoots, default=0.0),
        oscillation_crossings=crossings,
    )
