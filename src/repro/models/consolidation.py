"""Server-consolidation sizing and power models (Section 3, Eq. 20–24).

How many machines does a knob-augmented deployment need to meet peak
load, and how much power does the smaller system draw across utilization
levels?  These are the equations the Section 5.5 experiments provision
with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "machines_required",
    "average_power",
    "ConsolidationPlan",
    "plan_consolidation",
    "ConsolidationError",
]


class ConsolidationError(ValueError):
    """Raised for invalid consolidation parameters."""


def machines_required(original_machines: int, speedup: float) -> int:
    """Equation 21: ``N_new = ceil(W_total / S / W_machine)``.

    With homogeneous machines the work terms cancel:
    ``N_new = ceil(N_orig / S)``.
    """
    if original_machines < 1:
        raise ConsolidationError(
            f"need at least one machine, got {original_machines!r}"
        )
    if speedup < 1.0:
        raise ConsolidationError(f"speedup must be >= 1, got {speedup!r}")
    return max(1, math.ceil(original_machines / speedup))


def average_power(
    machines: int, utilization: float, p_load: float, p_idle: float
) -> float:
    """Equations 22–23: ``N * (U * P_load + (1 - U) * P_idle)``."""
    if machines < 0:
        raise ConsolidationError(f"machines must be >= 0, got {machines!r}")
    if not 0.0 <= utilization <= 1.0:
        raise ConsolidationError(
            f"utilization must be in [0, 1], got {utilization!r}"
        )
    if p_load < p_idle:
        raise ConsolidationError("loaded power below idle power")
    return machines * (utilization * p_load + (1.0 - utilization) * p_idle)


@dataclass(frozen=True)
class ConsolidationPlan:
    """A provisioning decision plus its power accounting (Eq. 20–24).

    Attributes:
        original_machines: ``N_orig``.
        consolidated_machines: ``N_new`` per Eq. 21.
        original_power: ``P_orig`` at the given utilization (Eq. 22).
        consolidated_power: ``P_new`` (Eq. 23) — the consolidated system
            runs the same total work on fewer machines, so its utilization
            is ``min(1, U * N_orig / N_new)``.
        power_savings: ``P_save = P_orig - P_new`` (Eq. 24).
    """

    original_machines: int
    consolidated_machines: int
    original_power: float
    consolidated_power: float
    power_savings: float


def plan_consolidation(
    original_machines: int,
    speedup: float,
    utilization: float,
    p_load: float,
    p_idle: float,
) -> ConsolidationPlan:
    """Provision with Eq. 21 and account power with Eq. 22–24."""
    n_new = machines_required(original_machines, speedup)
    p_orig = average_power(original_machines, utilization, p_load, p_idle)
    new_utilization = min(1.0, utilization * original_machines / n_new)
    p_new = average_power(n_new, new_utilization, p_load, p_idle)
    return ConsolidationPlan(
        original_machines=original_machines,
        consolidated_machines=n_new,
        original_power=p_orig,
        consolidated_power=p_new,
        power_savings=p_orig - p_new,
    )
