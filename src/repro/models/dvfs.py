"""Analytical DVFS energy models (paper Section 3, Eq. 12–19, Fig. 3–4).

Pure functions quantifying when DVFS alone, race-to-idle, and the
combination of DVFS with dynamic knobs save energy.  All powers are in
watts, times in seconds, energies in joules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "dvfs_times",
    "dvfs_energy_savings",
    "KnobDvfsEnergy",
    "knob_dvfs_energy",
    "EnergyModelError",
]


class EnergyModelError(ValueError):
    """Raised for physically meaningless model inputs."""


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise EnergyModelError(f"{name} must be positive, got {value!r}")


def dvfs_times(t1: float, f_nodvfs: float, f_dvfs: float) -> float:
    """CPU-bound execution time under DVFS: ``t2 = f_nodvfs / f_dvfs * t1``."""
    _check_positive(t1=t1, f_nodvfs=f_nodvfs, f_dvfs=f_dvfs)
    return t1 * f_nodvfs / f_dvfs


def dvfs_energy_savings(
    p_nodvfs: float,
    p_dvfs: float,
    p_idle: float,
    t1: float,
    t_delay: float,
) -> float:
    """Energy saved by DVFS relative to run-fast-then-idle (Equation 12).

    ``E_dvfs = (P_nodvfs*t1 + P_idle*t_delay) - P_dvfs*t2`` with
    ``t2 = t1 + t_delay``: positive when stretching the task over the slack
    at lower power beats racing and idling.
    """
    _check_positive(p_nodvfs=p_nodvfs, p_dvfs=p_dvfs, p_idle=p_idle, t1=t1)
    if t_delay < 0:
        raise EnergyModelError(f"t_delay must be >= 0, got {t_delay!r}")
    t2 = t1 + t_delay
    return (p_nodvfs * t1 + p_idle * t_delay) - p_dvfs * t2


@dataclass(frozen=True)
class KnobDvfsEnergy:
    """Energy accounting for DVFS + dynamic knobs (Eq. 13–19).

    Attributes:
        e1: Energy of the race-to-idle strategy with knobs (Eq. 14):
            run at full frequency for ``t1 / S``, idle the rest.
        e2: Energy of the DVFS strategy with knobs (Eq. 16): run at the
            reduced frequency for ``t2 / S``, idle the rest.
        e_elastic: ``min(E1, E2)`` (Eq. 17) — the knob-augmented system
            picks the better strategy.
        e_dvfs: Best energy without knobs (Eq. 18).
        savings: ``E_dvfs - E_elastic`` (Eq. 19).
    """

    e1: float
    e2: float
    e_elastic: float
    e_dvfs: float
    savings: float


def knob_dvfs_energy(
    p_nodvfs: float,
    p_dvfs: float,
    p_idle: float,
    t1: float,
    t_delay: float,
    speedup: float,
) -> KnobDvfsEnergy:
    """Evaluate Equations 13–19 for a task with a knob speedup ``S(QoS)``.

    Args:
        p_nodvfs: Full-frequency busy power.
        p_dvfs: Reduced-frequency busy power.
        p_idle: Idle power.
        t1: Task time at full frequency without knobs.
        t_delay: Slack after the task before its deadline.
        speedup: ``S(QoS)`` — the knob speedup at the accepted QoS loss.
    """
    _check_positive(
        p_nodvfs=p_nodvfs, p_dvfs=p_dvfs, p_idle=p_idle, t1=t1, speedup=speedup
    )
    if t_delay < 0:
        raise EnergyModelError(f"t_delay must be >= 0, got {t_delay!r}")
    t2 = t1 + t_delay

    t1_prime = t1 / speedup  # Eq. 13
    t_delay_prime = t_delay + t1 - t1_prime
    e1 = p_nodvfs * t1_prime + p_idle * t_delay_prime  # Eq. 14

    t2_prime = t2 / speedup  # Eq. 15
    t_delay_double = t2 - t2_prime
    e2 = p_dvfs * t2_prime + p_idle * t_delay_double  # Eq. 16

    e_elastic = min(e1, e2)  # Eq. 17
    e_dvfs = min(p_nodvfs * t1 + p_idle * t_delay, p_dvfs * t2)  # Eq. 18
    return KnobDvfsEnergy(
        e1=e1,
        e2=e2,
        e_elastic=e_elastic,
        e_dvfs=e_dvfs,
        savings=e_dvfs - e_elastic,  # Eq. 19
    )
