"""Analytical models from Section 3: DVFS energy, consolidation, costs."""

from repro.models.consolidation import (
    ConsolidationError,
    ConsolidationPlan,
    average_power,
    machines_required,
    plan_consolidation,
)
from repro.models.costs import (
    ConsolidationSavings,
    CostBreakdown,
    CostModel,
    CostModelError,
    consolidation_savings,
    deployment_cost,
)
from repro.models.dvfs import (
    EnergyModelError,
    KnobDvfsEnergy,
    dvfs_energy_savings,
    dvfs_times,
    knob_dvfs_energy,
)

__all__ = [
    "dvfs_times",
    "dvfs_energy_savings",
    "knob_dvfs_energy",
    "KnobDvfsEnergy",
    "EnergyModelError",
    "machines_required",
    "average_power",
    "plan_consolidation",
    "ConsolidationPlan",
    "ConsolidationError",
    "CostModel",
    "CostBreakdown",
    "ConsolidationSavings",
    "deployment_cost",
    "consolidation_savings",
    "CostModelError",
]
