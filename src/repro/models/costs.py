"""Data-center cost models (paper Section 3).

Section 3 motivates consolidation beyond direct energy: "data centers
also incur capital costs (e.g. power provisioning, cooling, etc.).  Over
the lifetime of the facility, these capital costs may exceed energy
costs."  This module prices the consolidation decision of Eq. 20-24:
server capital, power-provisioning capital (dollars per provisioned
watt), and energy billed through a PUE factor that charges cooling and
conversion overhead on every IT watt.

All money is in dollars, power in watts, energy billed at a price per
kilowatt-hour over a facility lifetime in years.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.consolidation import ConsolidationPlan

__all__ = [
    "CostModel",
    "CostBreakdown",
    "ConsolidationSavings",
    "deployment_cost",
    "consolidation_savings",
    "CostModelError",
]

_HOURS_PER_YEAR = 8766.0  # 365.25 days


class CostModelError(ValueError):
    """Raised for physically or economically meaningless inputs."""


@dataclass(frozen=True)
class CostModel:
    """Facility cost parameters.

    Defaults follow the figures circulating at the paper's writing (the
    EPA report [50] and the energy-proportional-computing literature
    [10]): mid-range 2U servers, ~$10/W provisioned power
    infrastructure, PUE 1.7, $0.07/kWh industrial power.

    Attributes:
        server_capital: Purchase price of one machine (dollars).
        provisioning_per_watt: Capital cost of power and cooling
            infrastructure per provisioned peak watt (dollars/watt).
        pue: Power usage effectiveness -- total facility power divided by
            IT power (>= 1); charges cooling/conversion on every IT watt.
        energy_price_per_kwh: Billed electricity price (dollars/kWh).
        lifetime_years: Amortization horizon for the comparison.
    """

    server_capital: float = 4000.0
    provisioning_per_watt: float = 10.0
    pue: float = 1.7
    energy_price_per_kwh: float = 0.07
    lifetime_years: float = 4.0

    def __post_init__(self) -> None:
        if self.server_capital < 0:
            raise CostModelError(
                f"server capital must be >= 0, got {self.server_capital!r}"
            )
        if self.provisioning_per_watt < 0:
            raise CostModelError(
                f"provisioning cost must be >= 0, got "
                f"{self.provisioning_per_watt!r}"
            )
        if self.pue < 1.0:
            raise CostModelError(f"PUE must be >= 1, got {self.pue!r}")
        if self.energy_price_per_kwh < 0:
            raise CostModelError(
                f"energy price must be >= 0, got "
                f"{self.energy_price_per_kwh!r}"
            )
        if self.lifetime_years <= 0:
            raise CostModelError(
                f"lifetime must be positive, got {self.lifetime_years!r}"
            )

    def energy_cost(self, mean_it_watts: float) -> float:
        """Lifetime energy bill for a deployment drawing ``mean_it_watts``.

        The IT draw is multiplied by the PUE so cooling and conversion
        overhead is billed alongside the servers themselves.
        """
        if mean_it_watts < 0:
            raise CostModelError(
                f"power must be >= 0, got {mean_it_watts!r}"
            )
        kwh = mean_it_watts * self.pue * _HOURS_PER_YEAR * self.lifetime_years
        return kwh / 1000.0 * self.energy_price_per_kwh


@dataclass(frozen=True)
class CostBreakdown:
    """Lifetime cost of one deployment.

    Attributes:
        server_capital: Machines times per-machine price.
        provisioning_capital: Peak provisioned watts times dollars/watt.
        energy: Lifetime energy bill at the mean draw, PUE-adjusted.
        total: Sum of the above.
    """

    server_capital: float
    provisioning_capital: float
    energy: float

    @property
    def total(self) -> float:
        """All-in lifetime cost."""
        return self.server_capital + self.provisioning_capital + self.energy


def deployment_cost(
    machines: int,
    mean_power: float,
    peak_power: float,
    model: CostModel | None = None,
) -> CostBreakdown:
    """Price a deployment of ``machines`` servers.

    Args:
        machines: Number of provisioned machines.
        mean_power: Average IT draw of the whole pool (watts).
        peak_power: Provisioned peak IT draw (watts); power and cooling
            infrastructure is sized for this, not the average.
        model: Cost parameters (defaults: :class:`CostModel`).
    """
    if machines < 0:
        raise CostModelError(f"machines must be >= 0, got {machines!r}")
    if mean_power < 0 or peak_power < 0:
        raise CostModelError("power figures must be >= 0")
    if mean_power > peak_power + 1e-9:
        raise CostModelError(
            f"mean power {mean_power!r} exceeds provisioned peak "
            f"{peak_power!r}"
        )
    model = model or CostModel()
    return CostBreakdown(
        server_capital=machines * model.server_capital,
        provisioning_capital=peak_power * model.pue * model.provisioning_per_watt,
        energy=model.energy_cost(mean_power),
    )


@dataclass(frozen=True)
class ConsolidationSavings:
    """The dollar value of an Eq. 20-24 consolidation.

    Attributes:
        original: Lifetime cost of the fully provisioned system.
        consolidated: Lifetime cost of the knob-augmented system.
        capital_savings: Server + provisioning capital avoided.
        energy_savings: Lifetime energy avoided.
        total_savings: All-in difference (>= 0 for a true consolidation).
    """

    original: CostBreakdown
    consolidated: CostBreakdown

    @property
    def capital_savings(self) -> float:
        """Avoided server and infrastructure capital."""
        return (
            self.original.server_capital
            - self.consolidated.server_capital
            + self.original.provisioning_capital
            - self.consolidated.provisioning_capital
        )

    @property
    def energy_savings(self) -> float:
        """Avoided lifetime energy spend."""
        return self.original.energy - self.consolidated.energy

    @property
    def total_savings(self) -> float:
        """All-in lifetime savings."""
        return self.original.total - self.consolidated.total


def consolidation_savings(
    plan: ConsolidationPlan,
    peak_power_per_machine: float,
    model: CostModel | None = None,
) -> ConsolidationSavings:
    """Price a :class:`~repro.models.consolidation.ConsolidationPlan`.

    Args:
        plan: The Eq. 20-24 provisioning decision with its power
            accounting at the evaluation utilization.
        peak_power_per_machine: Full-load draw of one machine (watts);
            sizes the provisioned infrastructure of both systems.
        model: Cost parameters (defaults: :class:`CostModel`).
    """
    if peak_power_per_machine <= 0:
        raise CostModelError(
            f"peak power per machine must be positive, got "
            f"{peak_power_per_machine!r}"
        )
    model = model or CostModel()
    original = deployment_cost(
        plan.original_machines,
        plan.original_power,
        plan.original_machines * peak_power_per_machine,
        model,
    )
    consolidated = deployment_cost(
        plan.consolidated_machines,
        plan.consolidated_power,
        plan.consolidated_machines * peak_power_per_machine,
        model,
    )
    return ConsolidationSavings(original=original, consolidated=consolidated)
