"""The PowerDial runtime: controlled execution of a knobbed application.

Wires together the pieces of Figure 2: the application (emitting
heartbeats into a :class:`~repro.heartbeats.api.HeartbeatMonitor`), the
integral :class:`~repro.core.controller.HeartRateController`, and the
:class:`~repro.core.actuator.Actuator`, all running on a simulated
:class:`~repro.hardware.machine.Machine`.

Every ``quantum_beats`` heartbeats the controller observes the windowed
heart rate and commands a speedup; the actuator converts it into a plan of
knob settings (and, under race-to-idle, idle time) for the next quantum.
Settings are applied by *poking recorded control-variable values into the
application's address space* — the application is never told its knobs
moved; its main loop simply reads different values, exactly the paper's
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.apps.base import Application, WorkTracker
from repro.core.actuator import ActuationPolicy, Actuator, ActuationPlan
from repro.core.controller import HeartRateController
from repro.core.knobs import KnobSetting, KnobTable
from repro.heartbeats.api import HeartbeatMonitor
from repro.hardware.machine import Machine
from repro.tracing.variables import AddressSpace

__all__ = ["RuntimeEvent", "RuntimeSample", "RunResult", "PowerDialRuntime"]


@dataclass(frozen=True)
class RuntimeEvent:
    """An external event injected during a controlled run.

    Attributes:
        at_beat: Dispatch when the heartbeat count reaches this value.
        action: Callback receiving the machine (e.g. impose a power cap by
            dropping its frequency).
        label: Event name for the sample log.
    """

    at_beat: int
    action: Callable[[Machine], None]
    label: str = "event"


@dataclass(frozen=True)
class RuntimeSample:
    """One per-heartbeat observation of the controlled system.

    Attributes:
        beat: Heartbeat sequence number.
        time: Virtual timestamp of the beat.
        window_rate: Sliding-window heart rate (None before first interval).
        normalized_performance: ``window_rate / target`` — the Figure 7
            y-axis ("sliding mean of the last twenty times between
            heartbeats normalized to the target heart rate").
        knob_gain: Instantaneous speedup of the active knob setting — the
            Figure 7 "Knob Gain" series.
        commanded_speedup: The controller's current output ``s(t)``.
        frequency_ghz: Machine frequency when the beat was emitted.
    """

    beat: int
    time: float
    window_rate: float | None
    normalized_performance: float | None
    knob_gain: float
    commanded_speedup: float
    frequency_ghz: float


@dataclass
class RunResult:
    """Everything observed during one controlled run.

    Attributes:
        samples: Per-heartbeat observations.
        outputs_by_job: Main-loop outputs, grouped per input job.
        settings_used: The knob setting active at each heartbeat.
        mean_power: Mean of the machine's 1 Hz power samples (None if the
            run was shorter than one sampling interval).
        energy_joules: Exact integrated energy of the run.
        elapsed: Virtual seconds from first to last beat.
    """

    samples: list[RuntimeSample]
    outputs_by_job: list[list[Any]]
    settings_used: list[KnobSetting]
    mean_power: float | None
    energy_joules: float
    elapsed: float

    def performance_series(self) -> list[tuple[float, float]]:
        """(time, normalized performance) pairs where defined."""
        return [
            (s.time, s.normalized_performance)
            for s in self.samples
            if s.normalized_performance is not None
        ]

    def gain_series(self) -> list[tuple[float, float]]:
        """(time, knob gain) pairs."""
        return [(s.time, s.knob_gain) for s in self.samples]

    def mean_normalized_performance(self, skip: int = 0) -> float:
        """Mean normalized performance over samples after ``skip`` beats."""
        values = [
            s.normalized_performance
            for s in self.samples[skip:]
            if s.normalized_performance is not None
        ]
        if not values:
            raise ValueError("no performance samples available")
        return sum(values) / len(values)


class PowerDialRuntime:
    """Runs an application under PowerDial control on a simulated machine.

    Args:
        app: The application instance.
        table: Calibrated knob table (with recorded control values).
        machine: The machine to execute on.
        target_rate: Target heart rate ``g``.  The paper sets both min and
            max target to the baseline rate measured at the default
            configuration on the uncapped platform.
        baseline_rate: The model gain ``b`` (heart rate at the default
            knobs on the reference platform); defaults to ``target_rate``.
        policy: Actuation policy (minimal-speedup or race-to-idle).
        quantum_beats: Heartbeats per control quantum (paper: 20).
        window_size: Heartbeat window for rate measurement (paper: 20).
        controller: Optional replacement decision mechanism -- any object
            satisfying the :class:`~repro.control.alternatives.
            SpeedupController` protocol (``update``/``reset``/``speedup``).
            Defaults to the paper's integral controller; passing e.g. a
            PID or heuristic controller reruns the same scenario under a
            related-work policy (the controller ablation, on the real
            application instead of the plant model).
    """

    def __init__(
        self,
        app: Application,
        table: KnobTable,
        machine: Machine,
        target_rate: float,
        baseline_rate: float | None = None,
        policy: ActuationPolicy = ActuationPolicy.MINIMAL_SPEEDUP,
        quantum_beats: int = 20,
        window_size: int = 20,
        controller: Any | None = None,
    ) -> None:
        self.app = app
        self.table = table
        self.machine = machine
        self.target_rate = float(target_rate)
        self.baseline_rate = float(baseline_rate or target_rate)
        self.monitor = HeartbeatMonitor(
            machine.clock,
            window_size=window_size,
            min_target_rate=target_rate,
            max_target_rate=target_rate,
        )
        # Under race-to-idle the controller may command sub-baseline average
        # speedups — the slack becomes idle time.  Under the other policies
        # the baseline (highest-QoS) setting is the floor.
        min_speedup = 0.05 if policy is ActuationPolicy.RACE_TO_IDLE else 1.0
        if controller is None:
            controller = HeartRateController(
                target_rate=self.target_rate,
                baseline_rate=self.baseline_rate,
                min_speedup=min_speedup,
                max_speedup=table.max_speedup,
            )
        self.controller = controller
        self.actuator = Actuator(
            table,
            policy=policy,
            quantum_beats=quantum_beats,
            selection_tolerance=0.02,
        )
        self.space = AddressSpace(log_accesses=False)
        self._current_setting: KnobSetting | None = None

    # ------------------------------------------------------------------
    def _apply_setting(self, setting: KnobSetting) -> None:
        """Poke the setting's recorded control-variable values."""
        if self._current_setting is setting:
            return
        for name, value in setting.control_values.items():
            self.space.poke(name, value)
        self._current_setting = setting

    def _replan(self, beats_in_quantum: int, quantum_elapsed: float) -> ActuationPlan:
        """Controller + actuator step at a quantum boundary.

        The controller samples the heart rate over the quantum that just
        elapsed (beats emitted / wall time).  Under uniform beating this is
        exactly the 20-beat window rate; unlike the raw beat-interval
        window it also accounts for idle tails, which otherwise alias the
        measurement after a race-to-idle burst.
        """
        if quantum_elapsed > 0.0:
            rate = beats_in_quantum / quantum_elapsed
        else:
            rate = self.monitor.window_rate() or self.target_rate
        speedup = self.controller.update(rate)
        return self.actuator.plan(speedup)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Any],
        events: Sequence[RuntimeEvent] = (),
    ) -> RunResult:
        """Run ``jobs`` to completion under dynamic-knob control."""
        app, machine, monitor = self.app, self.machine, self.monitor
        app.reset()
        monitor.reset()
        self.controller.reset()
        self.space = AddressSpace(log_accesses=False)
        app.initialize(self.table.baseline.configuration.as_dict(), self.space)
        self._current_setting = None
        self._apply_setting(self.table.baseline)

        pending = sorted(events, key=lambda e: e.at_beat)
        event_index = 0
        # "We heuristically establish the time quantum as the time required
        # to process twenty heartbeats" — at the target rate, so it is a
        # fixed time window of quantum_beats / g seconds.
        quantum_duration = self.actuator.quantum_beats / self.target_rate
        plan = self.actuator.plan(self.controller.speedup)
        quantum_start = machine.now
        beats_in_quantum = 0

        tracker = WorkTracker()
        samples: list[RuntimeSample] = []
        settings_used: list[KnobSetting] = []
        outputs_by_job: list[list[Any]] = []
        first_beat_time: float | None = None
        threads = app.threads()

        for job in jobs:
            outputs: list[Any] = []
            for item in app.prepare(job):
                # External events (power caps, load changes).
                while (
                    event_index < len(pending)
                    and pending[event_index].at_beat <= monitor.count
                ):
                    pending[event_index].action(machine)
                    event_index += 1

                # Quantum boundary: close the loop.
                if machine.now - quantum_start >= quantum_duration:
                    plan = self._replan(
                        beats_in_quantum, machine.now - quantum_start
                    )
                    quantum_start = machine.now
                    beats_in_quantum = 0

                # Locate ourselves inside the quantum and pick the setting.
                fraction = (machine.now - quantum_start) / quantum_duration
                fraction = min(max(fraction, 0.0), 1.0 - 1e-9)
                setting = plan.setting_at(fraction)
                if setting is None:
                    # Race-to-idle tail: idle out the quantum, then replan.
                    machine.idle_until(quantum_start + quantum_duration)
                    plan = self._replan(
                        beats_in_quantum, machine.now - quantum_start
                    )
                    quantum_start = machine.now
                    beats_in_quantum = 0
                    setting = plan.setting_at(0.0)
                    if setting is None:  # pragma: no cover - plans run first
                        setting = self.table.fastest
                self._apply_setting(setting)

                record = monitor.heartbeat()
                if first_beat_time is None:
                    first_beat_time = record.timestamp
                self.space.mark_first_heartbeat()

                result = app.process_item(item, self.space, tracker)
                machine.execute(result.work, threads=threads)
                outputs.append(result.output)
                beats_in_quantum += 1

                window_rate = monitor.window_rate()
                samples.append(
                    RuntimeSample(
                        beat=record.sequence,
                        time=record.timestamp,
                        window_rate=window_rate,
                        normalized_performance=(
                            None
                            if window_rate is None
                            else window_rate / self.target_rate
                        ),
                        knob_gain=setting.speedup,
                        commanded_speedup=self.controller.speedup,
                        frequency_ghz=machine.processor.frequency_ghz,
                    )
                )
                settings_used.append(setting)
            outputs_by_job.append(outputs)

        elapsed = 0.0
        if first_beat_time is not None:
            elapsed = machine.now - first_beat_time
        try:
            mean_power: float | None = machine.meter.mean_power()
        except Exception:
            mean_power = None
        return RunResult(
            samples=samples,
            outputs_by_job=outputs_by_job,
            settings_used=settings_used,
            mean_power=mean_power,
            energy_joules=machine.meter.energy_joules,
            elapsed=elapsed,
        )
