"""The PowerDial runtime: controlled execution of a knobbed application.

Wires together the pieces of Figure 2: the application (emitting
heartbeats into a :class:`~repro.heartbeats.api.HeartbeatMonitor`), the
integral :class:`~repro.core.controller.HeartRateController`, and the
:class:`~repro.core.actuator.Actuator`, all running on a simulated
:class:`~repro.hardware.machine.Machine`.

Every ``quantum_beats`` heartbeats the controller observes the windowed
heart rate and commands a speedup; the actuator converts it into a plan of
knob settings (and, under race-to-idle, idle time) for the next quantum.
Settings are applied by *poking recorded control-variable values into the
application's address space* — the application is never told its knobs
moved; its main loop simply reads different values, exactly the paper's
mechanism.

The runtime is resumable: :meth:`PowerDialRuntime.begin` arms a run,
:meth:`PowerDialRuntime.step` advances it one control quantum at a time,
and :meth:`PowerDialRuntime.finish` collects the :class:`RunResult`.
:meth:`PowerDialRuntime.run` is a thin loop over ``step`` and keeps the
original one-shot semantics.  Between steps a host may feed new jobs
(:meth:`PowerDialRuntime.feed`), inject events
(:meth:`PowerDialRuntime.inject`), or run *other* instances on the same
machine — which is how :mod:`repro.datacenter` cooperatively schedules
many live PowerDial instances on shared hardware.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.apps.base import Application, WorkTracker
from repro.core.actuator import ActuationPolicy, Actuator, ActuationPlan
from repro.core.controller import HeartRateController
from repro.core.knobs import KnobSetting, KnobTable
from repro.heartbeats.api import HeartbeatMonitor, HeartbeatWindowState
from repro.hardware.machine import Machine
from repro.tracing.variables import AddressSpace

__all__ = [
    "RuntimeEvent",
    "RuntimeSample",
    "RunResult",
    "RuntimeSnapshot",
    "StepStatus",
    "PowerDialRuntime",
]


@dataclass(frozen=True)
class RuntimeEvent:
    """An external event injected during a controlled run.

    Attributes:
        at_beat: Dispatch when the heartbeat count reaches this value.
        action: Callback receiving the machine (e.g. impose a power cap by
            dropping its frequency).
        label: Event name for the sample log.
    """

    at_beat: int
    action: Callable[[Machine], None]
    label: str = "event"


class StepStatus(enum.Enum):
    """What one :meth:`PowerDialRuntime.step` call accomplished.

    ``RAN`` — the runtime advanced through (about) one control quantum,
    closing the loop at the boundary.  ``STARVED`` — the job queue is
    empty but input is still open; the clock did not move, and the host
    should feed work or idle the machine.  ``FINISHED`` — input is closed
    and every job has been processed; :meth:`PowerDialRuntime.finish` may
    now be called.
    """

    RAN = "ran"
    STARVED = "starved"
    FINISHED = "finished"


@dataclass(frozen=True)
class _PendingJob:
    """A queued job, its submitter's completion callback, and its tag."""

    job: Any
    on_complete: Callable[[float], None] | None = None
    tag: Any = None


@dataclass(frozen=True)
class RuntimeSample:
    """One per-heartbeat observation of the controlled system.

    Attributes:
        beat: Heartbeat sequence number.
        time: Virtual timestamp of the beat.
        window_rate: Sliding-window heart rate (None before first interval).
        normalized_performance: ``window_rate / target`` — the Figure 7
            y-axis ("sliding mean of the last twenty times between
            heartbeats normalized to the target heart rate").
        knob_gain: Instantaneous speedup of the active knob setting — the
            Figure 7 "Knob Gain" series.
        commanded_speedup: The controller's current output ``s(t)``.
        frequency_ghz: Machine frequency when the beat was emitted.
    """

    beat: int
    time: float
    window_rate: float | None
    normalized_performance: float | None
    knob_gain: float
    commanded_speedup: float
    frequency_ghz: float


@dataclass
class RunResult:
    """Everything observed during one controlled run.

    Attributes:
        samples: Per-heartbeat observations.
        outputs_by_job: Main-loop outputs, grouped per input job.
        settings_used: The knob setting active at each heartbeat.
        mean_power: Mean of the machine's 1 Hz power samples (None if the
            run was shorter than one sampling interval).
        energy_joules: Exact integrated energy of the run.
        elapsed: Virtual seconds from first to last beat.
    """

    samples: list[RuntimeSample]
    outputs_by_job: list[list[Any]]
    settings_used: list[KnobSetting]
    mean_power: float | None
    energy_joules: float
    elapsed: float

    def performance_series(self) -> list[tuple[float, float]]:
        """(time, normalized performance) pairs where defined."""
        return [
            (s.time, s.normalized_performance)
            for s in self.samples
            if s.normalized_performance is not None
        ]

    def gain_series(self) -> list[tuple[float, float]]:
        """(time, knob gain) pairs."""
        return [(s.time, s.knob_gain) for s in self.samples]

    def mean_normalized_performance(self, skip: int = 0) -> float:
        """Mean normalized performance over samples after ``skip`` beats."""
        values = [
            s.normalized_performance
            for s in self.samples[skip:]
            if s.normalized_performance is not None
        ]
        if not values:
            raise ValueError("no performance samples available")
        return sum(values) / len(values)


@dataclass(frozen=True)
class RuntimeSnapshot:
    """A runtime's warm control state, detached for live migration.

    Captured with :meth:`PowerDialRuntime.snapshot` and replayed into a
    freshly armed runtime with :meth:`PowerDialRuntime.restore`: the
    controller's integrator, the actuation-plan cache key, the
    heartbeat rate window, and the position inside the current control
    quantum.  Pending jobs, emitted samples, and machine state are
    deliberately *not* here — hosts move jobs explicitly and samples
    stay with the host that produced them.  Plain data (floats, tuples)
    so it pickles across process boundaries.

    Attributes:
        controller_state: Opaque payload from the controller's
            ``export_state()`` (for the paper's integral controller:
            ``(s(t), e(t))``).
        plan_speedup: Key of the cached actuation plan (the last
            commanded speedup), or None if no plan was ever built.
        window: The heartbeat monitor's sliding-window state.
        beats_in_quantum: Beats emitted inside the current quantum.
        quantum_start: Source-clock time the current quantum started.
        taken_at: Source-clock time the snapshot was taken, so
            :meth:`PowerDialRuntime.restore` can re-anchor
            ``quantum_start`` on a clock at a different reading.
    """

    controller_state: Any
    plan_speedup: float | None
    window: HeartbeatWindowState
    beats_in_quantum: int
    quantum_start: float
    taken_at: float


class PowerDialRuntime:
    """Runs an application under PowerDial control on a simulated machine.

    Args:
        app: The application instance.
        table: Calibrated knob table (with recorded control values).
        machine: The machine to execute on.
        target_rate: Target heart rate ``g``.  The paper sets both min and
            max target to the baseline rate measured at the default
            configuration on the uncapped platform.
        baseline_rate: The model gain ``b`` (heart rate at the default
            knobs on the reference platform); defaults to ``target_rate``.
        policy: Actuation policy (minimal-speedup or race-to-idle).
        quantum_beats: Heartbeats per control quantum (paper: 20).
        window_size: Heartbeat window for rate measurement (paper: 20).
        controller: Optional replacement decision mechanism -- any object
            satisfying the :class:`~repro.control.alternatives.
            SpeedupController` protocol (``update``/``reset``/``speedup``).
            Defaults to the paper's integral controller; passing e.g. a
            PID or heuristic controller reruns the same scenario under a
            related-work policy (the controller ablation, on the real
            application instead of the plant model).
    """

    def __init__(
        self,
        app: Application,
        table: KnobTable,
        machine: Machine,
        target_rate: float,
        baseline_rate: float | None = None,
        policy: ActuationPolicy = ActuationPolicy.MINIMAL_SPEEDUP,
        quantum_beats: int = 20,
        window_size: int = 20,
        controller: Any | None = None,
    ) -> None:
        self.app = app
        self.table = table
        self.machine = machine
        self.target_rate = float(target_rate)
        self.baseline_rate = float(baseline_rate or target_rate)
        self.monitor = HeartbeatMonitor(
            machine.clock,
            window_size=window_size,
            min_target_rate=target_rate,
            max_target_rate=target_rate,
        )
        # Under race-to-idle the controller may command sub-baseline average
        # speedups — the slack becomes idle time.  Under the other policies
        # the baseline (highest-QoS) setting is the floor.
        min_speedup = 0.05 if policy is ActuationPolicy.RACE_TO_IDLE else 1.0
        if controller is None:
            controller = HeartRateController(
                target_rate=self.target_rate,
                baseline_rate=self.baseline_rate,
                min_speedup=min_speedup,
                max_speedup=table.max_speedup,
            )
        self.controller = controller
        self.actuator = Actuator(
            table,
            policy=policy,
            quantum_beats=quantum_beats,
            selection_tolerance=0.02,
        )
        self.space = AddressSpace(log_accesses=False)
        # Plans depend only on the (immutable) table, policy, and the
        # commanded speedup, so the last plan is reused whenever the
        # controller's output is unchanged — the common steady-state case.
        self._plan_cache: tuple[float, ActuationPlan] | None = None
        self._current_setting: KnobSetting | None = None
        self._job_queue: deque[_PendingJob] = deque()
        self._event_heap: list[tuple[int, int, RuntimeEvent]] = []
        self._event_seq = 0
        self._input_closed = False
        self._stepper: Any = None
        self._result: RunResult | None = None
        # (beats_in_quantum, quantum_start): the run loop's position in
        # the current control quantum, mirrored here at every yield so
        # snapshot() can read it while the generator is suspended.
        self._phase: tuple[int, float] = (0, machine.now)
        self._restored_phase: tuple[int, float] | None = None

    # ------------------------------------------------------------------
    def _apply_setting(self, setting: KnobSetting) -> None:
        """Poke the setting's recorded control-variable values."""
        if self._current_setting is setting:
            return
        for name, value in setting.control_values.items():
            self.space.poke(name, value)
        self._current_setting = setting

    def _plan_for(self, speedup: float) -> ActuationPlan:
        """The actuation plan for ``speedup``, cached across quanta.

        In steady state the integral controller repeats the same command
        for quantum after quantum; rebuilding the identical plan (table
        search + plan validation) was the hottest part of the replan path.
        """
        cached = self._plan_cache
        if cached is not None and cached[0] == speedup:
            return cached[1]
        plan = self.actuator.plan(speedup)
        self._plan_cache = (speedup, plan)
        return plan

    def _replan(self, beats_in_quantum: int, quantum_elapsed: float) -> ActuationPlan:
        """Controller + actuator step at a quantum boundary.

        The controller samples the heart rate over the quantum that just
        elapsed (beats emitted / wall time).  Under uniform beating this is
        exactly the 20-beat window rate; unlike the raw beat-interval
        window it also accounts for idle tails, which otherwise alias the
        measurement after a race-to-idle burst.
        """
        if quantum_elapsed > 0.0:
            rate = beats_in_quantum / quantum_elapsed
        else:
            rate = self.monitor.window_rate() or self.target_rate
        speedup = self.controller.update(rate)
        return self._plan_for(speedup)

    # ------------------------------------------------------------------
    # Resumable execution API
    # ------------------------------------------------------------------
    def begin(
        self,
        jobs: Sequence[Any] = (),
        events: Sequence[RuntimeEvent] = (),
    ) -> None:
        """Arm a new controlled run without executing anything yet.

        Resets the application, monitor, and controller; queues ``jobs``
        and ``events``.  Further jobs may be supplied with :meth:`feed`
        until :meth:`close_input` is called, and events injected with
        :meth:`inject` at any point while the run is live.
        """
        app = self.app
        app.reset()
        self.monitor.reset()
        self.controller.reset()
        self.space = AddressSpace(log_accesses=False)
        app.initialize(self.table.baseline.configuration.as_dict(), self.space)
        self._current_setting = None
        self._apply_setting(self.table.baseline)
        self._job_queue = deque(_PendingJob(job) for job in jobs)
        self._event_heap = []
        self._event_seq = 0
        self._input_closed = False
        self._result = None
        self._phase = (0, self.machine.now)
        self._restored_phase = None
        self._stepper = self._stepping()
        for event in events:
            self.inject(event)

    def feed(
        self,
        job: Any,
        on_complete: Callable[[float], None] | None = None,
        tag: Any = None,
    ) -> None:
        """Queue one more job on a live run.

        ``on_complete`` (if given) is called with the machine's virtual
        time when the job's last item has been processed — the completion
        hook request-driven hosts use to measure per-job latency.
        ``tag`` is opaque host data returned by :meth:`extract_pending`
        so a host relocating the instance can reconstruct per-job
        context (callbacks are closures and cannot move; tags can).
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before feed()")
        if self._input_closed:
            raise RuntimeError("cannot feed jobs after close_input()")
        self._job_queue.append(_PendingJob(job, on_complete, tag))

    def extract_pending(self) -> list[tuple[Any, Any]]:
        """Remove and return queued-but-unstarted jobs as (job, tag).

        The job in service (if any) is not affected — after extraction
        the host can ``close_input()`` and drain ``step()`` to finish
        in-flight work, then re-feed the extracted jobs elsewhere.  The
        completion callbacks are dropped (they are closures over
        host-side state); the host rebuilds them from the tags it
        supplied to :meth:`feed`.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before extract_pending()")
        extracted = [(pending.job, pending.tag) for pending in self._job_queue]
        self._job_queue.clear()
        return extracted

    def peek_pending(self) -> list[tuple[Any, Any]]:
        """Return queued-but-unstarted jobs as (job, tag), without removal.

        The observational sibling of :meth:`extract_pending`: hosts that
        checkpoint a live instance (the datacenter's crash-recovery
        journal) record the tags so the queue can be rebuilt elsewhere,
        while this runtime keeps serving undisturbed.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before peek_pending()")
        return [(pending.job, pending.tag) for pending in self._job_queue]

    def close_input(self) -> None:
        """Declare the job stream complete; step() drains what remains."""
        self._input_closed = True

    def inject(self, event: RuntimeEvent) -> None:
        """Schedule an event on a live run (dispatched by beat count).

        Events whose ``at_beat`` is already in the past fire before the
        next processed item, matching the dispatch rule of :meth:`run`.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before inject()")
        heapq.heappush(
            self._event_heap, (event.at_beat, self._event_seq, event)
        )
        self._event_seq += 1

    @property
    def pending_jobs(self) -> int:
        """Jobs queued but not yet started (admission-control signal)."""
        return len(self._job_queue)

    @property
    def finished(self) -> bool:
        """True once the run has drained and the result is available."""
        return self._result is not None

    def step(self) -> StepStatus:
        """Advance the run by (about) one control quantum.

        Returns :data:`StepStatus.RAN` after crossing a quantum boundary,
        :data:`StepStatus.STARVED` when the queue is empty but input is
        still open (the clock does not move), and
        :data:`StepStatus.FINISHED` once everything has been processed.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before step()")
        try:
            return next(self._stepper)
        except StopIteration:
            return StepStatus.FINISHED

    def finish(self) -> RunResult:
        """Return the completed run's :class:`RunResult`."""
        if self._result is None:
            raise RuntimeError(
                "run not finished — drain step() until FINISHED first"
            )
        return self._result

    # ------------------------------------------------------------------
    # Warm handoff (live migration)
    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeSnapshot:
        """Capture the warm control state of a begun (or finished) run.

        Callable between ``step()`` calls or after the run drained:
        returns the controller's integrator state, the actuation-plan
        cache key, the heartbeat window, and the quantum phase as a
        plain-data :class:`RuntimeSnapshot`.  A host migrating this
        instance ships the snapshot (with the extracted pending jobs)
        and replays it into the destination runtime via
        :meth:`restore`, so the destination resumes at the learned
        operating point instead of re-converging from the baseline.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before snapshot()")
        export = getattr(self.controller, "export_state", None)
        if export is None:
            raise RuntimeError(
                f"controller {self.controller!r} does not support warm "
                "snapshots (missing export_state())"
            )
        beats_in_quantum, quantum_start = self._phase
        cached = self._plan_cache
        return RuntimeSnapshot(
            controller_state=export(),
            plan_speedup=None if cached is None else cached[0],
            window=self.monitor.export_window(),
            beats_in_quantum=beats_in_quantum,
            quantum_start=quantum_start,
            taken_at=self.machine.now,
        )

    def restore(self, snapshot: RuntimeSnapshot) -> None:
        """Replay a :class:`RuntimeSnapshot` into a freshly begun run.

        Must be called after :meth:`begin` and before the first beat:
        the controller integrator is restored, the actuation-plan cache
        is pre-warmed, the heartbeat window resumes where the source
        left off, and the run loop continues the source's control
        quantum in place (``quantum_start`` is re-anchored when this
        machine's clock reads differently from the snapshot's source).
        The next control decision therefore starts from the source's
        operating point — no cold-start transient.
        """
        if self._stepper is None:
            raise RuntimeError("begin() must be called before restore()")
        if self.monitor.count:
            raise RuntimeError(
                "restore() requires a fresh run (beats already emitted)"
            )
        restore_state = getattr(self.controller, "restore_state", None)
        if restore_state is None:
            raise RuntimeError(
                f"controller {self.controller!r} does not support warm "
                "snapshots (missing restore_state())"
            )
        restore_state(snapshot.controller_state)
        if snapshot.plan_speedup is not None:
            self._plan_for(snapshot.plan_speedup)
        self.monitor.restore_window(snapshot.window)
        now = self.machine.now
        if now == snapshot.taken_at:
            quantum_start = snapshot.quantum_start
        else:
            quantum_start = now - (snapshot.taken_at - snapshot.quantum_start)
        self._restored_phase = (snapshot.beats_in_quantum, quantum_start)
        # Mirror immediately: a snapshot() taken before the first step
        # (an instant re-migration) must ship the carried phase, not
        # the fresh-run zero that begin() left behind.
        self._phase = self._restored_phase

    def _stepping(self):
        """The run loop as a generator, yielding at quantum boundaries."""
        app, machine, monitor = self.app, self.machine, self.monitor
        # "We heuristically establish the time quantum as the time required
        # to process twenty heartbeats" — at the target rate, so it is a
        # fixed time window of quantum_beats / g seconds.
        quantum_duration = self.actuator.quantum_beats / self.target_rate
        plan = self._plan_for(self.controller.speedup)
        quantum_start = machine.now
        beats_in_quantum = 0
        if self._restored_phase is not None:
            # Warm handoff: continue the source runtime's quantum in
            # place instead of opening a fresh one (see restore()).
            beats_in_quantum, quantum_start = self._restored_phase
            self._restored_phase = None

        tracker = WorkTracker()
        samples: list[RuntimeSample] = []
        settings_used: list[KnobSetting] = []
        outputs_by_job: list[list[Any]] = []
        first_beat_time: float | None = None
        threads = app.threads()

        while True:
            if not self._job_queue:
                if self._input_closed:
                    break
                stalled_at = machine.now
                self._phase = (beats_in_quantum, quantum_start)
                yield StepStatus.STARVED
                if machine.now > stalled_at:
                    # The host idled the machine (or ran co-tenants) while
                    # we were starved; restart the quantum so the gap is
                    # not billed to this instance as slowness.
                    quantum_start = machine.now
                    beats_in_quantum = 0
                continue
            pending_job = self._job_queue.popleft()
            outputs: list[Any] = []
            for item in app.prepare(pending_job.job):
                # External events (power caps, load changes).
                while (
                    self._event_heap
                    and self._event_heap[0][0] <= monitor.count
                ):
                    heapq.heappop(self._event_heap)[2].action(machine)

                # Quantum boundary: close the loop, then yield the machine.
                if machine.now - quantum_start >= quantum_duration:
                    plan = self._replan(
                        beats_in_quantum, machine.now - quantum_start
                    )
                    quantum_start = machine.now
                    beats_in_quantum = 0
                    self._phase = (beats_in_quantum, quantum_start)
                    yield StepStatus.RAN

                # Locate ourselves inside the quantum and pick the setting.
                fraction = (machine.now - quantum_start) / quantum_duration
                fraction = min(max(fraction, 0.0), 1.0 - 1e-9)
                setting = plan.setting_at(fraction)
                if setting is None:
                    # Race-to-idle tail: idle out the quantum, then replan.
                    machine.idle_until(quantum_start + quantum_duration)
                    plan = self._replan(
                        beats_in_quantum, machine.now - quantum_start
                    )
                    quantum_start = machine.now
                    beats_in_quantum = 0
                    self._phase = (beats_in_quantum, quantum_start)
                    yield StepStatus.RAN
                    setting = plan.setting_at(0.0)
                    if setting is None:  # pragma: no cover - plans run first
                        setting = self.table.fastest
                self._apply_setting(setting)

                record = monitor.heartbeat()
                if first_beat_time is None:
                    first_beat_time = record.timestamp
                self.space.mark_first_heartbeat()

                result = app.process_item(item, self.space, tracker)
                machine.execute(result.work, threads=threads)
                outputs.append(result.output)
                beats_in_quantum += 1

                window_rate = monitor.window_rate()
                samples.append(
                    RuntimeSample(
                        beat=record.sequence,
                        time=record.timestamp,
                        window_rate=window_rate,
                        normalized_performance=(
                            None
                            if window_rate is None
                            else window_rate / self.target_rate
                        ),
                        knob_gain=setting.speedup,
                        commanded_speedup=self.controller.speedup,
                        frequency_ghz=machine.processor.frequency_ghz,
                    )
                )
                settings_used.append(setting)
            outputs_by_job.append(outputs)
            if pending_job.on_complete is not None:
                pending_job.on_complete(machine.now)

        self._phase = (beats_in_quantum, quantum_start)
        elapsed = 0.0
        if first_beat_time is not None:
            elapsed = machine.now - first_beat_time
        try:
            mean_power: float | None = machine.meter.mean_power()
        except Exception:
            mean_power = None
        self._result = RunResult(
            samples=samples,
            outputs_by_job=outputs_by_job,
            settings_used=settings_used,
            mean_power=mean_power,
            energy_joules=machine.meter.energy_joules,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Any],
        events: Sequence[RuntimeEvent] = (),
    ) -> RunResult:
        """Run ``jobs`` to completion under dynamic-knob control.

        A thin loop over the resumable API: ``begin``, drain ``step``,
        ``finish``.
        """
        self.begin(jobs, events)
        self.close_input()
        while self.step() is not StepStatus.FINISHED:
            pass
        return self.finish()
